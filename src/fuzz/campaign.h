#ifndef LEGO_FUZZ_CAMPAIGN_H_
#define LEGO_FUZZ_CAMPAIGN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/fuzzer.h"
#include "fuzz/harness.h"

namespace lego::fuzz {

/// Campaign configuration. Budgets are execution counts — the scaled-down
/// equivalent of the paper's wall-clock budgets.
struct CampaignOptions {
  int max_executions = 20000;
  /// When > 0, the campaign additionally stops once this many statements
  /// have been processed (executed or rejected). This models a wall-clock
  /// budget: longer test cases consume it faster, reproducing the paper's
  /// observation that large LEN degrades fuzzing throughput (§VI).
  /// Parallel campaigns check the global count at round barriers, so they
  /// may overshoot by at most num_workers * sync_every executions.
  int64_t max_statements = 0;
  /// Record a (executions, edges) point every this many executions. The
  /// parallel runner snapshots at the first round barrier at or past each
  /// multiple, keyed by total executions across all workers.
  int snapshot_every = 1000;
  /// Stop early once every injected bug has been found (off by default).
  bool stop_when_all_bugs_found = false;

  /// Worker-pool width. 1 (default) runs the original single-threaded loop,
  /// bit-identical to the historical serial runner. N > 1 runs N worker
  /// threads, each owning a CloneForWorker(w) fuzzer (Rng seeded
  /// base_seed + w), its own ExecutionHarness, and a private coverage map,
  /// all publishing into one shared bitmap and exchanging new-coverage
  /// seeds through a SharedCorpus at deterministic round barriers.
  int num_workers = 1;
  /// Parallel mode: executions each worker runs between synchronization
  /// barriers (shared-bitmap snapshot, seed exchange, stop checks). Smaller
  /// values propagate seeds faster; larger values reduce barrier overhead.
  int sync_every = 256;

  /// Directory for checkpoint state. Empty disables persistence. Serial
  /// campaigns write one atomic campaign.state file; parallel campaigns
  /// write per-round ckpt_r<N>/ directories flipped live by a LATEST
  /// pointer (see fuzz/checkpoint.h for the layout).
  std::string state_dir;
  /// Checkpoint cadence in executions (total across workers). 0 writes only
  /// the final state when state_dir is set. Parallel campaigns checkpoint
  /// at the first round barrier at or past each multiple.
  int checkpoint_every = 0;
  /// Resume from the newest complete checkpoint in state_dir instead of
  /// starting fresh. The resumed run must be configured identically
  /// (fuzzer, profile, budgets, workers); a mismatch aborts with
  /// state_status set rather than silently fuzzing under the wrong config.
  bool resume = false;
  /// Seeds imported into the fuzzer's corpus before the first execution of
  /// a fresh campaign (cross-campaign corpus reuse; ignored on resume).
  /// Not owned; must outlive RunCampaign.
  const std::vector<TestCase>* import_seeds = nullptr;
  /// Fill CampaignResult::corpus_export with clones of every corpus seed at
  /// campaign end (fuel for `corpus_cli distill` / --import-corpus). Off by
  /// default: exporting clones the whole corpus.
  bool export_corpus = false;
  /// Corrupt entries skipped by a tolerant --import-corpus (set by the CLI
  /// alongside import_seeds; surfaced in FuzzerStats::import_skipped).
  size_t import_skipped = 0;

  /// Cooperative external stop (graceful shutdown). When non-null and the
  /// pointee becomes true, the campaign finishes the in-flight test case,
  /// drains normally through the usual end-of-campaign path — final
  /// checkpoint included — and returns with stopped_early set. Serial
  /// campaigns observe the flag between executions; parallel campaigns at
  /// round barriers. Not owned; must outlive RunCampaign.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Progress hook, invoked from the campaign with the total executions so
  /// far: every `progress_every` executions on the serial path, at every
  /// round barrier (single-threaded, in the completion handler) on the
  /// parallel path. Fleet workers hang lease heartbeats off this.
  std::function<void(int64_t executions)> on_progress;
  /// Serial-path cadence for on_progress, in executions.
  int progress_every = 64;
};

/// Aggregated campaign outcome: everything the paper's tables/figures need.
struct CampaignResult {
  std::string fuzzer;
  std::string profile;
  int executions = 0;
  size_t edges = 0;  // final branch coverage
  size_t rules = 0;  // final grammar-rule coverage (0 unless enabled)
  std::vector<std::pair<int, size_t>> coverage_curve;
  /// Deduplicated crashes, keyed the way the paper dedups: by call-stack
  /// hash (ours are synthetic).
  std::set<uint64_t> crash_hashes;
  std::set<std::string> bug_ids;
  /// Distinct adjacent type pairs (t1 != t2) over all generated test cases —
  /// the paper's Table II "type-affinities generated" metric.
  std::set<std::pair<int, int>> affinities;
  int crashes_total = 0;
  int statement_errors = 0;
  int statements_executed = 0;

  /// Bugs found per component, for Table I style reporting.
  std::map<std::string, int> bugs_by_component;

  /// First test case observed for each unique crash hash, with its crash,
  /// in discovery order (worker order for parallel runs, so the set is
  /// deterministic per seed/workers/sync_every). Triage replays these.
  /// TestCase is move-only, so CampaignResult is too.
  std::vector<TestCase> captured_cases;
  std::vector<minidb::CrashInfo> captured_crashes;  // parallel to above

  /// Logic-oracle findings: total flagged executions, plus the first test
  /// case per unique oracle fingerprint.
  int logic_bugs_total = 0;
  std::set<uint64_t> logic_fingerprints;
  std::vector<TestCase> captured_logic_cases;
  std::vector<LogicBugInfo> captured_logic_bugs;  // parallel to above

  /// Fuzzer-internal counters (corpus size, affinity pairs, sequences
  /// recorded/dropped), sampled from the fuzzer at campaign end.
  FuzzerStats fuzzer_stats;
  /// Outcome of checkpoint/resume I/O. OK when persistence is disabled or
  /// every state file round-tripped; otherwise the first error (a resume
  /// failure aborts the campaign with executions == 0).
  Status state_status = Status::OK();

  /// Clones of the final corpus (options.export_corpus only; worker order
  /// for parallel runs). Empty for generation-based fuzzers.
  std::vector<TestCase> corpus_export;

  /// Robustness telemetry (runtime-only: never serialized and excluded
  /// from ResultDigest). Mid-run checkpoints that failed to write and were
  /// skipped with a warning, torn checkpoints skipped over at resume, and
  /// workers parked because their backend broke (spawn circuit open).
  int checkpoints_failed = 0;
  int checkpoint_fallbacks = 0;
  int workers_parked = 0;
  /// True when options.stop_flag cut the campaign short (runtime-only,
  /// like the counters above: never serialized, excluded from ResultDigest).
  bool stopped_early = false;

  /// Storage-layer telemetry summed over every worker backend at campaign
  /// end: buffer-pool traffic (hit rate, evictions), WAL volume, fsyncs.
  /// All zeros on --storage=mem. Runtime-only like the counters above:
  /// never serialized and excluded from ResultDigest.
  BackendStorageStats storage;
};

/// Runs `fuzzer` against `harness` for the configured budget.
///
/// With options.num_workers > 1, `fuzzer` acts as the prototype: each
/// worker w runs fuzzer->CloneForWorker(w) against its own harness (same
/// profile and setup script as `harness`), and the returned result is the
/// merged view — executions/statement counters summed, crash/bug/affinity
/// sets unioned, edges read from the shared bitmap, coverage curve keyed by
/// total executions. The merged result is deterministic for a fixed
/// (fuzzer seed, num_workers, sync_every) triple: workers only observe each
/// other at barriers, in worker-id order. If the prototype does not
/// support CloneForWorker (returns nullptr), the serial path runs instead.
CampaignResult RunCampaign(Fuzzer* fuzzer, ExecutionHarness* harness,
                           const CampaignOptions& options);

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_CAMPAIGN_H_
