#ifndef LEGO_FUZZ_STATE_H_
#define LEGO_FUZZ_STATE_H_

#include <deque>

#include "fuzz/testcase.h"
#include "persist/io.h"
#include "util/random.h"

namespace lego::fuzz {

/// Shared serde helpers for campaign state. Component-owned state lives in
/// member SaveState/LoadState methods (Corpus, ExecutionHarness, the
/// fuzzers); the pieces used by several components — Rng streams, test
/// cases, pending-work queues — are serialized through these free functions
/// so every layer writes the same byte layout.

/// Rng: the four raw xoshiro words inside an "RNGS" chunk.
void SaveRng(const Rng& rng, persist::StateWriter* w);
Status LoadRng(persist::StateReader* r, Rng* rng);

/// TestCase: statement count + each statement via the structural AST serde
/// (no chunk — test cases nest inside corpus/queue chunks by the hundreds).
void SaveTestCase(const TestCase& tc, persist::StateWriter* w);
StatusOr<TestCase> LoadTestCase(persist::StateReader* r);

/// A pending-work queue of test cases, FIFO order preserved.
void SaveTestCaseQueue(const std::deque<TestCase>& q, persist::StateWriter* w);
Status LoadTestCaseQueue(persist::StateReader* r, std::deque<TestCase>* q);

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_STATE_H_
