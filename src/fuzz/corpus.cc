#include "fuzz/corpus.h"

namespace lego::fuzz {

Seed* Corpus::Add(TestCase tc) {
  Seed seed;
  seed.test_case = std::move(tc);
  seed.id = next_id_++;
  seed.favored = true;
  seeds_.push_back(std::move(seed));
  return &seeds_.back();
}

Seed* Corpus::Select(Rng* rng) {
  if (seeds_.empty()) return nullptr;
  // Favored (never-picked) seeds first, oldest first.
  for (Seed& seed : seeds_) {
    if (seed.favored) {
      seed.favored = false;
      ++seed.times_selected;
      return &seed;
    }
  }
  // Weighted pick: productive seeds weigh more, over-fuzzed ones less.
  std::vector<double> weights(seeds_.size());
  double total = 0.0;
  for (size_t i = 0; i < seeds_.size(); ++i) {
    const Seed& s = seeds_[i];
    double w = 1.0 + 2.0 * s.discoveries;
    w /= 1.0 + 0.25 * s.times_selected;
    weights[i] = w;
    total += w;
  }
  double pick = rng->NextDouble() * total;
  for (size_t i = 0; i < seeds_.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) {
      ++seeds_[i].times_selected;
      return &seeds_[i];
    }
  }
  ++seeds_.back().times_selected;
  return &seeds_.back();
}

}  // namespace lego::fuzz
