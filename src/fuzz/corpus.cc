#include "fuzz/corpus.h"

#include <cassert>
#include <utility>

#include "coverage/rule_coverage.h"
#include "fuzz/state.h"

namespace lego::fuzz {

namespace {
constexpr uint32_t kCorpusTag = persist::ChunkTag("CORP");
}  // namespace

void Corpus::DebugCheckContract() {
#ifndef NDEBUG
  // First caller claims the corpus; every later call must come from the
  // same thread (one Corpus per worker).
  if (owner_ == std::thread::id()) owner_ = std::this_thread::get_id();
  assert(owner_ == std::this_thread::get_id() &&
         "Corpus is single-threaded; share seeds via SharedCorpus");
  // Every Seed* ever handed out must still point at the seed it named.
  for (const auto& [ptr, id] : handed_out_) {
    assert(ptr->id == id && "Seed* invalidated by corpus growth");
  }
#endif
}

void Corpus::ComputeRules(Seed* seed) {
  cov::RuleMap map;
  cov::CollectRules(seed->test_case.ToSql(), &map);
  seed->rules = map.HitRules();
  if (rule_holders_.size() < cov::RuleMap::size()) {
    rule_holders_.resize(cov::RuleMap::size(), 0);
  }
  for (uint16_t r : seed->rules) ++rule_holders_[r];
}

void Corpus::set_rule_weighting(bool enabled) {
  if (enabled == rule_weighting_) return;
  rule_weighting_ = enabled;
  rule_holders_.clear();
  for (Seed& seed : seeds_) seed.rules.clear();
  if (enabled) {
    for (Seed& seed : seeds_) ComputeRules(&seed);
  }
}

Seed* Corpus::Add(TestCase tc) {
  DebugCheckContract();
  Seed seed;
  seed.test_case = std::move(tc);
  seed.id = next_id_++;
  seed.favored = true;
  seeds_.push_back(std::move(seed));
  Seed* added = &seeds_.back();
  if (rule_weighting_) ComputeRules(added);
#ifndef NDEBUG
  handed_out_.emplace_back(added, added->id);
#endif
  return added;
}

Seed* Corpus::Select(Rng* rng) {
  DebugCheckContract();
  if (seeds_.empty()) return nullptr;
  // Favored (never-picked) seeds first, oldest first.
  for (Seed& seed : seeds_) {
    if (seed.favored) {
      seed.favored = false;
      ++seed.times_selected;
      return &seed;
    }
  }
  // Weighted pick: productive seeds weigh more, over-fuzzed ones less.
  std::vector<double> weights(seeds_.size());
  double total = 0.0;
  for (size_t i = 0; i < seeds_.size(); ++i) {
    const Seed& s = seeds_[i];
    double w = 1.0 + 2.0 * s.discoveries;
    w /= 1.0 + 0.25 * s.times_selected;
    if (rule_weighting_) {
      // Rarity boost: a rule held by few seeds contributes up to 1.0 to the
      // multiplier; ubiquitous rules contribute ~1/corpus-size each.
      double rarity = 0.0;
      for (uint16_t r : s.rules) rarity += 1.0 / rule_holders_[r];
      w *= 1.0 + rarity;
    }
    weights[i] = w;
    total += w;
  }
  double pick = rng->NextDouble() * total;
  for (size_t i = 0; i < seeds_.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) {
      ++seeds_[i].times_selected;
      return &seeds_[i];
    }
  }
  ++seeds_.back().times_selected;
  return &seeds_.back();
}

int Corpus::IndexOf(const Seed* seed) const {
  if (seed == nullptr) return -1;
  for (size_t i = 0; i < seeds_.size(); ++i) {
    if (&seeds_[i] == seed) return static_cast<int>(i);
  }
  return -1;
}

Status Corpus::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kCorpusTag);
  w->WriteI64(next_id_);
  w->WriteU64(seeds_.size());
  for (const Seed& seed : seeds_) {
    SaveTestCase(seed.test_case, w);
    w->WriteI64(seed.id);
    w->WriteI64(seed.times_selected);
    w->WriteI64(seed.discoveries);
    w->WriteBool(seed.favored);
  }
  w->EndChunk();
  return Status::OK();
}

Status Corpus::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kCorpusTag));
  int next_id = static_cast<int>(r->ReadI64());
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  std::deque<Seed> seeds;
  for (uint64_t i = 0; i < n; ++i) {
    Seed seed;
    LEGO_ASSIGN_OR_RETURN(seed.test_case, LoadTestCase(r));
    seed.id = static_cast<int>(r->ReadI64());
    seed.times_selected = static_cast<int>(r->ReadI64());
    seed.discoveries = static_cast<int>(r->ReadI64());
    seed.favored = r->ReadBool();
    seeds.push_back(std::move(seed));
  }
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  seeds_ = std::move(seeds);
  next_id_ = next_id;
  // Rule sets are derived state: rebuild them for the new pool so a resumed
  // schedule weighs seeds exactly like an uninterrupted one.
  rule_holders_.clear();
  if (rule_weighting_) {
    for (Seed& seed : seeds_) ComputeRules(&seed);
  }
#ifndef NDEBUG
  // The pool was replaced wholesale: old Seed* are dead, and the corpus may
  // now be adopted by whichever thread resumes the campaign.
  handed_out_.clear();
  owner_ = std::thread::id();
#endif
  return Status::OK();
}

SharedCorpus::SharedCorpus(int num_shards)
    : shards_(static_cast<size_t>(num_shards > 0 ? num_shards : 1)) {}

void SharedCorpus::Publish(int origin_worker, TestCase tc) {
  uint64_t seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
  Shard& shard = shards_[seq % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.entries.emplace(seq, Entry{origin_worker, std::move(tc)});
}

size_t SharedCorpus::DrainNew(int worker_id, uint64_t* cursor,
                              std::vector<TestCase>* out) const {
  size_t drained = 0;
  uint64_t seq = *cursor;
  for (;; ++seq) {
    const Shard& shard = shards_[seq % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(seq);
    if (it == shard.entries.end()) break;  // gap or end: stop, retry later
    if (it->second.origin != worker_id) {
      out->push_back(it->second.tc.Clone());
      ++drained;
    }
  }
  *cursor = seq;
  return drained;
}

}  // namespace lego::fuzz
