#ifndef LEGO_FUZZ_CHECKPOINT_H_
#define LEGO_FUZZ_CHECKPOINT_H_

#include <string>
#include <vector>

#include "fuzz/campaign.h"
#include "persist/io.h"

namespace lego::fuzz {

/// On-disk layout of a checkpointed campaign under --state-dir:
///
///   serial (1 worker):
///     <dir>/campaign.state          one atomic file: fingerprint, the
///                                   CampaignResult so far, fuzzer state,
///                                   harness state
///   parallel (N workers):
///     <dir>/ckpt_r<R>/manifest.state   fingerprint + merged round state +
///                                      shared coverage
///     <dir>/ckpt_r<R>/worker<w>.state  per-worker tallies, fuzzer, harness
///     <dir>/LATEST                     pointer file naming the last fully
///                                      written ckpt_r<R> directory
///
/// Every file is enveloped (magic/version/checksum) and written via
/// write-temp-then-rename. The parallel protocol writes all checkpoint
/// files first and flips LATEST last, so a crash mid-checkpoint leaves
/// LATEST pointing at the previous complete checkpoint.

/// Configuration fingerprint written at the head of every state file and
/// verified on resume: a campaign may only be resumed by a process
/// configured identically (same fuzzer, profile, budgets, worker count).
void WriteCampaignFingerprint(const std::string& fuzzer_name,
                              const std::string& profile_name,
                              const CampaignOptions& options,
                              persist::StateWriter* w);
Status VerifyCampaignFingerprint(const std::string& fuzzer_name,
                                 const std::string& profile_name,
                                 const CampaignOptions& options,
                                 persist::StateReader* r);

/// CampaignResult round-trip (everything except fuzzer_stats/state_status,
/// which are recomputed at campaign end).
Status SaveCampaignResult(const CampaignResult& result,
                          persist::StateWriter* w);
Status LoadCampaignResult(persist::StateReader* r, CampaignResult* result);

/// Order-independent digest over everything the acceptance bar compares:
/// executions, edges, statement tallies, crash hashes, bug ids, logic
/// fingerprints, affinities, and the full coverage curve. Two campaigns
/// with equal digests found the same coverage and the same bugs along the
/// same curve.
uint64_t ResultDigest(const CampaignResult& result);

/// Path helpers (kept in one place so the CLI, tests, and corpus_cli agree
/// on the layout).
std::string SerialStatePath(const std::string& state_dir);
std::string CheckpointDirName(int round);
std::string WorkerStatePath(const std::string& ckpt_dir, int worker);
std::string ManifestPath(const std::string& ckpt_dir);

/// The LATEST pointer: an enveloped one-string state file naming the last
/// complete checkpoint directory (relative to state_dir). Written last,
/// atomically, which is what makes multi-file parallel checkpoints
/// crash-safe.
Status WriteLatestPointer(const std::string& state_dir,
                          const std::string& ckpt_dir_name);
StatusOr<std::string> ReadLatestPointer(const std::string& state_dir);

/// Self-healing resume: finds the newest *usable* parallel checkpoint
/// under state_dir. The LATEST pointer's target is tried first; if that
/// directory is torn (missing/truncated/checksum-failing manifest or
/// worker file — e.g. the process was killed mid-checkpoint and LATEST
/// was corrupted too), the scan falls back to ckpt_final and then the
/// remaining ckpt_r<N> directories newest-first, validating every file a
/// resume would need for `num_workers` workers. Each rejected candidate
/// appends a human-readable line to `warnings` and bumps `*rejected`.
/// NotFound when nothing usable remains.
StatusOr<std::string> LocateUsableCheckpoint(const std::string& state_dir,
                                             int num_workers,
                                             std::vector<std::string>* warnings,
                                             int* rejected);

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_CHECKPOINT_H_
