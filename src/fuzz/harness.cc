#include "fuzz/harness.h"

namespace lego::fuzz {

ExecutionHarness::ExecutionHarness(const minidb::DialectProfile& profile)
    : profile_(profile), db_(&profile), bug_engine_(profile.name) {
  db_.set_fault_hook(&bug_engine_);
}

ExecResult ExecutionHarness::Run(const TestCase& tc) {
  ExecResult result;
  ++executions_;

  // Fresh instance per test case (each input carries its own DDL).
  db_.ResetAll();
  bug_engine_.ResetSession();

  cov::CoverageMap run_map;
  cov::CoverageScope scope(&run_map);

  if (!setup_script_.empty()) {
    db_.set_fault_hook(nullptr);
    (void)db_.ExecuteScript(setup_script_);
    db_.session().type_trace.clear();
    db_.session().feature_trace.clear();
    db_.set_fault_hook(&bug_engine_);
    bug_engine_.ResetSession();
  }

  for (const sql::StmtPtr& stmt : tc.statements()) {
    auto st = db_.Execute(*stmt);
    if (st.ok()) {
      ++result.executed;
      if (logic_oracle_ != nullptr && !result.logic_bug &&
          stmt->type() == sql::StatementType::kSelect) {
        // Oracle queries must be invisible to fuzzing state: pause coverage
        // probes, disarm the fault hook, and restore the session trace so
        // the partition queries can't trigger or mask injected bugs.
        cov::CoverageScope pause(nullptr);
        db_.set_fault_hook(nullptr);
        const size_t saved_types = db_.session().type_trace.size();
        const size_t saved_features = db_.session().feature_trace.size();
        result.logic_bug =
            logic_oracle_->Check(&db_, *stmt, &result.logic);
        db_.session().type_trace.resize(saved_types);
        db_.session().feature_trace.resize(saved_features);
        db_.set_fault_hook(&bug_engine_);
      }
      continue;
    }
    if (st.status().IsCrash()) {
      result.crashed = true;
      result.crash = *db_.last_crash();
      break;  // the "server process" died
    }
    ++result.errors;
  }

  run_map.ClassifyCounts();
  result.new_coverage = global_coverage_.MergeDetectNew(run_map);
  result.total_edges = global_coverage_.CoveredEdges();
  if (shared_coverage_ != nullptr) shared_coverage_->MergeDetectNew(run_map);
  return result;
}

}  // namespace lego::fuzz
