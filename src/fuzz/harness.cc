#include "fuzz/harness.h"

#include "fuzz/backend_concurrent.h"
#include "fuzz/multi_case.h"
#include "persist/io.h"
#include "util/hash.h"

namespace lego::fuzz {

namespace {
constexpr uint32_t kHarnessTag = persist::ChunkTag("HARN");
}  // namespace

ExecutionHarness::ExecutionHarness(const minidb::DialectProfile& profile,
                                   const BackendOptions& backend)
    : backend_options_(backend),
      backend_(MakeBackend(profile, backend)) {}

ExecResult ExecutionHarness::Run(const TestCase& tc) {
  if (backend_options_.kind == BackendKind::kConcurrent &&
      backend_options_.sessions > 1) {
    return RunConcurrent(tc);
  }
  ExecResult result;
  ++executions_;

  // Fresh session per test case (each input carries its own DDL).
  backend_->Reset();

  for (const sql::StmtPtr& stmt : tc.statements()) {
    StmtOutcome out = backend_->Execute(*stmt, /*want_rows=*/false);
    if (out.status == StmtOutcome::Status::kOk) {
      ++result.executed;
      if (logic_oracle_ != nullptr && !result.logic_bug &&
          stmt->type() == sql::StatementType::kSelect) {
        // The bracket pauses coverage probes, disarms the fault hook, and
        // rolls the session trace back — exception-safe, so a throwing
        // oracle can't leave the backend disarmed.
        OracleSession guard(backend_.get());
        result.logic_bug =
            logic_oracle_->Check(backend_.get(), *stmt, &result.logic);
      }
      continue;
    }
    if (out.server_died()) {
      result.crashed = true;
      result.crash = out.crash;
      result.hang = (out.status == StmtOutcome::Status::kHang);
      break;  // the server process died
    }
    ++result.errors;
  }

  MergeRunFeedback(tc, &result);
  return result;
}

void ExecutionHarness::MergeRunFeedback(const TestCase& tc,
                                        ExecResult* result) {
  const cov::CoverageMap& run_map = backend_->FinishRun();
  result->new_coverage = global_coverage_.MergeDetectNew(run_map);
  result->total_edges = global_coverage_.CoveredEdges();
  if (shared_coverage_ != nullptr) shared_coverage_->MergeDetectNew(run_map);
  if (rule_coverage_enabled_) {
    // Fuzzers emit ASTs, so parsing is not otherwise on the execution path;
    // re-parsing the rendered SQL is what fires the grammar-rule probes (and
    // doubles as a continuous Print -> Parse round-trip check).
    cov::RuleMap rule_map;
    cov::CollectRules(tc.ToSql(), &rule_map);
    result->new_rules = global_rules_.MergeDetectNew(rule_map);
    result->total_rules = global_rules_.CoveredRules();
    if (shared_rule_coverage_ != nullptr) {
      shared_rule_coverage_->MergeDetectNew(rule_map);
    }
  }
}

ExecResult ExecutionHarness::RunConcurrent(const TestCase& tc) {
  ExecResult result;
  ++executions_;

  // One seed pins the whole concurrent execution: it drives both the
  // session split and the interleaving scheduler. Deriving it from the
  // persisted execution counter keeps replay stable across
  // checkpoint/resume; triage overrides it to re-run a specific
  // interleaving.
  uint64_t seed = forced_interleave_seed_.value_or(HashMix(
      backend_options_.concurrency_seed, static_cast<uint64_t>(executions_)));
  result.interleave_seed = seed;

  auto* backend = static_cast<ConcurrentBackend*>(backend_.get());
  backend->Reset();
  MultiSessionCase mcase = SplitForSessions(tc, backend_options_.sessions,
                                            seed);
  ConcurrentBackend::CaseResult cr = backend->RunCase(mcase, seed);
  result.executed = cr.setup_executed + cr.stats.executed;
  result.errors = cr.setup_errors + cr.stats.errors;
  result.deadlocks = cr.stats.deadlocks;
  result.trace_digest = cr.stats.trace_digest;
  result.history_digest = cr.stats.history_digest;
  result.interleave_switches = cr.stats.switches;
  if (cr.stats.crashed) {
    result.crashed = true;
    if (cr.stats.crash.has_value()) result.crash = *cr.stats.crash;
  } else if (logic_oracle_ != nullptr &&
             logic_oracle_->CheckHistory(backend->history(), &result.logic)) {
    result.logic_bug = true;
    result.logic.query = mcase.ToSql();
    result.logic.interleave_seed = seed;
    result.logic.sessions = static_cast<int>(mcase.sessions.size());
  }

  MergeRunFeedback(tc, &result);
  return result;
}

Status ExecutionHarness::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kHarnessTag);
  w->WriteI64(executions_);
  LEGO_RETURN_IF_ERROR(global_coverage_.SaveState(w));
  w->WriteBool(rule_coverage_enabled_);
  LEGO_RETURN_IF_ERROR(global_rules_.SaveState(w));
  w->EndChunk();
  return Status::OK();
}

Status ExecutionHarness::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kHarnessTag));
  int executions = static_cast<int>(r->ReadI64());
  LEGO_RETURN_IF_ERROR(global_coverage_.LoadState(r));
  rule_coverage_enabled_ = r->ReadBool();
  LEGO_RETURN_IF_ERROR(global_rules_.LoadState(r));
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  executions_ = executions;
  return Status::OK();
}

}  // namespace lego::fuzz
