#include "fuzz/harness.h"

namespace lego::fuzz {

ExecutionHarness::ExecutionHarness(const minidb::DialectProfile& profile,
                                   const BackendOptions& backend)
    : backend_options_(backend),
      backend_(MakeBackend(profile, backend)) {}

ExecResult ExecutionHarness::Run(const TestCase& tc) {
  ExecResult result;
  ++executions_;

  // Fresh session per test case (each input carries its own DDL).
  backend_->Reset();

  for (const sql::StmtPtr& stmt : tc.statements()) {
    StmtOutcome out = backend_->Execute(*stmt, /*want_rows=*/false);
    if (out.status == StmtOutcome::Status::kOk) {
      ++result.executed;
      if (logic_oracle_ != nullptr && !result.logic_bug &&
          stmt->type() == sql::StatementType::kSelect) {
        // The bracket pauses coverage probes, disarms the fault hook, and
        // rolls the session trace back — exception-safe, so a throwing
        // oracle can't leave the backend disarmed.
        OracleSession guard(backend_.get());
        result.logic_bug =
            logic_oracle_->Check(backend_.get(), *stmt, &result.logic);
      }
      continue;
    }
    if (out.server_died()) {
      result.crashed = true;
      result.crash = out.crash;
      result.hang = (out.status == StmtOutcome::Status::kHang);
      break;  // the server process died
    }
    ++result.errors;
  }

  const cov::CoverageMap& run_map = backend_->FinishRun();
  result.new_coverage = global_coverage_.MergeDetectNew(run_map);
  result.total_edges = global_coverage_.CoveredEdges();
  if (shared_coverage_ != nullptr) shared_coverage_->MergeDetectNew(run_map);
  return result;
}

}  // namespace lego::fuzz
