#include "fuzz/harness.h"

#include "persist/io.h"

namespace lego::fuzz {

namespace {
constexpr uint32_t kHarnessTag = persist::ChunkTag("HARN");
}  // namespace

ExecutionHarness::ExecutionHarness(const minidb::DialectProfile& profile,
                                   const BackendOptions& backend)
    : backend_options_(backend),
      backend_(MakeBackend(profile, backend)) {}

ExecResult ExecutionHarness::Run(const TestCase& tc) {
  ExecResult result;
  ++executions_;

  // Fresh session per test case (each input carries its own DDL).
  backend_->Reset();

  for (const sql::StmtPtr& stmt : tc.statements()) {
    StmtOutcome out = backend_->Execute(*stmt, /*want_rows=*/false);
    if (out.status == StmtOutcome::Status::kOk) {
      ++result.executed;
      if (logic_oracle_ != nullptr && !result.logic_bug &&
          stmt->type() == sql::StatementType::kSelect) {
        // The bracket pauses coverage probes, disarms the fault hook, and
        // rolls the session trace back — exception-safe, so a throwing
        // oracle can't leave the backend disarmed.
        OracleSession guard(backend_.get());
        result.logic_bug =
            logic_oracle_->Check(backend_.get(), *stmt, &result.logic);
      }
      continue;
    }
    if (out.server_died()) {
      result.crashed = true;
      result.crash = out.crash;
      result.hang = (out.status == StmtOutcome::Status::kHang);
      break;  // the server process died
    }
    ++result.errors;
  }

  const cov::CoverageMap& run_map = backend_->FinishRun();
  result.new_coverage = global_coverage_.MergeDetectNew(run_map);
  result.total_edges = global_coverage_.CoveredEdges();
  if (shared_coverage_ != nullptr) shared_coverage_->MergeDetectNew(run_map);
  if (rule_coverage_enabled_) {
    // Fuzzers emit ASTs, so parsing is not otherwise on the execution path;
    // re-parsing the rendered SQL is what fires the grammar-rule probes (and
    // doubles as a continuous Print -> Parse round-trip check).
    cov::RuleMap rule_map;
    cov::CollectRules(tc.ToSql(), &rule_map);
    result.new_rules = global_rules_.MergeDetectNew(rule_map);
    result.total_rules = global_rules_.CoveredRules();
    if (shared_rule_coverage_ != nullptr) {
      shared_rule_coverage_->MergeDetectNew(rule_map);
    }
  }
  return result;
}

Status ExecutionHarness::SaveState(persist::StateWriter* w) const {
  w->BeginChunk(kHarnessTag);
  w->WriteI64(executions_);
  LEGO_RETURN_IF_ERROR(global_coverage_.SaveState(w));
  w->WriteBool(rule_coverage_enabled_);
  LEGO_RETURN_IF_ERROR(global_rules_.SaveState(w));
  w->EndChunk();
  return Status::OK();
}

Status ExecutionHarness::LoadState(persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kHarnessTag));
  int executions = static_cast<int>(r->ReadI64());
  LEGO_RETURN_IF_ERROR(global_coverage_.LoadState(r));
  rule_coverage_enabled_ = r->ReadBool();
  LEGO_RETURN_IF_ERROR(global_rules_.LoadState(r));
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  executions_ = executions;
  return Status::OK();
}

}  // namespace lego::fuzz
