#include "fuzz/corpus_file.h"

#include "fuzz/state.h"
#include "persist/io.h"

namespace lego::fuzz {

namespace {
constexpr uint32_t kCorpusFileTag = persist::ChunkTag("CFIL");
}  // namespace

Status SaveCorpusFile(const std::vector<TestCase>& cases,
                      const std::string& path) {
  persist::StateWriter w;
  w.BeginChunk(kCorpusFileTag);
  w.WriteU64(cases.size());
  for (const TestCase& tc : cases) SaveTestCase(tc, &w);
  w.EndChunk();
  return w.WriteFileAtomic(path);
}

StatusOr<std::vector<TestCase>> LoadCorpusFile(const std::string& path) {
  LEGO_ASSIGN_OR_RETURN(persist::StateReader r,
                        persist::StateReader::FromFile(path));
  LEGO_RETURN_IF_ERROR(r.EnterChunk(kCorpusFileTag));
  uint64_t n = r.ReadU64();
  if (!r.CheckCount(n, 8)) return r.status();
  std::vector<TestCase> cases;
  cases.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    LEGO_ASSIGN_OR_RETURN(TestCase tc, LoadTestCase(&r));
    cases.push_back(std::move(tc));
  }
  LEGO_RETURN_IF_ERROR(r.ExitChunk());
  return cases;
}

}  // namespace lego::fuzz
