#include "fuzz/corpus_file.h"

#include <limits>

#include "chaos/failpoint.h"
#include "fuzz/state.h"
#include "persist/io.h"

namespace lego::fuzz {

namespace {
constexpr uint32_t kCorpusFileTag = persist::ChunkTag("CFIL");
}  // namespace

Status SaveCorpusFile(const std::vector<TestCase>& cases,
                      const std::string& path) {
  if (LEGO_FAILPOINT("corpus.save")) {
    return Status::Internal("save corpus " + path + ": injected fault");
  }
  persist::StateWriter w;
  w.BeginChunk(kCorpusFileTag);
  w.WriteU64(cases.size());
  for (const TestCase& tc : cases) SaveTestCase(tc, &w);
  w.EndChunk();
  return w.WriteFileAtomic(path);
}

StatusOr<std::vector<TestCase>> LoadCorpusFile(const std::string& path) {
  if (LEGO_FAILPOINT("corpus.load")) {
    return Status::Internal("load corpus " + path + ": injected fault");
  }
  LEGO_ASSIGN_OR_RETURN(persist::StateReader r,
                        persist::StateReader::FromFile(path));
  LEGO_RETURN_IF_ERROR(r.EnterChunk(kCorpusFileTag));
  uint64_t n = r.ReadU64();
  if (!r.CheckCount(n, 8)) return r.status();
  std::vector<TestCase> cases;
  cases.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    LEGO_ASSIGN_OR_RETURN(TestCase tc, LoadTestCase(&r));
    cases.push_back(std::move(tc));
  }
  LEGO_RETURN_IF_ERROR(r.ExitChunk());
  return cases;
}

StatusOr<std::vector<TestCase>> LoadCorpusFileTolerant(
    const std::string& path, CorpusLoadStats* stats) {
  if (stats != nullptr) *stats = CorpusLoadStats{};
  if (LEGO_FAILPOINT("corpus.load")) {
    return Status::Internal("load corpus " + path + ": injected fault");
  }
  bool degraded = false;
  LEGO_ASSIGN_OR_RETURN(persist::StateReader r,
                        persist::StateReader::FromFileLenient(path, &degraded));
  LEGO_RETURN_IF_ERROR(r.EnterChunkTruncated(kCorpusFileTag));
  const uint64_t declared = r.ReadU64();
  if (!r.ok()) return r.status();  // too short even for the entry count
  // The declared count bounds the decode loop only when plausible — a
  // corrupted count field must not stop salvage of the entries behind it.
  const uint64_t cap = (declared > 0 && declared < (uint64_t{1} << 20))
                           ? declared
                           : std::numeric_limits<uint64_t>::max();
  std::vector<TestCase> cases;
  bool decode_failed = false;
  while (r.ok() && !r.AtEnd() && cases.size() < cap) {
    auto tc = LoadTestCase(&r);
    if (!tc.ok()) {
      decode_failed = true;
      break;
    }
    cases.push_back(std::move(*tc));
  }
  if (stats != nullptr) {
    stats->loaded = cases.size();
    stats->degraded = degraded || decode_failed;
    if (cap != std::numeric_limits<uint64_t>::max() && cases.size() < cap) {
      stats->skipped = static_cast<size_t>(cap - cases.size());
    } else if (decode_failed) {
      stats->skipped = 1;  // at least the entry the decode died inside
    }
  }
  return cases;
}

}  // namespace lego::fuzz
