#include "fuzz/state.h"

#include <utility>

#include "persist/ast_serde.h"

namespace lego::fuzz {

namespace {
constexpr uint32_t kRngTag = persist::ChunkTag("RNGS");
}  // namespace

void SaveRng(const Rng& rng, persist::StateWriter* w) {
  w->BeginChunk(kRngTag);
  for (uint64_t word : rng.state()) w->WriteU64(word);
  w->EndChunk();
}

Status LoadRng(persist::StateReader* r, Rng* rng) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(kRngTag));
  std::array<uint64_t, 4> state;
  for (uint64_t& word : state) word = r->ReadU64();
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  if (!r->ok()) return r->status();
  rng->set_state(state);
  return Status::OK();
}

void SaveTestCase(const TestCase& tc, persist::StateWriter* w) {
  w->WriteU64(tc.size());
  for (const sql::StmtPtr& stmt : tc.statements()) {
    persist::SerializeStatement(*stmt, w);
  }
}

StatusOr<TestCase> LoadTestCase(persist::StateReader* r) {
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 1)) return r->status();
  std::vector<sql::StmtPtr> stmts;
  stmts.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    LEGO_ASSIGN_OR_RETURN(sql::StmtPtr stmt, persist::DeserializeStatement(r));
    stmts.push_back(std::move(stmt));
  }
  return TestCase(std::move(stmts));
}

void SaveTestCaseQueue(const std::deque<TestCase>& q,
                       persist::StateWriter* w) {
  w->WriteU64(q.size());
  for (const TestCase& tc : q) SaveTestCase(tc, w);
}

Status LoadTestCaseQueue(persist::StateReader* r, std::deque<TestCase>* q) {
  q->clear();
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, 8)) return r->status();
  for (uint64_t i = 0; i < n; ++i) {
    LEGO_ASSIGN_OR_RETURN(TestCase tc, LoadTestCase(r));
    q->push_back(std::move(tc));
  }
  return Status::OK();
}

}  // namespace lego::fuzz
