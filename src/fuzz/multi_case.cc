#include "fuzz/multi_case.h"

#include <utility>

#include "sql/parser.h"
#include "sql/statement_type.h"
#include "util/random.h"

namespace lego::fuzz {
namespace {

bool GoesToSetup(sql::StatementType type) {
  switch (sql::CategoryOf(type)) {
    case sql::StatementCategory::kDml:
      return type == sql::StatementType::kCopy;
    case sql::StatementCategory::kDql:
    case sql::StatementCategory::kTcl:
      return false;
    default:
      return true;  // DDL, DCL, utility
  }
}

bool IsBlockOpen(sql::StatementType type) {
  return type == sql::StatementType::kBegin;
}

bool IsBlockClose(sql::StatementType type) {
  return type == sql::StatementType::kCommit ||
         type == sql::StatementType::kRollback;
}

/// Parses one TCL statement from `sql_text` ("BEGIN" / "COMMIT").
sql::StmtPtr ParseTcl(const char* sql_text) {
  auto parsed = sql::Parser::ParseScript(sql_text);
  if (!parsed.ok() || parsed->empty()) return nullptr;
  return std::move(parsed->front());
}

}  // namespace

std::string MultiSessionCase::ToSql() const {
  std::string out = "-- setup\n";
  out += setup.ToSql();
  for (size_t i = 0; i < sessions.size(); ++i) {
    out += "-- session " + std::to_string(i) + "\n";
    out += sessions[i].ToSql();
  }
  return out;
}

MultiSessionCase SplitForSessions(const TestCase& tc, int n, uint64_t seed) {
  MultiSessionCase mc;
  mc.sessions.resize(static_cast<size_t>(n < 1 ? 1 : n));
  Rng rng(seed);

  std::vector<sql::StmtPtr>* setup = mc.setup.mutable_statements();
  auto session_of = [&](size_t sid) {
    return mc.sessions[sid].mutable_statements();
  };

  constexpr int kMaxContentionClones = 4;
  int clones = 0;
  size_t block_session = 0;  // target while inside an explicit txn block
  bool in_block = false;

  for (const sql::StmtPtr& stmt : tc.statements()) {
    sql::StatementType type = stmt->type();
    if (GoesToSetup(type)) {
      setup->push_back(stmt->Clone());
      continue;
    }
    size_t sid;
    if (in_block) {
      sid = block_session;
      if (IsBlockClose(type)) in_block = false;
    } else {
      sid = static_cast<size_t>(rng.NextBelow(mc.sessions.size()));
      if (IsBlockOpen(type)) {
        in_block = true;
        block_session = sid;
      }
    }
    session_of(sid)->push_back(stmt->Clone());

    // Contention by construction: duplicate a few writes into another
    // session so row-level conflicts actually occur.
    bool is_write = type == sql::StatementType::kUpdate ||
                    type == sql::StatementType::kDelete;
    if (is_write && !in_block && mc.sessions.size() > 1 &&
        clones < kMaxContentionClones) {
      size_t other =
          static_cast<size_t>(rng.NextBelow(mc.sessions.size() - 1));
      if (other >= sid) ++other;
      session_of(other)->push_back(stmt->Clone());
      ++clones;
    }
  }

  // Seeded transaction wrapping: half the sessions run their script as one
  // explicit transaction. (Sessions that already open their own blocks are
  // left alone — a stray nested BEGIN would just error.)
  for (TestCase& session : mc.sessions) {
    if (session.empty()) continue;
    bool has_tcl = false;
    for (const sql::StmtPtr& s : session.statements()) {
      if (sql::CategoryOf(s->type()) == sql::StatementCategory::kTcl) {
        has_tcl = true;
        break;
      }
    }
    if (has_tcl || !rng.NextBool(0.5)) continue;
    sql::StmtPtr begin = ParseTcl("BEGIN;");
    sql::StmtPtr commit = ParseTcl("COMMIT;");
    if (!begin || !commit) continue;
    auto* stmts = session.mutable_statements();
    stmts->insert(stmts->begin(), std::move(begin));
    stmts->push_back(std::move(commit));
  }
  return mc;
}

}  // namespace lego::fuzz
