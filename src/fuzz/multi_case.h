#ifndef LEGO_FUZZ_MULTI_CASE_H_
#define LEGO_FUZZ_MULTI_CASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/testcase.h"

namespace lego::fuzz {

/// A test case split for concurrent execution: a serial setup script (all
/// schema/statement types the concurrent phase cannot run) plus one
/// statement script per session.
struct MultiSessionCase {
  TestCase setup;
  std::vector<TestCase> sessions;

  /// Renders the whole case with "-- setup" / "-- session N" markers; this
  /// is what repro artifacts and logic-bug reports record.
  std::string ToSql() const;
};

/// Deterministically splits `tc` into a MultiSessionCase for `n` sessions,
/// driven by `seed` (the same seed that drives the interleaving scheduler,
/// so a (case, seed) pair fully determines a concurrent execution):
///
///  - DDL, DCL, COPY, and utility statements go to the serial setup script
///    in original order — the concurrent phase runs against a frozen
///    catalog.
///  - DML/DQL/TCL statements are dealt to sessions seeded-randomly, except
///    that explicit transaction blocks (BEGIN .. COMMIT/ROLLBACK) stay
///    contiguous in one session.
///  - A few UPDATE/DELETE statements are cloned into a second session
///    (bounded per case), so concurrent cases have write-write and
///    read-write contention by construction.
///  - Each session is wrapped in a synthesized BEGIN/COMMIT with probability
///    1/2, so both autocommit and multi-statement-transaction interleavings
///    are explored.
MultiSessionCase SplitForSessions(const TestCase& tc, int n, uint64_t seed);

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_MULTI_CASE_H_
