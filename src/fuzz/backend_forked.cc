#include "fuzz/backend_forked.h"

#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <new>
#include <thread>
#include <utility>

#include "chaos/failpoint.h"
#include "minidb/storage_engine.h"
#include "sql/parser.h"
#include "sql/statement_type.h"
#include "util/hash.h"

namespace lego::fuzz {
namespace {

// Request frame types (parent -> child).
constexpr uint8_t kReqReset = 1;     // payload: setup script
constexpr uint8_t kReqExecute = 2;   // payload: [u8 want_rows][sql text]
constexpr uint8_t kReqOracleBegin = 3;
constexpr uint8_t kReqOracleEnd = 4;
constexpr uint8_t kReqFirstCol = 5;  // payload: table name
constexpr uint8_t kReqStorageStats = 6;

// Response codes (child -> parent).
constexpr uint8_t kRespOk = 0;     // Execute-ok payload: encoded rows
constexpr uint8_t kRespError = 1;  // statement rejected
constexpr uint8_t kRespCrash = 2;  // payload: encoded CrashInfo (synthetic)
constexpr uint8_t kRespCol = 3;    // payload: [u8 found][column name]
constexpr uint8_t kRespStats = 4;  // payload: 10 x u64, see EncodeStorageStats

// Generous ceiling for protocol ops that run no fuzzer-chosen SQL (Reset
// runs only the trusted setup script). A child that cannot answer within
// this is treated as dead.
constexpr int kControlDeadlineMs = 10000;

// Reserved child exit code: heap exhaustion under RLIMIT_AS, converted by
// the child's new-handler into a clean exit the parent maps to "OOM".
// Distinctive on purpose — an uncaught bad_alloc would be SIGABRT and
// collide with genuine assertion failures in triage.
constexpr int kOomExitCode = 86;

// Spawn retry backoff: doubles from 1ms, capped here. Kept short — spawn
// failures are either transient (EMFILE pressure from a sibling) and clear
// quickly, or permanent and hit the circuit breaker anyway.
constexpr int kSpawnBackoffCapMs = 64;

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked little reader over a response payload.
class Reader {
 public:
  explicit Reader(const std::string& buf) : buf_(buf) {}

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n) || buf_.size() - pos_ < n) return false;
    s->assign(buf_, pos_, n);
    pos_ += n;
    return true;
  }

 private:
  bool Raw(void* out, size_t n) {
    if (buf_.size() - pos_ < n) return false;
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  const std::string& buf_;
  size_t pos_ = 0;
};

void EncodeCrash(std::string* out, const minidb::CrashInfo& crash) {
  PutU64(out, crash.stack_hash);
  PutStr(out, crash.bug_id);
  PutStr(out, crash.component);
  PutStr(out, crash.kind);
  PutStr(out, crash.message);
}

bool DecodeCrash(const std::string& payload, minidb::CrashInfo* crash) {
  Reader r(payload);
  return r.U64(&crash->stack_hash) && r.Str(&crash->bug_id) &&
         r.Str(&crash->component) && r.Str(&crash->kind) &&
         r.Str(&crash->message);
}

void EncodeStorageStats(std::string* out, const BackendStorageStats& s) {
  PutU64(out, s.pool_hits);
  PutU64(out, s.pool_misses);
  PutU64(out, s.pool_evictions);
  PutU64(out, s.pool_writebacks);
  PutU64(out, s.wal_records);
  PutU64(out, s.wal_bytes);
  PutU64(out, s.fsyncs);
  PutU64(out, s.steal_flushes);
  PutU64(out, s.commits);
  PutU64(out, s.checkpoints);
}

bool DecodeStorageStats(const std::string& payload, BackendStorageStats* s) {
  Reader r(payload);
  return r.U64(&s->pool_hits) && r.U64(&s->pool_misses) &&
         r.U64(&s->pool_evictions) && r.U64(&s->pool_writebacks) &&
         r.U64(&s->wal_records) && r.U64(&s->wal_bytes) && r.U64(&s->fsyncs) &&
         r.U64(&s->steal_flushes) && r.U64(&s->commits) &&
         r.U64(&s->checkpoints);
}

bool WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

/// Blocking full read (child side; the parent uses polled reads).
bool ReadAll(int fd, char* data, size_t n) {
  while (n > 0) {
    ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // peer closed
    data += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

/// The wait-status → CrashInfo kind string ("SIGSEGV", "EXIT-3", ...).
std::string DeathKind(int wstatus) {
  if (WIFSIGNALED(wstatus)) {
    switch (WTERMSIG(wstatus)) {
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGBUS: return "SIGBUS";
      case SIGFPE: return "SIGFPE";
      case SIGILL: return "SIGILL";
      case SIGKILL: return "SIGKILL";
      // Resource-governor kills get their own buckets so a runaway session
      // is triaged as a resource bug, not a generic signal death.
      case SIGXCPU: return "CPU";
      case SIGXFSZ: return "FSIZE";
      default: return "SIG" + std::to_string(WTERMSIG(wstatus));
    }
  }
  if (WIFEXITED(wstatus)) {
    if (WEXITSTATUS(wstatus) == kOomExitCode) return "OOM";
    if (WEXITSTATUS(wstatus) == minidb::kStorageFailExitCode) {
      // Storage panic: the child refused to acknowledge a commit it could
      // not make durable. Own bucket so the durability oracle can claim it.
      return "STORAGE";
    }
    return "EXIT-" + std::to_string(WEXITSTATUS(wstatus));
  }
  return "UNKNOWN";
}

void IgnoreSigpipeOnce() {
  // A write to a crashed child's pipe must surface as EPIPE, not kill the
  // fuzzer. Installed once, process-wide, before the first fork.
  static const bool installed = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)installed;
}

}  // namespace

static_assert(std::is_trivially_copyable_v<cov::CoverageMap>,
              "coverage map is shared between processes as raw bytes");

ForkedBackend::ForkedBackend(const minidb::DialectProfile& profile,
                             const BackendOptions& options)
    : profile_(profile), options_(options), bug_engine_(profile.name) {
  IgnoreSigpipeOnce();
  void* mem = ::mmap(nullptr, sizeof(cov::CoverageMap),
                     PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS,
                     /*fd=*/-1, /*offset=*/0);
  if (mem == MAP_FAILED) {
    // Without the coverage channel the backend cannot work; fail loudly.
    ::perror("ForkedBackend: mmap coverage map");
    ::abort();
  }
  shm_ = new (mem) cov::CoverageMap();
  Spawn();
}

ForkedBackend::~ForkedBackend() {
  KillChild();
  if (shm_ != nullptr) {
    ::munmap(shm_, sizeof(cov::CoverageMap));
    shm_ = nullptr;
  }
}

bool ForkedBackend::TrySpawn() {
  if (LEGO_FAILPOINT("backend.spawn")) return false;
  int cmd_pipe[2];
  int resp_pipe[2];
  if (::pipe(cmd_pipe) != 0) {
    return false;
  }
  if (::pipe(resp_pipe) != 0) {
    ::close(cmd_pipe[0]);
    ::close(cmd_pipe[1]);
    return false;
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(cmd_pipe[0]);
    ::close(cmd_pipe[1]);
    ::close(resp_pipe[0]);
    ::close(resp_pipe[1]);
    return false;
  }
  if (pid == 0) {
    // Child: keep its two protocol ends, run the server loop, never return.
    ::close(cmd_pipe[1]);
    ::close(resp_pipe[0]);
    cmd_fd_ = cmd_pipe[0];
    resp_fd_ = resp_pipe[1];
    ApplyChildLimits();
    ChildLoop();
  }
  ::close(cmd_pipe[0]);
  ::close(resp_pipe[1]);
  cmd_fd_ = cmd_pipe[1];
  resp_fd_ = resp_pipe[0];
  child_pid_ = pid;
  alive_ = true;
  ++spawn_count_;
  storage_last_poll_ = {};  // fresh child: cumulative counters restart at 0
  return true;
}

void ForkedBackend::Spawn() {
  if (broken_) return;
  const int limit =
      options_.spawn_failure_limit > 0 ? options_.spawn_failure_limit : 1;
  int backoff_ms = 1;
  while (!TrySpawn()) {
    ++spawn_failures_total_;
    if (++consecutive_spawn_failures_ >= limit) {
      broken_ = true;
      std::fprintf(stderr,
                   "ForkedBackend: %d consecutive spawn failures; circuit "
                   "breaker open, backend parked\n",
                   consecutive_spawn_failures_);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = backoff_ms < kSpawnBackoffCapMs ? backoff_ms * 2
                                                 : kSpawnBackoffCapMs;
  }
  consecutive_spawn_failures_ = 0;
}

void ForkedBackend::ApplyChildLimits() {
  // Child side, between fork and the serve loop. The new-handler makes
  // heap exhaustion under RLIMIT_AS a clean, recognizable exit instead of
  // an uncaught bad_alloc (SIGABRT, which would collide with real
  // assertion deaths in triage). Installed unconditionally: a genuine host
  // OOM deserves the same bucket as a governed one.
  std::set_new_handler([] { ::_exit(kOomExitCode); });
  const auto cap = [](int resource, uint64_t soft, uint64_t hard) {
    struct rlimit rl;
    rl.rlim_cur = soft;
    rl.rlim_max = hard;
    (void)::setrlimit(resource, &rl);
  };
  if (options_.max_child_mem_mb > 0) {
    const uint64_t bytes = static_cast<uint64_t>(options_.max_child_mem_mb)
                           << 20;
    cap(RLIMIT_AS, bytes, bytes);
  }
  if (options_.max_child_cpu_s > 0) {
    // Soft < hard: the kernel delivers SIGXCPU at the soft limit (which
    // triage buckets as REAL-CPU) and only escalates to SIGKILL at the
    // hard limit if the child somehow keeps spinning.
    const uint64_t secs = static_cast<uint64_t>(options_.max_child_cpu_s);
    cap(RLIMIT_CPU, secs, secs + 2);
  }
  if (options_.max_child_fsize_mb > 0) {
    const uint64_t bytes = static_cast<uint64_t>(options_.max_child_fsize_mb)
                           << 20;
    cap(RLIMIT_FSIZE, bytes, bytes);
  }
}

void ForkedBackend::KillChild() {
  if (child_pid_ < 0) return;
  if (cmd_fd_ >= 0) ::close(cmd_fd_);
  if (resp_fd_ >= 0) ::close(resp_fd_);
  cmd_fd_ = resp_fd_ = -1;
  if (early_wait_status_.has_value()) {
    // Already reaped; the pid may have been recycled — do not signal it.
    early_wait_status_.reset();
  } else {
    ::kill(child_pid_, SIGKILL);
    int wstatus = 0;
    while (::waitpid(child_pid_, &wstatus, 0) < 0 && errno == EINTR) {
    }
  }
  child_pid_ = -1;
  alive_ = false;
}

minidb::CrashInfo ForkedBackend::ReapAsCrash(sql::StatementType type) {
  int wstatus = 0;
  if (early_wait_status_.has_value()) {
    wstatus = *early_wait_status_;
    early_wait_status_.reset();
  } else if (child_pid_ >= 0) {
    pid_t reaped = ::waitpid(child_pid_, &wstatus, WNOHANG);
    if (reaped == 0) {
      // Pipe says dead but the process lingers (e.g. fd closed early): make
      // it true, then reap for real.
      ::kill(child_pid_, SIGKILL);
      while (::waitpid(child_pid_, &wstatus, 0) < 0 && errno == EINTR) {
      }
    }
  }
  if (cmd_fd_ >= 0) ::close(cmd_fd_);
  if (resp_fd_ >= 0) ::close(resp_fd_);
  cmd_fd_ = resp_fd_ = -1;
  child_pid_ = -1;
  alive_ = false;

  minidb::CrashInfo crash;
  crash.kind = DeathKind(wstatus);
  crash.bug_id = "REAL-" + crash.kind;
  crash.component = "minidb";
  // Derived from what we can observe of a dead process: the death kind and
  // the statement type it was executing. Stable across replays, so ddmin's
  // same-stack-hash invariant works for real crashes too.
  crash.stack_hash = HashMix(Fnv1a64(crash.kind),
                             static_cast<uint64_t>(type));
  crash.message = "child died (" + crash.kind + ") executing " +
                  std::string(sql::StatementTypeName(type));
  return crash;
}

bool ForkedBackend::SendMsg(uint8_t type, const std::string& payload) {
  if (cmd_fd_ < 0) return false;
  std::string frame;
  PutU32(&frame, static_cast<uint32_t>(payload.size() + 1));
  frame.push_back(static_cast<char>(type));
  frame.append(payload);
  return WriteAll(cmd_fd_, frame.data(), frame.size());
}

ForkedBackend::Wait ForkedBackend::RecvMsg(int deadline_ms, uint8_t* code,
                                           std::string* payload) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms < 0 ? 0
                                                               : deadline_ms);
  std::string buf;
  size_t need = sizeof(uint32_t);  // first the length prefix
  bool have_len = false;
  for (;;) {
    if (buf.size() >= need) {
      if (!have_len) {
        uint32_t len = 0;
        std::memcpy(&len, buf.data(), sizeof(len));
        buf.erase(0, sizeof(len));
        need = len;
        have_len = true;
        if (need == 0) return Wait::kDead;  // malformed
        continue;
      }
      *code = static_cast<uint8_t>(buf[0]);
      payload->assign(buf, 1, need - 1);
      return Wait::kData;
    }

    int tick = 50;
    if (deadline_ms >= 0) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - Clock::now())
                      .count();
      if (left <= 0) return Wait::kTimeout;
      tick = static_cast<int>(left < tick ? left : tick);
    }
    struct pollfd pfd = {resp_fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, tick);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Wait::kDead;
    }
    if (rc > 0 && (pfd.revents & POLLIN) != 0) {
      char chunk[4096];
      ssize_t r = ::read(resp_fd_, chunk, sizeof(chunk));
      if (r > 0) {
        buf.append(chunk, static_cast<size_t>(r));
        continue;
      }
      if (r < 0 && errno == EINTR) continue;
      return Wait::kDead;  // EOF or hard error mid-frame
    }
    if (rc > 0 && (pfd.revents & (POLLHUP | POLLERR)) != 0) {
      return Wait::kDead;
    }
    // No data this tick: notice silent deaths (a sibling worker's child may
    // hold our pipe's write end open, so EOF alone is not reliable). The
    // reap happens here; ReapAsCrash picks the status up.
    int wstatus = 0;
    if (child_pid_ >= 0 && !early_wait_status_.has_value() &&
        ::waitpid(child_pid_, &wstatus, WNOHANG) == child_pid_) {
      early_wait_status_ = wstatus;
      return Wait::kDead;
    }
  }
}

ForkedBackend::Wait ForkedBackend::RoundTrip(uint8_t type,
                                             const std::string& payload,
                                             int deadline_ms, uint8_t* code,
                                             std::string* resp) {
  if (!alive_ || !SendMsg(type, payload)) return Wait::kDead;
  return RecvMsg(deadline_ms, code, resp);
}

bool ForkedBackend::DurabilityArmed() const {
  return options_.storage == StorageKind::kPaged &&
         options_.durability_check && !options_.db_dir.empty();
}

std::optional<minidb::CrashInfo> ForkedBackend::ApplyDurabilityVerdict(
    minidb::CrashInfo crash) {
  if (!DurabilityArmed() ||
      (crash.kind != "SIGKILL" && crash.kind != "STORAGE")) {
    return crash;  // ineligible death: normal REAL-* handling
  }
  DurabilityVerdict verdict = dur_.CheckAfterDeath(
      profile_, minidb::Env::Posix(), options_.db_dir, options_.chaos_note);
  dur_.AbandonSession();
  if (!verdict.checked) return crash;  // uncheckable: pass the death through
  if (verdict.ok) return std::nullopt;  // invariant held: injected, not a bug
  return verdict.crash;
}

void ForkedBackend::Reset() {
  // A death that never got surfaced (e.g. the run's last statement crashed
  // under the oracle bracket) is dropped here; the next occurrence will be
  // caught on a plain Execute.
  pending_death_.reset();
  // Deaths during reset wipe/rebuild the directory mid-flight, so they are
  // never durability-checkable; the shadow restarts on a clean session.
  dur_.AbandonSession();

  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!alive_) Spawn();
    if (broken_) {
      // No child will ever come up again: report nothing (the campaign
      // parks the worker off broken(), so synthesizing a crash here would
      // only fabricate a phantom REAL-RESET bug).
      reset_failure_.reset();
      return;
    }
    uint8_t code = 0;
    std::string resp;
    const int deadline =
        options_.max_stmt_ms > 0 ? kControlDeadlineMs + options_.max_stmt_ms
                                 : kControlDeadlineMs;
    Wait w = RoundTrip(kReqReset, setup_script(), deadline, &code, &resp);
    if (w == Wait::kData && code == kRespOk) {
      reset_failure_.reset();
      if (DurabilityArmed()) dur_.BeginSession(setup_script());
      return;
    }
    if (w == Wait::kTimeout) {
      KillChild();
    } else {
      (void)ReapAsCrash(sql::StatementType::kSet);
    }
  }
  // Twice in a row the child could not even reach a clean session — the
  // setup script itself must be lethal. Report it as a crash on every
  // statement instead of dying or spinning on respawns.
  minidb::CrashInfo crash;
  crash.bug_id = "REAL-RESET";
  crash.component = "minidb";
  crash.kind = "RESET";
  crash.stack_hash = Fnv1a64("REAL-RESET");
  crash.message = "forked child died or hung during session reset";
  reset_failure_ = crash;
}

StmtOutcome ForkedBackend::Execute(const sql::Statement& stmt,
                                   bool want_rows) {
  StmtOutcome out;
  if (reset_failure_.has_value()) {
    out.status = StmtOutcome::Status::kCrash;
    out.crash = *reset_failure_;
    return out;
  }
  if (pending_death_.has_value() && !in_oracle()) {
    out.status = StmtOutcome::Status::kCrash;
    out.crash = *pending_death_;
    pending_death_.reset();
    return out;
  }
  if (!alive_) {
    // Dead child with nothing to report (the crash was already surfaced):
    // remaining statements of this run are unreachable errors.
    out.status = StmtOutcome::Status::kError;
    return out;
  }

  const std::string sql_text = sql::ToSql(stmt);
  std::string payload;
  payload.push_back(want_rows ? 1 : 0);
  payload += sql_text;
  if (DurabilityArmed()) dur_.SetInflight(sql_text);

  uint8_t code = 0;
  std::string resp;
  const int deadline = options_.max_stmt_ms > 0 ? options_.max_stmt_ms : -1;
  Wait w = RoundTrip(kReqExecute, payload, deadline, &code, &resp);

  if (w == Wait::kTimeout) {
    KillChild();
    dur_.AbandonSession();  // watchdog kills stay HANG, never DUR
    minidb::CrashInfo hang;
    hang.bug_id = "HANG";
    hang.kind = "HANG";
    hang.component = "watchdog";
    hang.stack_hash =
        HashMix(Fnv1a64("HANG"), static_cast<uint64_t>(stmt.type()));
    hang.message = "statement exceeded " +
                   std::to_string(options_.max_stmt_ms) + "ms watchdog (" +
                   std::string(sql::StatementTypeName(stmt.type())) + ")";
    if (in_oracle()) {
      pending_death_ = hang;
      out.status = StmtOutcome::Status::kError;
      return out;
    }
    out.status = StmtOutcome::Status::kHang;
    out.crash = hang;
    return out;
  }
  if (w == Wait::kDead) {
    // The durability oracle adjudicates chaos-injected deaths: a SIGKILL or
    // storage panic whose recovered directory matches the acked shadow is
    // the schedule doing its job (suppressed); a mismatch is a DUR-* bug.
    std::optional<minidb::CrashInfo> crash =
        ApplyDurabilityVerdict(ReapAsCrash(stmt.type()));
    if (!crash.has_value()) {
      out.status = StmtOutcome::Status::kError;
      return out;
    }
    if (in_oracle()) {
      // Surfaced by the next non-oracle Execute so the finding isn't lost,
      // while the oracle itself just sees a no-verdict query failure.
      pending_death_ = *crash;
      out.status = StmtOutcome::Status::kError;
      return out;
    }
    out.status = StmtOutcome::Status::kCrash;
    out.crash = *crash;
    return out;
  }

  if (DurabilityArmed()) dur_.RecordAcked(sql_text);

  switch (code) {
    case kRespOk: {
      out.status = StmtOutcome::Status::kOk;
      if (want_rows) {
        Reader r(resp);
        uint32_t n = 0;
        if (r.U32(&n)) {
          out.rows.reserve(n);
          for (uint32_t i = 0; i < n; ++i) {
            std::string row;
            if (!r.Str(&row)) break;
            out.rows.push_back(std::move(row));
          }
        }
      }
      return out;
    }
    case kRespCrash: {
      out.status = StmtOutcome::Status::kCrash;
      if (!DecodeCrash(resp, &out.crash)) {
        out.crash.bug_id = "REAL-PROTOCOL";
        out.crash.kind = "PROTOCOL";
        out.crash.stack_hash = Fnv1a64("REAL-PROTOCOL");
      }
      return out;
    }
    case kRespError:
    default:
      out.status = StmtOutcome::Status::kError;
      return out;
  }
}

const cov::CoverageMap& ForkedBackend::FinishRun() {
  // The child is quiescent between requests (and after death the map holds
  // everything it reported before dying), so a plain copy is race-free.
  std::memcpy(&run_map_, shm_, sizeof(run_map_));
  run_map_.ClassifyCounts();
  PollStorageStats();
  return run_map_;
}

void ForkedBackend::PollStorageStats() {
  if (options_.storage != StorageKind::kPaged || !alive_) return;
  uint8_t code = 0;
  std::string resp;
  if (RoundTrip(kReqStorageStats, "", kControlDeadlineMs, &code, &resp) !=
          Wait::kData ||
      code != kRespStats) {
    return;  // dead or stats-less child: keep the total as-is
  }
  BackendStorageStats current;
  if (!DecodeStorageStats(resp, &current)) return;
  BackendStorageStats delta = current;
  // Child counters are monotonic per child lifetime; subtract the previous
  // poll to get this window's contribution.
  delta.pool_hits -= storage_last_poll_.pool_hits;
  delta.pool_misses -= storage_last_poll_.pool_misses;
  delta.pool_evictions -= storage_last_poll_.pool_evictions;
  delta.pool_writebacks -= storage_last_poll_.pool_writebacks;
  delta.wal_records -= storage_last_poll_.wal_records;
  delta.wal_bytes -= storage_last_poll_.wal_bytes;
  delta.fsyncs -= storage_last_poll_.fsyncs;
  delta.steal_flushes -= storage_last_poll_.steal_flushes;
  delta.commits -= storage_last_poll_.commits;
  delta.checkpoints -= storage_last_poll_.checkpoints;
  storage_last_poll_ = current;
  storage_total_.Add(delta);
}

BackendStorageStats ForkedBackend::storage_stats() {
  PollStorageStats();
  return storage_total_;
}

std::optional<std::string> ForkedBackend::FirstColumnOf(
    const std::string& table) {
  uint8_t code = 0;
  std::string resp;
  if (RoundTrip(kReqFirstCol, table, kControlDeadlineMs, &code, &resp) !=
          Wait::kData ||
      code != kRespCol || resp.empty() || resp[0] == 0) {
    return std::nullopt;
  }
  return resp.substr(1);
}

void ForkedBackend::DoSnapshotForOracle() {
  uint8_t code = 0;
  std::string resp;
  (void)RoundTrip(kReqOracleBegin, "", kControlDeadlineMs, &code, &resp);
}

void ForkedBackend::DoRestoreForOracle() {
  uint8_t code = 0;
  std::string resp;
  (void)RoundTrip(kReqOracleEnd, "", kControlDeadlineMs, &code, &resp);
}

// ---------------------------------------------------------------------------
// Child side: a tiny single-connection "server" speaking the pipe protocol.
// ---------------------------------------------------------------------------

void ForkedBackend::ChildLoop() {
  // Fresh sink: never inherit the parent's thread-local probe target.
  cov::CoverageRuntime::SetActiveMap(nullptr);

  minidb::Database db(&profile_);
  faults::BugEngine engine(profile_.name);
  db.set_fault_hook(&engine);

  // Paged storage: the child owns its db directory's lifecycle. Panic mode
  // is what makes the durability oracle sound — a commit that cannot be
  // made durable exits with kStorageFailExitCode *before* the statement is
  // acknowledged, so the parent's shadow never records it.
  std::unique_ptr<minidb::StorageEngine> storage;
  if (options_.storage == StorageKind::kPaged && !options_.db_dir.empty()) {
    minidb::StorageEngine::Options so;
    so.dir = options_.db_dir;
    so.pool_frames = options_.pool_frames;
    so.skip_fsync = options_.planted_skip_fsync;
    so.panic_on_storage_error = true;
    storage = std::make_unique<minidb::StorageEngine>(so);
  }

  // Oracle bracket state (mirrors InProcessBackend's).
  cov::CoverageMap* oracle_saved_map = nullptr;
  minidb::FaultHook* oracle_saved_hook = nullptr;
  size_t oracle_saved_types = 0;
  size_t oracle_saved_features = 0;

  auto reply = [&](uint8_t code, const std::string& payload) {
    std::string frame;
    PutU32(&frame, static_cast<uint32_t>(payload.size() + 1));
    frame.push_back(static_cast<char>(code));
    frame.append(payload);
    if (!WriteAll(resp_fd_, frame.data(), frame.size())) _exit(0);
  };

  for (;;) {
    uint32_t len = 0;
    if (!ReadAll(cmd_fd_, reinterpret_cast<char*>(&len), sizeof(len))) {
      _exit(0);  // parent went away: clean shutdown
    }
    if (len == 0) _exit(0);
    std::string frame(len, '\0');
    if (!ReadAll(cmd_fd_, frame.data(), len)) _exit(0);
    const uint8_t type = static_cast<uint8_t>(frame[0]);
    const std::string payload = frame.substr(1);

    switch (type) {
      case kReqReset: {
        // Same choreography as InProcessBackend::Reset, with the run map in
        // shared memory so the parent sees coverage even if we die.
        db.ResetAll();
        if (storage != nullptr && !storage->ResetFresh(&db).ok()) {
          _exit(minidb::kStorageFailExitCode);
        }
        engine.ResetSession();
        shm_->Reset();
        cov::CoverageRuntime::SetActiveMap(shm_);
        if (!payload.empty()) {
          db.set_fault_hook(nullptr);
          if (storage == nullptr) {
            (void)db.ExecuteScript(payload);
          } else {
            // Per-statement bracket: setup state must be logged so recovery
            // after a mid-run kill reproduces it.
            auto stmts = sql::Parser::ParseScript(payload);
            if (stmts.ok()) {
              for (const sql::StmtPtr& stmt : stmts.value()) {
                storage->BeginStatement(&db);
                auto st = db.Execute(*stmt);
                (void)storage->EndStatement(&db, *stmt, st.ok());
                if (!st.ok() && st.status().IsCrash()) break;
              }
            }
          }
          db.session().type_trace.clear();
          db.session().feature_trace.clear();
          db.set_fault_hook(&engine);
          engine.ResetSession();
        }
        reply(kRespOk, "");
        break;
      }
      case kReqExecute: {
        if (payload.empty()) {
          reply(kRespError, "");
          break;
        }
        const bool want_rows = payload[0] != 0;
        auto stmts = sql::Parser::ParseScript(payload.substr(1) + ";");
        if (!stmts.ok() || stmts->empty()) {
          reply(kRespError, "");
          break;
        }
        // A real defect below this line kills us mid-statement — that *is*
        // the feature: the parent maps our death into a CrashInfo.
        if (storage != nullptr) storage->BeginStatement(&db);
        auto st = db.Execute(*(*stmts)[0]);
        if (storage != nullptr) {
          (void)storage->EndStatement(&db, *(*stmts)[0], st.ok());
        }
        if (st.ok()) {
          std::string rows;
          if (want_rows) {
            PutU32(&rows, static_cast<uint32_t>(st->rows.size()));
            for (const minidb::Row& row : st->rows) {
              PutStr(&rows, detail::RenderRow(row));
            }
          }
          reply(kRespOk, rows);
          break;
        }
        if (st.status().IsCrash()) {
          std::string crash;
          EncodeCrash(&crash, *db.last_crash());
          reply(kRespCrash, crash);
          break;
        }
        reply(kRespError, "");
        break;
      }
      case kReqOracleBegin: {
        oracle_saved_map = cov::CoverageRuntime::active_map();
        cov::CoverageRuntime::SetActiveMap(nullptr);
        oracle_saved_hook = db.fault_hook();
        db.set_fault_hook(nullptr);
        oracle_saved_types = db.session().type_trace.size();
        oracle_saved_features = db.session().feature_trace.size();
        reply(kRespOk, "");
        break;
      }
      case kReqOracleEnd: {
        db.session().type_trace.resize(oracle_saved_types);
        db.session().feature_trace.resize(oracle_saved_features);
        db.set_fault_hook(oracle_saved_hook);
        cov::CoverageRuntime::SetActiveMap(oracle_saved_map);
        oracle_saved_map = nullptr;
        oracle_saved_hook = nullptr;
        reply(kRespOk, "");
        break;
      }
      case kReqFirstCol: {
        std::string resp(1, '\0');
        auto t = db.catalog().GetTable(payload);
        if (t.ok() && !(*t)->schema.columns.empty()) {
          resp[0] = 1;
          resp += (*t)->schema.columns.front().name;
        }
        reply(kRespCol, resp);
        break;
      }
      case kReqStorageStats: {
        if (storage == nullptr) {
          reply(kRespError, "");
          break;
        }
        const minidb::StorageEngine::Stats s = storage->stats();
        BackendStorageStats bs;
        bs.pool_hits = s.pool.hits;
        bs.pool_misses = s.pool.misses;
        bs.pool_evictions = s.pool.evictions;
        bs.pool_writebacks = s.pool.writebacks;
        bs.wal_records = s.wal_records;
        bs.wal_bytes = s.wal_bytes;
        bs.fsyncs = s.fsyncs;
        bs.steal_flushes = s.steal_flushes;
        bs.commits = s.commits;
        bs.checkpoints = s.checkpoints;
        std::string resp;
        EncodeStorageStats(&resp, bs);
        reply(kRespStats, resp);
        break;
      }
      default:
        reply(kRespError, "");
        break;
    }
  }
}

}  // namespace lego::fuzz
