#ifndef LEGO_FUZZ_DURABILITY_H_
#define LEGO_FUZZ_DURABILITY_H_

#include <optional>
#include <string>
#include <vector>

#include "minidb/database.h"
#include "minidb/env.h"
#include "minidb/profile.h"

namespace lego::fuzz {

/// Outcome of a post-mortem durability check.
struct DurabilityVerdict {
  /// A verdict was actually computed (the db dir existed and recovery could
  /// be attempted). When false, `ok`/`crash` are meaningless and the caller
  /// falls back to its normal death handling.
  bool checked = false;
  bool ok = true;
  /// Valid when checked && !ok: a DUR-* finding ready for triage.
  minidb::CrashInfo crash;
};

/// Parent-side durability oracle for forked paged backends.
///
/// The invariant under test is the commit protocol's: *acknowledged implies
/// synced implies durable*. The tracker shadows the child's session — setup
/// script, every statement the child acknowledged (OK or error; errored
/// statements can have logged partial effects), and the one statement in
/// flight when the child died. After a death at a storage failpoint the
/// checker recovers the child's db directory out-of-process and compares
/// state digests:
///
///   digest(recovered)  ∈  { digest(shadow of acked),
///                           digest(shadow of acked + in-flight) }
///
/// Two states are legal because the in-flight statement's commit may or may
/// not have reached the disk before the kill landed. Shadows re-execute on a
/// fresh in-memory Database (execution is deterministic) and roll back any
/// still-open transaction — uncommitted effects must be invisible after
/// recovery. Anything else is a DUR-* bug:
///
///   DUR-LOST-COMMIT    recovered state matches a *proper prefix* of the
///                      acked statements — an acknowledged effect vanished
///                      (the planted skip-fsync defect lands here).
///   DUR-PHANTOM        recovered state matches no shadow at all — effects
///                      appeared that were never acknowledged, or state
///                      diverged outright.
///   DUR-RECOVERY-FAIL  recovery itself errored on a directory the engine
///                      wrote (excluded while an injected wal.recover /
///                      env.* failpoint is armed — those failures are the
///                      chaos schedule working as intended).
class DurabilityTracker {
 public:
  /// Starts shadowing a session (called at the top of every backend Reset
  /// once the child acknowledged the reset).
  void BeginSession(std::string setup_script);
  /// The session never reached a clean reset; deaths before the first
  /// tracked statement are not durability-checkable (reset wipes the dir).
  void AbandonSession() { in_session_ = false; }

  /// The child acknowledged `sql` (kRespOk / kRespError / kRespCrash).
  void RecordAcked(std::string sql);
  /// `sql` was sent but not yet acknowledged.
  void SetInflight(std::string sql) { inflight_ = std::move(sql); }
  void ClearInflight() { inflight_.reset(); }

  bool in_session() const { return in_session_; }
  size_t acked_count() const { return acked_.size(); }

  /// Post-mortem check over the dead child's `dir`. `chaos_note` is folded
  /// into the finding's message so reproducer artifacts carry the kill
  /// schedule that produced it.
  DurabilityVerdict CheckAfterDeath(const minidb::DialectProfile& profile,
                                    minidb::Env* env, const std::string& dir,
                                    const std::string& chaos_note) const;

 private:
  /// Digest of a fresh in-memory Database after setup + the first
  /// `acked_prefix` acked statements (+ the in-flight statement when
  /// `with_inflight`), with any open transaction rolled back.
  uint64_t ShadowDigest(const minidb::DialectProfile& profile,
                        size_t acked_prefix, bool with_inflight) const;

  bool in_session_ = false;
  std::string setup_;
  std::vector<std::string> acked_;
  std::optional<std::string> inflight_;
};

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_DURABILITY_H_
