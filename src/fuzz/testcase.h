#ifndef LEGO_FUZZ_TESTCASE_H_
#define LEGO_FUZZ_TESTCASE_H_

#include <string>
#include <vector>

#include "sql/ast.h"
#include "util/status.h"

namespace lego::fuzz {

/// One fuzzing input: an ordered list of SQL statements. The SQL Type
/// Sequence of the test case (paper §II) is the sequence of its statements'
/// type tags.
class TestCase {
 public:
  TestCase() = default;
  explicit TestCase(std::vector<sql::StmtPtr> statements)
      : statements_(std::move(statements)) {}

  /// Parses a semicolon-separated script.
  static StatusOr<TestCase> FromSql(std::string_view script);

  TestCase Clone() const;

  const std::vector<sql::StmtPtr>& statements() const { return statements_; }
  std::vector<sql::StmtPtr>* mutable_statements() { return &statements_; }
  size_t size() const { return statements_.size(); }
  bool empty() const { return statements_.empty(); }

  /// The SQL Type Sequence.
  std::vector<sql::StatementType> TypeSequence() const;

  /// Renders back to a script ("stmt;\nstmt;\n...").
  std::string ToSql() const;

 private:
  std::vector<sql::StmtPtr> statements_;
};

}  // namespace lego::fuzz

#endif  // LEGO_FUZZ_TESTCASE_H_
