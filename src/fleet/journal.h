#ifndef LEGO_FLEET_JOURNAL_H_
#define LEGO_FLEET_JOURNAL_H_

#include <string>

#include "fleet/fleet.h"
#include "util/status.h"

namespace lego::fleet {

/// Coordinator journal: one enveloped state file (`fleet.state` in
/// fleet_dir) rewritten via write-temp-then-rename after every accepted
/// shard result, so a SIGKILLed coordinator resumes from the last accepted
/// result with no torn state. Layout:
///
///   FLFP  campaign fingerprint (config identity; resume refuses mismatch)
///   FLET  done-shard set, merged counters, unique findings with origins,
///         corpus pool + pending exports, storage stats
///   GCOV  merged fleet-wide coverage bitmap
///
/// Shards are idempotent by id: the done-set makes replayed/duplicate
/// completions no-ops, so "journal then maybe crash before status print"
/// can never double-count.
inline constexpr char kJournalFile[] = "fleet.state";

std::string JournalPath(const std::string& fleet_dir);

/// Serializes + atomically writes the journal. The fleet.journal_write
/// failpoint fires here (before any byte is written): `always`/`nth` fail
/// the write — the coordinator logs and keeps fuzzing with stale state —
/// and `kill:N` SIGKILLs the coordinator mid-campaign, which is exactly the
/// crash the resume test recovers from.
Status SaveJournal(const std::string& fleet_dir, const FleetConfig& config,
                   const FleetResult& result);

/// Loads a journal into *result (journaled fields only) after verifying the
/// fingerprint matches `config`. NotFound when no journal exists.
Status LoadJournal(const std::string& fleet_dir, const FleetConfig& config,
                   FleetResult* result);

}  // namespace lego::fleet

#endif  // LEGO_FLEET_JOURNAL_H_
