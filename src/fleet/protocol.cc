#include "fleet/protocol.h"

#include <errno.h>
#include <string.h>
#include <unistd.h>

#include <cstring>

namespace lego::fleet {
namespace {

/// Writes exactly n bytes, retrying EINTR.
Status WriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("fleet pipe write: ") +
                              strerror(errno));
    }
    if (w == 0) return Status::Internal("fleet pipe write: zero write");
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Reads exactly n bytes. NotFound on immediate EOF (nothing read yet),
/// Internal on torn reads / stop-flag abort.
Status ReadAll(int fd, char* data, size_t n, const std::atomic<bool>* stop) {
  size_t off = 0;
  while (off < n) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return Status::Internal("fleet pipe read: stop requested");
    }
    ssize_t r = ::read(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("fleet pipe read: ") +
                              strerror(errno));
    }
    if (r == 0) {
      if (off == 0) return Status::NotFound("fleet pipe closed");
      return Status::Internal("fleet pipe read: torn frame");
    }
    off += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status SendFrame(int fd, MsgType type, std::string_view payload) {
  if (payload.size() + 1 > kMaxFrameBytes) {
    return Status::Internal("fleet frame too large");
  }
  std::string frame;
  frame.reserve(4 + 1 + payload.size());
  AppendU32(&frame, static_cast<uint32_t>(payload.size() + 1));
  frame.push_back(static_cast<char>(type));
  frame.append(payload.data(), payload.size());
  return WriteAll(fd, frame.data(), frame.size());
}

Status RecvFrame(int fd, uint8_t* type, std::string* payload,
                 const std::atomic<bool>* stop) {
  char len_bytes[4];
  Status st = ReadAll(fd, len_bytes, sizeof(len_bytes), stop);
  if (!st.ok()) return st;
  uint32_t len = 0;
  std::memcpy(&len, len_bytes, sizeof(len));
  if (len == 0 || len > kMaxFrameBytes) {
    return Status::Internal("fleet frame: bad length prefix");
  }
  std::string body(len, '\0');
  st = ReadAll(fd, body.data(), body.size(), stop);
  if (!st.ok()) {
    // EOF mid-body is a torn frame, not a clean close.
    if (st.code() == StatusCode::kNotFound) {
      return Status::Internal("fleet pipe read: torn frame");
    }
    return st;
  }
  *type = static_cast<uint8_t>(body[0]);
  payload->assign(body.data() + 1, body.size() - 1);
  return Status::OK();
}

bool FrameBuffer::Next(uint8_t* type, std::string* payload) {
  if (overflowed_ || buf_.size() < 4) return false;
  uint32_t len = 0;
  std::memcpy(&len, buf_.data(), sizeof(len));
  if (len == 0 || len > kMaxFrameBytes) {
    overflowed_ = true;
    return false;
  }
  if (buf_.size() < 4 + static_cast<size_t>(len)) return false;
  *type = static_cast<uint8_t>(buf_[4]);
  payload->assign(buf_.data() + 5, len - 1);
  buf_.erase(0, 4 + static_cast<size_t>(len));
  return true;
}

void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, sizeof(v));
  out->append(b, sizeof(b));
}

void AppendU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, sizeof(v));
  out->append(b, sizeof(b));
}

uint32_t ReadU32(std::string_view bytes, size_t offset) {
  uint32_t v = 0;
  if (offset + sizeof(v) <= bytes.size()) {
    std::memcpy(&v, bytes.data() + offset, sizeof(v));
  }
  return v;
}

uint64_t ReadU64(std::string_view bytes, size_t offset) {
  uint64_t v = 0;
  if (offset + sizeof(v) <= bytes.size()) {
    std::memcpy(&v, bytes.data() + offset, sizeof(v));
  }
  return v;
}

}  // namespace lego::fleet
