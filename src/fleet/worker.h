#ifndef LEGO_FLEET_WORKER_H_
#define LEGO_FLEET_WORKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.h"

namespace lego::fleet {

/// Everything a forked worker needs, fixed at fork time.
struct WorkerContext {
  FleetConfig config;
  int slot = 0;
  int cmd_fd = -1;   // coordinator -> worker (lease grants, shutdown)
  int resp_fd = -1;  // worker -> coordinator (hello, heartbeats, results)
  /// Failpoint specs to arm in this process (re-armed per incarnation, so
  /// counter-based modes like kill:N restart from hit 0 on every respawn).
  std::vector<std::string> chaos_specs;
  uint64_t chaos_seed = 0;
};

/// Worker process main loop: announce readiness, then serve leases until a
/// shutdown frame, pipe EOF (coordinator died — workers must not outlive
/// it), or SIGTERM (drain: finish the in-flight case, ship a partial
/// result, exit). Never returns to the caller's code path — the return
/// value is the process exit code.
int WorkerMain(const WorkerContext& ctx);

}  // namespace lego::fleet

#endif  // LEGO_FLEET_WORKER_H_
