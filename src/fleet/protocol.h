#ifndef LEGO_FLEET_PROTOCOL_H_
#define LEGO_FLEET_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace lego::fleet {

/// Coordinator <-> worker wire protocol over anonymous pipes, one pair per
/// worker slot. Same shape as the forked-backend fork server: every message
/// is a length-prefixed frame, so a worker killed mid-write leaves a torn
/// frame the coordinator detects (short read / oversized length) instead of
/// a desynchronized stream.
///
///   frame := u32 length | u8 type | payload[length - 1]
///
/// Payloads are persist envelopes or little-endian scalars; the result
/// payload additionally carries its own magic/version/checksum envelope so
/// the coordinator can reject poisoned results that arrive in well-formed
/// frames.
enum class MsgType : uint8_t {
  kHello = 1,       // worker -> coord: u64 pid (ready for a lease)
  kHeartbeat = 2,   // worker -> coord: u32 shard | u64 executions
  kResult = 3,      // worker -> coord: u32 shard | enveloped ShardOutcome
  kLeaseGrant = 4,  // coord -> worker: shard | seed | budget | deadline | pool
  kShutdown = 5,    // coord -> worker: drain and exit(0)
};

/// Upper bound on one frame. Generous (corpus pools ride in lease grants)
/// but finite: a corrupted length prefix fails fast instead of allocating.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Writes one frame, retrying EINTR. EPIPE (peer died) and short writes
/// surface as errors — senders treat any failure as "peer gone".
Status SendFrame(int fd, MsgType type, std::string_view payload);

/// Blocking read of one frame. NotFound signals clean EOF before a frame
/// started (peer closed); anything else torn or oversized is an error. When
/// `stop` is set, the read aborts with Internal once the flag turns true
/// (workers drain on SIGTERM even if blocked on the command pipe).
Status RecvFrame(int fd, uint8_t* type, std::string* payload,
                 const std::atomic<bool>* stop = nullptr);

/// Nonblocking reassembly buffer for the coordinator's poll loop: bytes go
/// in as they arrive, complete frames come out. A length prefix beyond
/// kMaxFrameBytes poisons the buffer (Overflowed) — the slot is treated as
/// speaking garbage and struck.
class FrameBuffer {
 public:
  void Append(const char* data, size_t n) { buf_.append(data, n); }

  /// Extracts the next complete frame. Returns false when no full frame is
  /// buffered yet (or the buffer is poisoned).
  bool Next(uint8_t* type, std::string* payload);

  bool Overflowed() const { return overflowed_; }
  size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  bool overflowed_ = false;
};

// Little-endian scalar helpers shared by payload encoders.
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
uint32_t ReadU32(std::string_view bytes, size_t offset);
uint64_t ReadU64(std::string_view bytes, size_t offset);

}  // namespace lego::fleet

#endif  // LEGO_FLEET_PROTOCOL_H_
