#ifndef LEGO_FLEET_FLEET_H_
#define LEGO_FLEET_FLEET_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "coverage/coverage.h"
#include "fuzz/backend.h"
#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "util/status.h"

namespace lego::fleet {

/// Campaign identity shared by the coordinator and every worker process.
/// Serialized into the journal fingerprint, so a --resume under a different
/// config aborts instead of silently fuzzing the wrong campaign. A shard's
/// execution is a pure function of (config, shard id, imported pool), which
/// is what makes re-queued shards and coordinator resume loss-free.
struct FleetConfig {
  std::string profile = "pglite";
  std::string fuzzer = "lego";
  uint64_t base_seed = 1;
  /// Work units: shard s runs a serial RunCampaign seeded ShardSeed(s).
  int num_shards = 8;
  /// Executions per shard (the lease budget).
  int shard_budget = 2000;
  /// Logic oracles armed inside workers ("" = none; same spec grammar as
  /// fuzz_campaign_cli --oracle).
  std::string oracle_spec;
  bool rule_coverage = false;
  /// Worker execution backend. With paged storage, worker slot w runs under
  /// `db_dir`/fw<w> so slots never share a WAL generation.
  fuzz::BackendOptions backend;
  /// Heartbeat cadence in *executions*, not wall time — so a chaos schedule
  /// on fleet.heartbeat (e.g. kill:N) is deterministic per shard.
  int progress_every = 64;
  /// Corpus sync: after every N completed shards, merge the collected
  /// exports and run DistillCorpus; subsequent leases import the distilled
  /// pool. 0 disables redistribution (exports are still collected).
  int distill_every = 0;
};

/// Coordinator behavior knobs (not part of the campaign identity: a resume
/// may change worker count, deadlines, or chaos without a fingerprint
/// mismatch).
struct FleetOptions {
  FleetConfig config;
  /// Independent worker *processes* (forked by the coordinator).
  int num_workers = 2;
  /// Journal (fleet.state), status.json, and the collected repro/ tree.
  std::string fleet_dir;
  /// Resume from fleet_dir's journal: completed shards are not re-run
  /// (idempotent shard ids), merged findings/corpus are restored.
  bool resume = false;
  /// A leased worker that has not heartbeat for this long loses the lease:
  /// the worker is killed, the shard re-queued with backoff.
  int lease_deadline_ms = 15000;
  /// Strikes (death, expired lease, poisoned result) before a worker slot
  /// is quarantined instead of respawned.
  int strike_limit = 3;
  /// Base respawn delay after a strike; doubles per strike on the slot.
  int respawn_backoff_ms = 50;
  /// Per-slot failpoint specs ("name=mode"), armed inside the worker
  /// process right after fork — lets tests/chaos target one slot while the
  /// coordinator stays healthy. Re-armed for every respawn incarnation.
  std::vector<std::pair<int, std::string>> worker_chaos;
  /// Cooperative stop: leased workers are drained (SIGTERM -> their
  /// campaign stop flag -> partial result), in-flight shards re-queued for
  /// a later resume, a final journal written, and RunFleet returns with
  /// stopped_early set.
  const std::atomic<bool>* stop_flag = nullptr;
  /// After the campaign, triage merged captures into fleet_dir/repro
  /// (deduped .sql tree + manifest.tsv stamped with worker origins).
  bool triage = false;
  /// ddmin-minimize during fleet triage.
  bool reduce = false;
  /// status.json rewrite cadence.
  int status_every_ms = 200;
  /// Coordinator event log on stderr (spawns, strikes, leases, distills).
  bool verbose = false;
};

/// Coordinator aggregate: the merged view over every accepted shard result.
/// The persisted subset round-trips through the journal (see journal.h);
/// counters below the marker are per-run telemetry.
struct FleetResult {
  // --- journaled ---
  int64_t executions = 0;
  int64_t statements_executed = 0;
  int64_t statement_errors = 0;
  int crashes_total = 0;
  int logic_bugs_total = 0;
  size_t rules = 0;  // max over shards (rule maps don't merge bitwise)
  /// Unique findings keyed the way campaigns dedup them, each stamped with
  /// the origin of the worker whose shard found it first.
  std::map<uint64_t, minidb::CrashInfo> crashes;  // by stack hash
  std::map<uint64_t, fuzz::TestCase> crash_cases;
  std::map<uint64_t, std::string> crash_origins;
  std::map<uint64_t, fuzz::LogicBugInfo> logic;  // by fingerprint
  std::map<uint64_t, fuzz::TestCase> logic_cases;
  std::map<uint64_t, std::string> logic_origins;
  /// Corpus: `corpus` is the current distilled pool (what leases import);
  /// `corpus_pending` holds exports collected since the last distill cycle.
  std::vector<fuzz::TestCase> corpus;
  std::vector<fuzz::TestCase> corpus_pending;
  /// Exact fleet-wide edge union, merged from per-shard harness bitmaps.
  cov::GlobalCoverage coverage;
  fuzz::BackendStorageStats storage;
  std::set<int> shards_done;
  int shards_requeued = 0;
  int leases_expired = 0;
  int results_rejected = 0;   // torn/poisoned envelopes
  int duplicate_results = 0;  // idempotent shard ids: re-delivery ignored
  int distill_cycles = 0;
  double distill_seconds = 0.0;

  // --- per-run telemetry (not journaled) ---
  int shards_total = 0;
  int workers_spawned = 0;
  int workers_quarantined = 0;
  int lease_grants_deferred = 0;  // fleet.lease_grant failpoint
  int journal_failures = 0;
  /// Wall-clock seconds RunFleet spent (bench: aggregate execs/sec and
  /// coordinator overhead derive from this).
  double elapsed_seconds = 0.0;
  /// Unique bugs written to fleet_dir/repro when options.triage ran
  /// (-1 = triage not requested).
  int triaged_bugs = -1;
  bool resumed = false;
  bool stopped_early = false;
  /// Every slot quarantined with shards still pending: the campaign
  /// degraded to a journal + partial result instead of stalling.
  bool degraded = false;
  Status status = Status::OK();

  size_t edges() const { return coverage.CoveredEdges(); }
  std::set<uint64_t> crash_hashes() const {
    std::set<uint64_t> out;
    for (const auto& [hash, crash] : crashes) out.insert(hash);
    return out;
  }
  std::set<std::string> bug_ids() const {
    std::set<std::string> out;
    for (const auto& [hash, crash] : crashes) out.insert(crash.bug_id);
    return out;
  }
  std::set<uint64_t> logic_fingerprints() const {
    std::set<uint64_t> out;
    for (const auto& [fp, info] : logic) out.insert(fp);
    return out;
  }
};

/// Corpus-sync step shared by the coordinator and the in-process reference
/// in tests: absorbs `fresh` exports into *pending and, when
/// `completed_shards` crosses the distill cadence, merges pool+pending
/// through DistillCorpus (replayed on an in-process/mem harness) back into
/// *pool. Identical call sequence => identical pool evolution, which is
/// what the merge-distill-redistribute equivalence test asserts.
Status UpdatePool(const FleetConfig& config, int completed_shards,
                  std::vector<fuzz::TestCase> fresh,
                  std::vector<fuzz::TestCase>* pool,
                  std::vector<fuzz::TestCase>* pending, int* distill_cycles,
                  double* distill_seconds);

/// Runs the fleet: forks options.num_workers worker processes, shards the
/// campaign across them via leased shards renewed by heartbeat, survives
/// worker crashes/hangs/poisoned results (requeue + backoff + per-slot
/// circuit breaker), journals coordinator state atomically (kill -9 safe),
/// periodically distills/redistributes the corpus, and serves status.json.
/// Fatal setup errors surface in FleetResult::status; fault-induced
/// degradation surfaces in the counters, never as a hang.
FleetResult RunFleet(const FleetOptions& options);

}  // namespace lego::fleet

#endif  // LEGO_FLEET_FLEET_H_
