#include "fleet/status_json.h"

#include <cinttypes>
#include <cstdio>

#include "persist/io.h"

namespace lego::fleet {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendKV(std::string* out, const char* key, int64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRId64, key, v);
  *out += buf;
}

void AppendKV(std::string* out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", key, v);
  *out += buf;
}

void AppendKV(std::string* out, const char* key, const std::string& v) {
  *out += '"';
  *out += key;
  *out += "\":\"";
  AppendEscaped(out, v);
  *out += '"';
}

}  // namespace

std::string RenderStatusJson(const FleetResult& result,
                             const std::vector<WorkerStatus>& workers,
                             double elapsed_s, double execs_per_sec) {
  int live = 0, idle = 0, quarantined = 0, dead = 0;
  for (const auto& w : workers) {
    if (w.state == "leased" || w.state == "starting") ++live;
    if (w.state == "idle") ++idle;
    if (w.state == "quarantined") ++quarantined;
    if (w.state == "dead") ++dead;
  }
  std::string out = "{";
  AppendKV(&out, "elapsed_s", elapsed_s);
  out += ',';
  AppendKV(&out, "shards_total", static_cast<int64_t>(result.shards_total));
  out += ',';
  AppendKV(&out, "shards_done",
           static_cast<int64_t>(result.shards_done.size()));
  out += ',';
  AppendKV(&out, "shards_requeued",
           static_cast<int64_t>(result.shards_requeued));
  out += ',';
  AppendKV(&out, "executions", result.executions);
  out += ',';
  AppendKV(&out, "execs_per_sec", execs_per_sec);
  out += ',';
  AppendKV(&out, "statements", result.statements_executed);
  out += ',';
  AppendKV(&out, "edges", static_cast<int64_t>(result.edges()));
  out += ',';
  AppendKV(&out, "rules", static_cast<int64_t>(result.rules));
  out += ',';
  AppendKV(&out, "unique_crashes", static_cast<int64_t>(result.crashes.size()));
  out += ',';
  AppendKV(&out, "unique_logic_bugs",
           static_cast<int64_t>(result.logic.size()));
  out += ',';
  AppendKV(&out, "corpus_pool", static_cast<int64_t>(result.corpus.size()));
  out += ',';
  AppendKV(&out, "corpus_pending",
           static_cast<int64_t>(result.corpus_pending.size()));
  out += ',';
  AppendKV(&out, "distill_cycles", static_cast<int64_t>(result.distill_cycles));
  out += ',';
  AppendKV(&out, "leases_expired", static_cast<int64_t>(result.leases_expired));
  out += ',';
  AppendKV(&out, "results_rejected",
           static_cast<int64_t>(result.results_rejected));
  out += ',';
  AppendKV(&out, "workers_live", static_cast<int64_t>(live));
  out += ',';
  AppendKV(&out, "workers_idle", static_cast<int64_t>(idle));
  out += ',';
  AppendKV(&out, "workers_dead", static_cast<int64_t>(dead));
  out += ',';
  AppendKV(&out, "workers_quarantined", static_cast<int64_t>(quarantined));
  out += ',';
  AppendKV(&out, "degraded", static_cast<int64_t>(result.degraded ? 1 : 0));
  out += ",\"storage\":{";
  AppendKV(&out, "pool_hit_rate", result.storage.pool_hit_rate());
  out += ',';
  AppendKV(&out, "wal_records", static_cast<int64_t>(result.storage.wal_records));
  out += ',';
  AppendKV(&out, "fsyncs", static_cast<int64_t>(result.storage.fsyncs));
  out += "},\"workers\":[";
  for (size_t i = 0; i < workers.size(); ++i) {
    const WorkerStatus& w = workers[i];
    if (i > 0) out += ',';
    out += '{';
    AppendKV(&out, "slot", static_cast<int64_t>(w.slot));
    out += ',';
    AppendKV(&out, "state", w.state);
    out += ',';
    AppendKV(&out, "pid", w.pid);
    out += ',';
    AppendKV(&out, "shard", static_cast<int64_t>(w.shard));
    out += ',';
    AppendKV(&out, "strikes", static_cast<int64_t>(w.strikes));
    out += ',';
    AppendKV(&out, "lease_age_s", w.lease_age_s);
    out += ',';
    AppendKV(&out, "heartbeat_age_s", w.heartbeat_age_s);
    out += '}';
  }
  out += "]}";
  return out;
}

Status WriteStatusFile(const std::string& fleet_dir, const std::string& json) {
  return persist::WriteTextFileAtomic(fleet_dir + "/" + kStatusFile,
                                      json + "\n");
}

}  // namespace lego::fleet
