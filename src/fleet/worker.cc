#include "fleet/worker.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "chaos/failpoint.h"
#include "fleet/protocol.h"
#include "fleet/shard.h"

namespace lego::fleet {
namespace {

std::atomic<bool> g_worker_stop{false};

void HandleWorkerStop(int) { g_worker_stop.store(true); }

void InstallWorkerSignals() {
  struct sigaction sa;
  sa.sa_handler = HandleWorkerStop;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a drain must interrupt a blocking read on the command
  // pipe, not wait for the next frame.
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);
}

}  // namespace

int WorkerMain(const WorkerContext& ctx) {
  InstallWorkerSignals();
  g_worker_stop.store(false);

  // Each incarnation re-arms its chaos schedule from scratch, so hit
  // ordinals (nth:N, kill:N) restart at zero on every respawn — a worker
  // configured to die keeps dying until quarantined, which is the behavior
  // the circuit-breaker tests script.
  chaos::DisarmAll();
  for (const std::string& spec : ctx.chaos_specs) {
    Status st = chaos::ArmSpec(spec, ctx.chaos_seed);
    if (!st.ok()) {
      std::fprintf(stderr, "fleet worker %d: bad chaos spec '%s': %s\n",
                   ctx.slot, spec.c_str(), st.ToString().c_str());
      return 2;
    }
  }

  FleetConfig config = ctx.config;
  // Paged storage: every slot gets a private database directory so WAL
  // generations never interleave across workers.
  if (!config.backend.db_dir.empty()) {
    config.backend.db_dir += "/fw" + std::to_string(ctx.slot);
  }

  std::string hello;
  AppendU64(&hello, static_cast<uint64_t>(::getpid()));
  if (!SendFrame(ctx.resp_fd, MsgType::kHello, hello).ok()) return 1;

  for (;;) {
    uint8_t type = 0;
    std::string payload;
    Status st = RecvFrame(ctx.cmd_fd, &type, &payload, &g_worker_stop);
    if (!st.ok()) {
      // Clean EOF or drain with no lease in flight: nothing to hand back.
      return g_worker_stop.load() ? 0
             : st.code() == StatusCode::kNotFound ? 0
                                                  : 1;
    }
    if (type == static_cast<uint8_t>(MsgType::kShutdown)) return 0;
    if (type != static_cast<uint8_t>(MsgType::kLeaseGrant)) {
      std::fprintf(stderr, "fleet worker %d: unexpected frame type %d\n",
                   ctx.slot, static_cast<int>(type));
      return 1;
    }

    // Lease grant: shard | seed | budget | deadline | pool envelope.
    if (payload.size() < 4 + 8 + 4 + 4) return 1;
    const int shard_id = static_cast<int>(ReadU32(payload, 0));
    const int budget = static_cast<int>(ReadU32(payload, 12));
    std::vector<fuzz::TestCase> pool;
    if (payload.size() > 20) {
      auto decoded = DecodePool(payload.substr(20));
      if (!decoded.ok()) {
        std::fprintf(stderr, "fleet worker %d: bad pool in lease: %s\n",
                     ctx.slot, decoded.status().ToString().c_str());
        return 1;
      }
      pool = std::move(*decoded);
    }
    FleetConfig shard_config = config;
    shard_config.shard_budget = budget;

    auto progress = [&](int64_t executions) {
      // The heartbeat failpoint models a worker that keeps fuzzing but goes
      // silent (mode always/prob) or dies mid-shard (kill:N) — the
      // coordinator's lease deadline covers both.
      if (LEGO_FAILPOINT("fleet.heartbeat")) return;
      std::string hb;
      AppendU32(&hb, static_cast<uint32_t>(shard_id));
      AppendU64(&hb, static_cast<uint64_t>(executions));
      (void)SendFrame(ctx.resp_fd, MsgType::kHeartbeat, hb);
    };
    // Lease-accept heartbeat: the grant is acknowledged before the first
    // progress interval, so lease age and heartbeat age start together.
    progress(0);

    auto outcome = ExecuteShard(shard_config, shard_id, pool, &g_worker_stop,
                                progress);
    if (!outcome.ok()) {
      std::fprintf(stderr, "fleet worker %d: shard %d failed: %s\n", ctx.slot,
                   shard_id, outcome.status().ToString().c_str());
      return 3;
    }

    std::string envelope = EncodeShardOutcome(*outcome);
    if (LEGO_FAILPOINT("fleet.result_write") && !envelope.empty()) {
      // Poison one payload byte past the header: the frame arrives intact
      // but the envelope checksum no longer matches.
      envelope[envelope.size() / 2] =
          static_cast<char>(envelope[envelope.size() / 2] ^ 0x5a);
    }
    std::string result_payload;
    AppendU32(&result_payload, static_cast<uint32_t>(shard_id));
    result_payload += envelope;
    if (!SendFrame(ctx.resp_fd, MsgType::kResult, result_payload).ok()) {
      return 1;
    }
    if (g_worker_stop.load()) return 0;
  }
}

}  // namespace lego::fleet
