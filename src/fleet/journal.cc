#include "fleet/journal.h"

#include <unistd.h>

#include <utility>

#include "chaos/failpoint.h"
#include "fuzz/state.h"
#include "persist/io.h"

namespace lego::fleet {
namespace {

constexpr char kFingerprintChunk[5] = "FLFP";
constexpr char kDataChunk[5] = "FLET";

void SaveFingerprint(const FleetConfig& config, persist::StateWriter* w) {
  w->BeginChunk(persist::ChunkTag(kFingerprintChunk));
  w->WriteString(config.profile);
  w->WriteString(config.fuzzer);
  w->WriteU64(config.base_seed);
  w->WriteU32(static_cast<uint32_t>(config.num_shards));
  w->WriteU32(static_cast<uint32_t>(config.shard_budget));
  w->WriteString(config.oracle_spec);
  w->WriteBool(config.rule_coverage);
  w->WriteString(std::string(fuzz::BackendKindName(config.backend.kind)));
  w->WriteString(std::string(fuzz::StorageKindName(config.backend.storage)));
  w->WriteU32(static_cast<uint32_t>(config.progress_every));
  w->WriteU32(static_cast<uint32_t>(config.distill_every));
  w->EndChunk();
}

Status CheckFingerprint(const FleetConfig& config, persist::StateReader* r) {
  LEGO_RETURN_IF_ERROR(r->EnterChunk(persist::ChunkTag(kFingerprintChunk)));
  const std::string profile = r->ReadString();
  const std::string fuzzer = r->ReadString();
  const uint64_t base_seed = r->ReadU64();
  const int num_shards = static_cast<int>(r->ReadU32());
  const int shard_budget = static_cast<int>(r->ReadU32());
  const std::string oracle_spec = r->ReadString();
  const bool rule_coverage = r->ReadBool();
  const std::string backend = r->ReadString();
  const std::string storage = r->ReadString();
  const int progress_every = static_cast<int>(r->ReadU32());
  const int distill_every = static_cast<int>(r->ReadU32());
  LEGO_RETURN_IF_ERROR(r->ExitChunk());
  if (!r->ok()) return r->status();
  if (profile != config.profile || fuzzer != config.fuzzer ||
      base_seed != config.base_seed || num_shards != config.num_shards ||
      shard_budget != config.shard_budget ||
      oracle_spec != config.oracle_spec ||
      rule_coverage != config.rule_coverage ||
      backend != fuzz::BackendKindName(config.backend.kind) ||
      storage != fuzz::StorageKindName(config.backend.storage) ||
      progress_every != config.progress_every ||
      distill_every != config.distill_every) {
    return Status::InvalidArgument(
        "fleet journal: campaign fingerprint mismatch (journal is from "
        "profile=" +
        profile + " fuzzer=" + fuzzer + " seed=" + std::to_string(base_seed) +
        " shards=" + std::to_string(num_shards) + ")");
  }
  return Status::OK();
}

void SaveCrashMap(const FleetResult& result, persist::StateWriter* w) {
  w->WriteU64(result.crashes.size());
  for (const auto& [hash, crash] : result.crashes) {
    w->WriteU64(hash);
    w->WriteString(crash.bug_id);
    w->WriteString(crash.component);
    w->WriteString(crash.kind);
    w->WriteU64(crash.stack_hash);
    w->WriteString(crash.message);
    w->WriteString(result.crash_origins.count(hash)
                       ? result.crash_origins.at(hash)
                       : std::string());
    fuzz::SaveTestCase(result.crash_cases.at(hash), w);
  }
}

Status LoadCrashMap(persist::StateReader* r, FleetResult* result) {
  const uint64_t count = r->ReadU64();
  if (!r->CheckCount(count, 8)) {
    return Status::Internal("fleet journal: corrupt crash map");
  }
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t hash = r->ReadU64();
    minidb::CrashInfo crash;
    crash.bug_id = r->ReadString();
    crash.component = r->ReadString();
    crash.kind = r->ReadString();
    crash.stack_hash = r->ReadU64();
    crash.message = r->ReadString();
    const std::string origin = r->ReadString();
    auto tc = fuzz::LoadTestCase(r);
    if (!tc.ok()) return tc.status();
    result->crashes.emplace(hash, std::move(crash));
    result->crash_cases.emplace(hash, std::move(*tc));
    if (!origin.empty()) result->crash_origins.emplace(hash, origin);
  }
  return Status::OK();
}

void SaveLogicMap(const FleetResult& result, persist::StateWriter* w) {
  w->WriteU64(result.logic.size());
  for (const auto& [fp, bug] : result.logic) {
    w->WriteU64(fp);
    w->WriteString(bug.check);
    w->WriteString(bug.query);
    w->WriteString(bug.detail);
    w->WriteU64(bug.fingerprint);
    w->WriteU64(bug.interleave_seed);
    w->WriteU32(static_cast<uint32_t>(bug.sessions));
    w->WriteString(result.logic_origins.count(fp)
                       ? result.logic_origins.at(fp)
                       : std::string());
    fuzz::SaveTestCase(result.logic_cases.at(fp), w);
  }
}

Status LoadLogicMap(persist::StateReader* r, FleetResult* result) {
  const uint64_t count = r->ReadU64();
  if (!r->CheckCount(count, 8)) {
    return Status::Internal("fleet journal: corrupt logic map");
  }
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t fp = r->ReadU64();
    fuzz::LogicBugInfo bug;
    bug.check = r->ReadString();
    bug.query = r->ReadString();
    bug.detail = r->ReadString();
    bug.fingerprint = r->ReadU64();
    bug.interleave_seed = r->ReadU64();
    bug.sessions = static_cast<int>(r->ReadU32());
    const std::string origin = r->ReadString();
    auto tc = fuzz::LoadTestCase(r);
    if (!tc.ok()) return tc.status();
    result->logic.emplace(fp, std::move(bug));
    result->logic_cases.emplace(fp, std::move(*tc));
    if (!origin.empty()) result->logic_origins.emplace(fp, origin);
  }
  return Status::OK();
}

void SaveCases(const std::vector<fuzz::TestCase>& cases,
               persist::StateWriter* w) {
  w->WriteU64(cases.size());
  for (const auto& tc : cases) fuzz::SaveTestCase(tc, w);
}

Status LoadCases(persist::StateReader* r, std::vector<fuzz::TestCase>* out) {
  const uint64_t count = r->ReadU64();
  if (!r->CheckCount(count, 1)) {
    return Status::Internal("fleet journal: corrupt case count");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    auto tc = fuzz::LoadTestCase(r);
    if (!tc.ok()) return tc.status();
    out->push_back(std::move(*tc));
  }
  return Status::OK();
}

}  // namespace

std::string JournalPath(const std::string& fleet_dir) {
  return fleet_dir + "/" + kJournalFile;
}

Status SaveJournal(const std::string& fleet_dir, const FleetConfig& config,
                   const FleetResult& result) {
  // The failpoint sits before serialization so `kill:N` models a coordinator
  // lost at its most vulnerable moment: state assembled, nothing durable yet.
  if (LEGO_FAILPOINT("fleet.journal_write")) {
    return Status::Internal("fleet journal: injected write failure");
  }
  persist::StateWriter w;
  SaveFingerprint(config, &w);
  w.BeginChunk(persist::ChunkTag(kDataChunk));
  w.WriteU64(result.shards_done.size());
  for (int shard : result.shards_done) {
    w.WriteU32(static_cast<uint32_t>(shard));
  }
  w.WriteI64(result.executions);
  w.WriteI64(result.statements_executed);
  w.WriteI64(result.statement_errors);
  w.WriteI64(static_cast<int64_t>(result.crashes_total));
  w.WriteI64(static_cast<int64_t>(result.logic_bugs_total));
  w.WriteU64(result.rules);
  w.WriteU32(static_cast<uint32_t>(result.shards_requeued));
  w.WriteU32(static_cast<uint32_t>(result.leases_expired));
  w.WriteU32(static_cast<uint32_t>(result.results_rejected));
  w.WriteU32(static_cast<uint32_t>(result.duplicate_results));
  w.WriteU32(static_cast<uint32_t>(result.distill_cycles));
  w.WriteDouble(result.distill_seconds);
  SaveCrashMap(result, &w);
  SaveLogicMap(result, &w);
  SaveCases(result.corpus, &w);
  SaveCases(result.corpus_pending, &w);
  const fuzz::BackendStorageStats& s = result.storage;
  w.WriteU64(s.pool_hits);
  w.WriteU64(s.pool_misses);
  w.WriteU64(s.pool_evictions);
  w.WriteU64(s.pool_writebacks);
  w.WriteU64(s.wal_records);
  w.WriteU64(s.wal_bytes);
  w.WriteU64(s.fsyncs);
  w.WriteU64(s.steal_flushes);
  w.WriteU64(s.commits);
  w.WriteU64(s.checkpoints);
  w.EndChunk();
  LEGO_RETURN_IF_ERROR(result.coverage.SaveState(&w));
  return w.WriteFileAtomic(JournalPath(fleet_dir));
}

Status LoadJournal(const std::string& fleet_dir, const FleetConfig& config,
                   FleetResult* result) {
  const std::string path = JournalPath(fleet_dir);
  if (::access(path.c_str(), F_OK) != 0) {
    return Status::NotFound("fleet journal: no " + path);
  }
  auto reader = persist::StateReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  persist::StateReader& r = *reader;
  LEGO_RETURN_IF_ERROR(CheckFingerprint(config, &r));
  LEGO_RETURN_IF_ERROR(r.EnterChunk(persist::ChunkTag(kDataChunk)));
  const uint64_t done_count = r.ReadU64();
  if (!r.CheckCount(done_count, 4)) {
    return Status::Internal("fleet journal: corrupt done-set");
  }
  for (uint64_t i = 0; i < done_count; ++i) {
    result->shards_done.insert(static_cast<int>(r.ReadU32()));
  }
  result->executions = r.ReadI64();
  result->statements_executed = r.ReadI64();
  result->statement_errors = r.ReadI64();
  result->crashes_total = static_cast<int>(r.ReadI64());
  result->logic_bugs_total = static_cast<int>(r.ReadI64());
  result->rules = r.ReadU64();
  result->shards_requeued = static_cast<int>(r.ReadU32());
  result->leases_expired = static_cast<int>(r.ReadU32());
  result->results_rejected = static_cast<int>(r.ReadU32());
  result->duplicate_results = static_cast<int>(r.ReadU32());
  result->distill_cycles = static_cast<int>(r.ReadU32());
  result->distill_seconds = r.ReadDouble();
  LEGO_RETURN_IF_ERROR(LoadCrashMap(&r, result));
  LEGO_RETURN_IF_ERROR(LoadLogicMap(&r, result));
  LEGO_RETURN_IF_ERROR(LoadCases(&r, &result->corpus));
  LEGO_RETURN_IF_ERROR(LoadCases(&r, &result->corpus_pending));
  fuzz::BackendStorageStats& s = result->storage;
  s.pool_hits = r.ReadU64();
  s.pool_misses = r.ReadU64();
  s.pool_evictions = r.ReadU64();
  s.pool_writebacks = r.ReadU64();
  s.wal_records = r.ReadU64();
  s.wal_bytes = r.ReadU64();
  s.fsyncs = r.ReadU64();
  s.steal_flushes = r.ReadU64();
  s.commits = r.ReadU64();
  s.checkpoints = r.ReadU64();
  LEGO_RETURN_IF_ERROR(r.ExitChunk());
  LEGO_RETURN_IF_ERROR(result->coverage.LoadState(&r));
  if (!r.ok()) return r.status();
  return Status::OK();
}

}  // namespace lego::fleet
