#include "fleet/shard.h"

#include <utility>

#include "baselines/sqlancer_like.h"
#include "baselines/sqlsmith_like.h"
#include "baselines/squirrel_like.h"
#include "fuzz/harness.h"
#include "fuzz/state.h"
#include "lego/lego_fuzzer.h"
#include "persist/io.h"
#include "triage/oracle_suite.h"
#include "util/hash.h"

namespace lego::fleet {
namespace {

// Shard payload layout version-stamped by the persist envelope; the chunk
// tag guards against feeding some other enveloped file into the decoder.
constexpr char kShardChunk[5] = "SHRD";
constexpr char kPoolChunk[5] = "POOL";

void SaveCrashInfo(const minidb::CrashInfo& crash, persist::StateWriter* w) {
  w->WriteString(crash.bug_id);
  w->WriteString(crash.component);
  w->WriteString(crash.kind);
  w->WriteU64(crash.stack_hash);
  w->WriteString(crash.message);
}

minidb::CrashInfo LoadCrashInfo(persist::StateReader* r) {
  minidb::CrashInfo crash;
  crash.bug_id = r->ReadString();
  crash.component = r->ReadString();
  crash.kind = r->ReadString();
  crash.stack_hash = r->ReadU64();
  crash.message = r->ReadString();
  return crash;
}

void SaveLogicBug(const fuzz::LogicBugInfo& bug, persist::StateWriter* w) {
  w->WriteString(bug.check);
  w->WriteString(bug.query);
  w->WriteString(bug.detail);
  w->WriteU64(bug.fingerprint);
  w->WriteU64(bug.interleave_seed);
  w->WriteU32(static_cast<uint32_t>(bug.sessions));
}

fuzz::LogicBugInfo LoadLogicBug(persist::StateReader* r) {
  fuzz::LogicBugInfo bug;
  bug.check = r->ReadString();
  bug.query = r->ReadString();
  bug.detail = r->ReadString();
  bug.fingerprint = r->ReadU64();
  bug.interleave_seed = r->ReadU64();
  bug.sessions = static_cast<int>(r->ReadU32());
  return bug;
}

void SaveCases(const std::vector<fuzz::TestCase>& cases,
               persist::StateWriter* w) {
  w->WriteU64(cases.size());
  for (const auto& tc : cases) fuzz::SaveTestCase(tc, w);
}

Status LoadCases(persist::StateReader* r, std::vector<fuzz::TestCase>* out) {
  const uint64_t count = r->ReadU64();
  if (!r->CheckCount(count, 1)) {
    return Status::Internal("fleet shard: corrupt case count");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    auto tc = fuzz::LoadTestCase(r);
    if (!tc.ok()) return tc.status();
    out->push_back(std::move(*tc));
  }
  return Status::OK();
}

}  // namespace

uint64_t ShardSeed(const FleetConfig& config, int shard_id) {
  // +1 keeps shard 0 off the raw base seed, which serial campaigns use.
  return HashMix(config.base_seed, static_cast<uint64_t>(shard_id) + 1);
}

std::unique_ptr<fuzz::Fuzzer> MakeFleetFuzzer(
    const std::string& name, const minidb::DialectProfile& profile,
    uint64_t seed) {
  if (name == "lego" || name == "lego-") {
    core::LegoOptions options;
    options.sequence_algorithms_enabled = (name == "lego");
    options.rng_seed = seed;
    return std::make_unique<core::LegoFuzzer>(profile, options);
  }
  if (name == "squirrel") {
    return std::make_unique<baselines::SquirrelLikeFuzzer>(profile, seed);
  }
  if (name == "sqlancer") {
    return std::make_unique<baselines::SqlancerLikeFuzzer>(profile, seed);
  }
  if (name == "sqlsmith") {
    return std::make_unique<baselines::SqlsmithLikeFuzzer>(profile, seed);
  }
  return nullptr;
}

StatusOr<ShardOutcome> ExecuteShard(
    const FleetConfig& config, int shard_id,
    const std::vector<fuzz::TestCase>& pool, const std::atomic<bool>* stop,
    std::function<void(int64_t)> progress) {
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName(config.profile);
  if (profile == nullptr) {
    return Status::InvalidArgument("fleet: unknown profile '" +
                                   config.profile + "'");
  }
  auto fuzzer = MakeFleetFuzzer(config.fuzzer, *profile, 0);
  if (fuzzer == nullptr) {
    return Status::InvalidArgument("fleet: unknown fuzzer '" + config.fuzzer +
                                   "'");
  }
  // Rebuild with the shard seed (the probe above only validated the name).
  fuzzer = MakeFleetFuzzer(config.fuzzer, *profile, ShardSeed(config, shard_id));

  std::unique_ptr<triage::OracleSuite> suite;
  fuzz::BackendOptions backend = config.backend;
  if (!config.oracle_spec.empty()) {
    std::string error;
    suite = triage::OracleSuite::FromSpec(config.oracle_spec, &error);
    if (suite == nullptr) {
      return Status::InvalidArgument("fleet: bad oracle spec: " + error);
    }
    if (suite->durability_requested()) backend.durability_check = true;
  }

  fuzz::ExecutionHarness harness(*profile, backend);
  harness.set_rule_coverage(config.rule_coverage);
  if (suite != nullptr) harness.set_logic_oracle(suite.get());

  fuzz::CampaignOptions options;
  options.max_executions = config.shard_budget;
  options.snapshot_every = 0;
  options.export_corpus = true;
  if (!pool.empty()) options.import_seeds = &pool;
  options.stop_flag = stop;
  options.on_progress = std::move(progress);
  options.progress_every = config.progress_every;

  ShardOutcome outcome;
  outcome.shard_id = shard_id;
  outcome.result = fuzz::RunCampaign(fuzzer.get(), &harness, options);
  outcome.complete = !outcome.result.stopped_early &&
                     outcome.result.executions >= config.shard_budget;
  outcome.coverage = harness.global_coverage();
  if (!outcome.result.state_status.ok()) {
    return outcome.result.state_status;
  }
  return outcome;
}

std::string EncodeShardOutcome(const ShardOutcome& outcome) {
  persist::StateWriter w;
  w.BeginChunk(persist::ChunkTag(kShardChunk));
  w.WriteU32(static_cast<uint32_t>(outcome.shard_id));
  w.WriteBool(outcome.complete);
  const fuzz::CampaignResult& r = outcome.result;
  w.WriteI64(r.executions);
  w.WriteI64(r.statements_executed);
  w.WriteI64(r.statement_errors);
  w.WriteI64(r.crashes_total);
  w.WriteI64(r.logic_bugs_total);
  w.WriteU64(r.rules);
  w.WriteU64(r.fuzzer_stats.corpus_seeds);

  w.WriteU64(r.captured_cases.size());
  for (size_t i = 0; i < r.captured_cases.size(); ++i) {
    SaveCrashInfo(r.captured_crashes[i], &w);
    fuzz::SaveTestCase(r.captured_cases[i], &w);
  }
  w.WriteU64(r.captured_logic_cases.size());
  for (size_t i = 0; i < r.captured_logic_cases.size(); ++i) {
    SaveLogicBug(r.captured_logic_bugs[i], &w);
    fuzz::SaveTestCase(r.captured_logic_cases[i], &w);
  }
  SaveCases(r.corpus_export, &w);

  const fuzz::BackendStorageStats& s = r.storage;
  w.WriteU64(s.pool_hits);
  w.WriteU64(s.pool_misses);
  w.WriteU64(s.pool_evictions);
  w.WriteU64(s.pool_writebacks);
  w.WriteU64(s.wal_records);
  w.WriteU64(s.wal_bytes);
  w.WriteU64(s.fsyncs);
  w.WriteU64(s.steal_flushes);
  w.WriteU64(s.commits);
  w.WriteU64(s.checkpoints);
  w.EndChunk();
  (void)outcome.coverage.SaveState(&w);
  return w.EnvelopedBytes();
}

StatusOr<ShardOutcome> DecodeShardOutcome(const std::string& bytes) {
  auto reader = persist::StateReader::FromEnvelope(bytes);
  if (!reader.ok()) return reader.status();
  persist::StateReader& r = *reader;
  LEGO_RETURN_IF_ERROR(r.EnterChunk(persist::ChunkTag(kShardChunk)));

  ShardOutcome outcome;
  outcome.shard_id = static_cast<int>(r.ReadU32());
  outcome.complete = r.ReadBool();
  fuzz::CampaignResult& res = outcome.result;
  res.executions = static_cast<int>(r.ReadI64());
  res.statements_executed = static_cast<int>(r.ReadI64());
  res.statement_errors = static_cast<int>(r.ReadI64());
  res.crashes_total = static_cast<int>(r.ReadI64());
  res.logic_bugs_total = static_cast<int>(r.ReadI64());
  res.rules = r.ReadU64();
  res.fuzzer_stats.corpus_seeds = r.ReadU64();

  const uint64_t crash_count = r.ReadU64();
  if (!r.CheckCount(crash_count, 1)) {
    return Status::Internal("fleet shard: corrupt crash count");
  }
  for (uint64_t i = 0; i < crash_count; ++i) {
    minidb::CrashInfo crash = LoadCrashInfo(&r);
    auto tc = fuzz::LoadTestCase(&r);
    if (!tc.ok()) return tc.status();
    res.crash_hashes.insert(crash.stack_hash);
    res.bug_ids.insert(crash.bug_id);
    res.captured_crashes.push_back(std::move(crash));
    res.captured_cases.push_back(std::move(*tc));
  }
  const uint64_t logic_count = r.ReadU64();
  if (!r.CheckCount(logic_count, 1)) {
    return Status::Internal("fleet shard: corrupt logic count");
  }
  for (uint64_t i = 0; i < logic_count; ++i) {
    fuzz::LogicBugInfo bug = LoadLogicBug(&r);
    auto tc = fuzz::LoadTestCase(&r);
    if (!tc.ok()) return tc.status();
    res.logic_fingerprints.insert(bug.fingerprint);
    res.captured_logic_bugs.push_back(std::move(bug));
    res.captured_logic_cases.push_back(std::move(*tc));
  }
  LEGO_RETURN_IF_ERROR(LoadCases(&r, &res.corpus_export));

  fuzz::BackendStorageStats& s = res.storage;
  s.pool_hits = r.ReadU64();
  s.pool_misses = r.ReadU64();
  s.pool_evictions = r.ReadU64();
  s.pool_writebacks = r.ReadU64();
  s.wal_records = r.ReadU64();
  s.wal_bytes = r.ReadU64();
  s.fsyncs = r.ReadU64();
  s.steal_flushes = r.ReadU64();
  s.commits = r.ReadU64();
  s.checkpoints = r.ReadU64();
  LEGO_RETURN_IF_ERROR(r.ExitChunk());
  LEGO_RETURN_IF_ERROR(outcome.coverage.LoadState(&r));
  if (!r.ok()) return r.status();
  res.edges = outcome.coverage.CoveredEdges();
  return outcome;
}

std::string EncodePool(const std::vector<fuzz::TestCase>& pool) {
  persist::StateWriter w;
  w.BeginChunk(persist::ChunkTag(kPoolChunk));
  SaveCases(pool, &w);
  w.EndChunk();
  return w.EnvelopedBytes();
}

StatusOr<std::vector<fuzz::TestCase>> DecodePool(const std::string& bytes) {
  auto reader = persist::StateReader::FromEnvelope(bytes);
  if (!reader.ok()) return reader.status();
  persist::StateReader& r = *reader;
  LEGO_RETURN_IF_ERROR(r.EnterChunk(persist::ChunkTag(kPoolChunk)));
  std::vector<fuzz::TestCase> pool;
  LEGO_RETURN_IF_ERROR(LoadCases(&r, &pool));
  LEGO_RETURN_IF_ERROR(r.ExitChunk());
  if (!r.ok()) return r.status();
  return pool;
}

}  // namespace lego::fleet
