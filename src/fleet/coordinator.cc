#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "chaos/failpoint.h"
#include "fleet/fleet.h"
#include "fleet/journal.h"
#include "fleet/protocol.h"
#include "fleet/shard.h"
#include "fleet/status_json.h"
#include "fleet/worker.h"
#include "fuzz/distill.h"
#include "minidb/env.h"
#include "triage/triage.h"

namespace lego::fleet {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// One worker slot: a process incarnation plus its lease bookkeeping. The
/// slot survives its process — strikes, backoff, and quarantine are
/// per-slot, so a respawned incarnation inherits its slot's record.
struct Slot {
  enum class State {
    kStarting,     // forked, waiting for hello
    kIdle,         // ready for a lease
    kLeased,       // fuzzing a shard
    kDead,         // process gone, respawn scheduled
    kQuarantined,  // circuit open: no more respawns
    kFinished,     // exited cleanly after shutdown
  };
  State state = State::kDead;
  pid_t pid = -1;
  int cmd_fd = -1;   // coordinator -> worker
  int resp_fd = -1;  // worker -> coordinator
  FrameBuffer frames;
  bool eof = false;
  bool shutdown_sent = false;
  int strikes = 0;
  int shard = -1;  // leased shard, -1 when none
  Clock::time_point lease_start;
  Clock::time_point last_heartbeat;
  Clock::time_point respawn_at;
  int64_t lease_execs = 0;
};

const char* StateName(Slot::State s) {
  switch (s) {
    case Slot::State::kStarting:
      return "starting";
    case Slot::State::kIdle:
      return "idle";
    case Slot::State::kLeased:
      return "leased";
    case Slot::State::kDead:
      return "dead";
    case Slot::State::kQuarantined:
      return "quarantined";
    case Slot::State::kFinished:
      return "finished";
  }
  return "?";
}

struct PendingShard {
  int id = 0;
  int attempts = 0;
  Clock::time_point available_at;
};

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

Status EnsureDir(const std::string& path) {
  // CreateDir is single-level; walk the components so a fresh --fleet-dir
  // nested under a scratch root just works.
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t next = path.find('/', pos);
    if (next == std::string::npos) next = path.size();
    prefix = path.substr(0, next);
    if (!prefix.empty() && prefix != "/" && prefix != ".") {
      Status st = minidb::Env::Posix()->CreateDir(prefix);
      if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
    }
    pos = next + 1;
  }
  return Status::OK();
}

std::string HostName() {
  char host[256];
  if (::gethostname(host, sizeof(host)) != 0) return "unknown";
  host[sizeof(host) - 1] = '\0';
  return host;
}

/// Origin stamp for a finding collected from worker `slot`: the *worker's*
/// pid, not the coordinator's (same layout as triage::OriginString).
std::string WorkerOrigin(int slot, pid_t pid,
                         const fuzz::BackendOptions& backend) {
  return "w" + std::to_string(slot) + "@" + HostName() + ":" +
         std::to_string(static_cast<long>(pid)) + "/" +
         std::string(fuzz::BackendKindName(backend.kind)) + "/" +
         std::string(fuzz::StorageKindName(backend.storage));
}

/// The whole coordinator, single-threaded: one poll loop owns every pipe,
/// the shard queue, the journal, and the status file, so there is no state
/// to lock and a crash at any instant leaves only the journal to reason
/// about.
class Coordinator {
 public:
  explicit Coordinator(const FleetOptions& options)
      : options_(options), config_(options.config) {}

  FleetResult Run() {
    start_ = Clock::now();
    result_.shards_total = config_.num_shards;
    signal(SIGPIPE, SIG_IGN);

    Status st = Setup();
    if (!st.ok()) {
      result_.status = st;
      result_.elapsed_seconds = SecondsSince(start_);
      return std::move(result_);
    }

    slots_.resize(static_cast<size_t>(options_.num_workers));
    for (int s = 0; s < options_.num_workers; ++s) Spawn(s);

    while (true) {
      if (!draining_ && options_.stop_flag != nullptr &&
          options_.stop_flag->load(std::memory_order_relaxed)) {
        BeginDrain();
      }
      Reap();
      ExpireLeases();
      RespawnDue();
      GrantLeases();
      PollPipes();
      MaybeWriteStatus(false);
      if (Finished()) break;
    }

    Teardown();
    result_.elapsed_seconds = SecondsSince(start_);
    MaybeWriteStatus(true);
    if (options_.triage) RunTriage();
    return std::move(result_);
  }

 private:
  Status Setup() {
    if (options_.fleet_dir.empty()) {
      return Status::InvalidArgument("fleet: fleet_dir is required");
    }
    LEGO_RETURN_IF_ERROR(EnsureDir(options_.fleet_dir));
    const minidb::DialectProfile* profile =
        minidb::DialectProfile::ByName(config_.profile);
    if (profile == nullptr) {
      return Status::InvalidArgument("fleet: unknown profile '" +
                                     config_.profile + "'");
    }
    if (MakeFleetFuzzer(config_.fuzzer, *profile, 0) == nullptr) {
      return Status::InvalidArgument("fleet: unknown fuzzer '" +
                                     config_.fuzzer + "'");
    }
    if (config_.num_shards <= 0 || config_.shard_budget <= 0 ||
        options_.num_workers <= 0) {
      return Status::InvalidArgument(
          "fleet: shards, budget, and workers must be positive");
    }

    if (options_.resume) {
      Status load = LoadJournal(options_.fleet_dir, config_, &result_);
      if (load.ok()) {
        result_.resumed = true;
        Log("resumed: %zu/%d shards done, %zu crashes, %zu logic bugs",
            result_.shards_done.size(), config_.num_shards,
            result_.crashes.size(), result_.logic.size());
      } else if (load.code() != StatusCode::kNotFound) {
        return load;
      }
    }

    for (int shard = 0; shard < config_.num_shards; ++shard) {
      if (result_.shards_done.count(shard) == 0) {
        queue_.push_back({shard, 0, Clock::now()});
      }
    }
    pool_bytes_ = EncodePool(result_.corpus);

    // Durable zero-state marker: after this, *every* coordinator state on
    // disk — including "nothing accepted yet" — is a valid resume point.
    Journal();
    return Status::OK();
  }

  void Log(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    if (!options_.verbose) return;
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "fleet: ");
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
  }

  void Journal() {
    Status st = SaveJournal(options_.fleet_dir, config_, result_);
    if (!st.ok()) {
      ++result_.journal_failures;
      std::fprintf(stderr, "fleet: journal write failed (continuing): %s\n",
                   st.ToString().c_str());
    }
  }

  void FinalJournal() {
    // Mirror the campaign's end-of-run persistence contract: the final
    // journal retries through transient (chaos-injected) failures.
    constexpr int kAttempts = 8;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      Status st = SaveJournal(options_.fleet_dir, config_, result_);
      if (st.ok()) return;
      if (attempt + 1 == kAttempts) {
        ++result_.journal_failures;
        std::fprintf(stderr, "fleet: final journal failed after %d tries: %s\n",
                     kAttempts, st.ToString().c_str());
      }
    }
  }

  void Spawn(int s) {
    Slot& slot = slots_[static_cast<size_t>(s)];
    if (slot.state == Slot::State::kQuarantined) return;
    int cmd[2], resp[2];
    if (::pipe(cmd) != 0 || ::pipe(resp) != 0) {
      slot.state = Slot::State::kDead;
      slot.respawn_at = Clock::now() + std::chrono::milliseconds(
                                           options_.respawn_backoff_ms);
      return;
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(cmd[0]);
      ::close(cmd[1]);
      ::close(resp[0]);
      ::close(resp[1]);
      slot.state = Slot::State::kDead;
      slot.respawn_at = Clock::now() + std::chrono::milliseconds(
                                           options_.respawn_backoff_ms);
      return;
    }
    if (pid == 0) {
      // Child: drop every coordinator-side fd — ours and every other
      // slot's. A leaked pipe end would keep EOF from ever reaching the
      // coordinator when that slot's worker dies.
      for (Slot& other : slots_) {
        if (other.cmd_fd >= 0) ::close(other.cmd_fd);
        if (other.resp_fd >= 0) ::close(other.resp_fd);
      }
      ::close(cmd[1]);
      ::close(resp[0]);
      WorkerContext ctx;
      ctx.config = config_;
      ctx.slot = s;
      ctx.cmd_fd = cmd[0];
      ctx.resp_fd = resp[1];
      for (const auto& [target_slot, spec] : options_.worker_chaos) {
        if (target_slot == s || target_slot < 0) ctx.chaos_specs.push_back(spec);
      }
      ctx.chaos_seed = config_.base_seed;
      _exit(WorkerMain(ctx));
    }
    ::close(cmd[0]);
    ::close(resp[1]);
    int flags = ::fcntl(resp[0], F_GETFL, 0);
    ::fcntl(resp[0], F_SETFL, flags | O_NONBLOCK);
    slot.pid = pid;
    slot.cmd_fd = cmd[1];
    slot.resp_fd = resp[0];
    slot.frames = FrameBuffer();
    slot.eof = false;
    slot.shutdown_sent = false;
    slot.state = Slot::State::kStarting;
    slot.shard = -1;
    ++result_.workers_spawned;
    Log("spawned worker w%d (pid %ld, strike %d)", s,
        static_cast<long>(pid), slot.strikes);
  }

  void Requeue(int shard, bool count) {
    // Re-queued shards back off a little so a hot failure loop (worker dies
    // instantly on grant) does not spin the queue.
    PendingShard p;
    p.id = shard;
    p.available_at =
        Clock::now() + std::chrono::milliseconds(options_.respawn_backoff_ms);
    queue_.push_back(p);
    if (count) ++result_.shards_requeued;
  }

  /// One strike against a slot: reclaim its lease, kill the incarnation,
  /// then either schedule a backed-off respawn or open the circuit.
  void Strike(int s, const char* why) {
    Slot& slot = slots_[static_cast<size_t>(s)];
    ++slot.strikes;
    Log("worker w%d strike %d/%d: %s", s, slot.strikes, options_.strike_limit,
        why);
    if (slot.shard >= 0) {
      Requeue(slot.shard, true);
      slot.shard = -1;
    }
    if (slot.pid > 0) {
      ::kill(slot.pid, SIGKILL);
      int ws = 0;
      ::waitpid(slot.pid, &ws, 0);
      slot.pid = -1;
    }
    CloseFd(&slot.cmd_fd);
    CloseFd(&slot.resp_fd);
    slot.frames = FrameBuffer();
    slot.eof = false;
    if (slot.strikes >= options_.strike_limit) {
      slot.state = Slot::State::kQuarantined;
      ++result_.workers_quarantined;
      Log("worker w%d quarantined", s);
    } else {
      slot.state = Slot::State::kDead;
      const int shift = std::min(slot.strikes, 5);
      slot.respawn_at =
          Clock::now() +
          std::chrono::milliseconds(options_.respawn_backoff_ms << shift);
    }
  }

  void Reap() {
    while (true) {
      int ws = 0;
      pid_t pid = ::waitpid(-1, &ws, WNOHANG);
      if (pid <= 0) break;
      for (size_t s = 0; s < slots_.size(); ++s) {
        Slot& slot = slots_[s];
        if (slot.pid != pid) continue;
        slot.pid = -1;
        if (slot.shutdown_sent || slot.state == Slot::State::kFinished ||
            (draining_ && slot.shard < 0)) {
          CloseFd(&slot.cmd_fd);
          CloseFd(&slot.resp_fd);
          slot.state = Slot::State::kFinished;
        } else {
          // Drain any result the worker managed to flush before dying —
          // otherwise a clean result racing the exit would be lost.
          DrainPipe(static_cast<int>(s));
          ProcessFrames(static_cast<int>(s));
          if (slot.state == Slot::State::kLeased ||
              slot.state == Slot::State::kStarting ||
              slot.state == Slot::State::kIdle) {
            Strike(static_cast<int>(s), WIFSIGNALED(ws) ? "worker killed"
                                                        : "worker exited");
          }
        }
        break;
      }
    }
  }

  void ExpireLeases() {
    for (size_t s = 0; s < slots_.size(); ++s) {
      Slot& slot = slots_[s];
      if (slot.state != Slot::State::kLeased) continue;
      if (MsBetween(slot.last_heartbeat, Clock::now()) >
          options_.lease_deadline_ms) {
        ++result_.leases_expired;
        Strike(static_cast<int>(s), "lease expired (no heartbeat)");
      }
    }
  }

  void RespawnDue() {
    if (draining_) return;
    for (size_t s = 0; s < slots_.size(); ++s) {
      Slot& slot = slots_[s];
      if (slot.state == Slot::State::kDead && Clock::now() >= slot.respawn_at) {
        Spawn(static_cast<int>(s));
      }
    }
  }

  void GrantLeases() {
    if (draining_) return;
    for (size_t s = 0; s < slots_.size(); ++s) {
      Slot& slot = slots_[s];
      if (slot.state != Slot::State::kIdle) continue;
      // Lowest available shard id first: deterministic progression and the
      // distill cadence sees shards in a stable order under one worker.
      int best = -1;
      for (size_t q = 0; q < queue_.size(); ++q) {
        if (queue_[q].available_at > Clock::now()) continue;
        if (best < 0 || queue_[q].id < queue_[static_cast<size_t>(best)].id) {
          best = static_cast<int>(q);
        }
      }
      if (best < 0) continue;
      if (LEGO_FAILPOINT("fleet.lease_grant")) {
        // Grant deferred one tick: models a control plane that is slow, not
        // wrong — the shard stays queued and nothing is lost.
        ++result_.lease_grants_deferred;
        continue;
      }
      const int shard = queue_[static_cast<size_t>(best)].id;
      queue_.erase(queue_.begin() + best);
      std::string payload;
      AppendU32(&payload, static_cast<uint32_t>(shard));
      AppendU64(&payload, ShardSeed(config_, shard));
      AppendU32(&payload, static_cast<uint32_t>(config_.shard_budget));
      AppendU32(&payload, static_cast<uint32_t>(options_.lease_deadline_ms));
      payload += pool_bytes_;
      if (!SendFrame(slot.cmd_fd, MsgType::kLeaseGrant, payload).ok()) {
        Requeue(shard, true);
        Strike(static_cast<int>(s), "lease grant write failed");
        continue;
      }
      slot.state = Slot::State::kLeased;
      slot.shard = shard;
      slot.lease_start = slot.last_heartbeat = Clock::now();
      slot.lease_execs = 0;
      Log("leased shard %d to w%zu (budget %d)", shard, s,
          config_.shard_budget);
    }
  }

  void DrainPipe(int s) {
    Slot& slot = slots_[static_cast<size_t>(s)];
    if (slot.resp_fd < 0 || slot.eof) return;
    char buf[65536];
    while (true) {
      ssize_t r = ::read(slot.resp_fd, buf, sizeof(buf));
      if (r > 0) {
        slot.frames.Append(buf, static_cast<size_t>(r));
        continue;
      }
      if (r == 0) {
        slot.eof = true;
        return;
      }
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained for now
    }
  }

  void PollPipes() {
    std::vector<pollfd> fds;
    std::vector<int> fd_slots;
    for (size_t s = 0; s < slots_.size(); ++s) {
      Slot& slot = slots_[s];
      if (slot.resp_fd < 0 || slot.eof) continue;
      fds.push_back({slot.resp_fd, POLLIN, 0});
      fd_slots.push_back(static_cast<int>(s));
    }
    if (fds.empty()) {
      ::usleep(10 * 1000);
      return;
    }
    int rc = ::poll(fds.data(), fds.size(), 50);
    if (rc <= 0) return;
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      DrainPipe(fd_slots[i]);
      ProcessFrames(fd_slots[i]);
    }
  }

  void ProcessFrames(int s) {
    Slot& slot = slots_[static_cast<size_t>(s)];
    uint8_t type = 0;
    std::string payload;
    while (slot.state != Slot::State::kQuarantined &&
           slot.state != Slot::State::kDead &&
           slot.frames.Next(&type, &payload)) {
      switch (static_cast<MsgType>(type)) {
        case MsgType::kHello:
          if (slot.state == Slot::State::kStarting) {
            slot.state = Slot::State::kIdle;
          }
          break;
        case MsgType::kHeartbeat:
          if (slot.state == Slot::State::kLeased &&
              static_cast<int>(ReadU32(payload, 0)) == slot.shard) {
            slot.last_heartbeat = Clock::now();
            slot.lease_execs = static_cast<int64_t>(ReadU64(payload, 4));
          }
          break;
        case MsgType::kResult:
          HandleResult(s, payload);
          break;
        default:
          Strike(s, "unknown frame type");
          return;
      }
    }
    if (slot.frames.Overflowed()) {
      ++result_.results_rejected;
      Strike(s, "frame buffer overflow (corrupt length)");
    }
  }

  void HandleResult(int s, const std::string& payload) {
    Slot& slot = slots_[static_cast<size_t>(s)];
    const int shard = static_cast<int>(ReadU32(payload, 0));
    const std::string envelope = payload.substr(4);

    // Validation ladder: envelope checksum first (cheap, catches torn and
    // poisoned bytes), then the structural decode. A bad result is a strike
    // — the shard is re-queued, coordinator state untouched.
    Status probe = persist::ProbeEnvelope(envelope);
    if (!probe.ok()) {
      ++result_.results_rejected;
      Strike(s, "result envelope rejected");
      Log("  reject detail: %s", probe.ToString().c_str());
      return;
    }
    auto outcome = DecodeShardOutcome(envelope);
    if (!outcome.ok() || outcome->shard_id != shard) {
      ++result_.results_rejected;
      Strike(s, "result payload rejected");
      return;
    }

    slot.shard = -1;
    slot.state = Slot::State::kIdle;

    if (!outcome->complete) {
      // Drained partial shard: discard and re-run whole. Merged state stays
      // "union of complete shards", which is what makes kill/resume equality
      // exact rather than approximate.
      Requeue(shard, true);
      Log("shard %d partial (drained after %d execs); re-queued", shard,
          outcome->result.executions);
      return;
    }
    if (result_.shards_done.count(shard) != 0) {
      ++result_.duplicate_results;
      Log("shard %d duplicate result ignored", shard);
      return;
    }

    MergeOutcome(*outcome, WorkerOrigin(s, slot.pid, config_.backend));
    result_.shards_done.insert(shard);
    Log("shard %d done by w%d: %d execs, %zu edges total, %zu crashes", shard,
        s, outcome->result.executions, result_.edges(),
        result_.crashes.size());

    Status pool_st = UpdatePool(
        config_, static_cast<int>(result_.shards_done.size()),
        std::move(outcome->result.corpus_export), &result_.corpus,
        &result_.corpus_pending, &result_.distill_cycles,
        &result_.distill_seconds);
    if (!pool_st.ok()) {
      std::fprintf(stderr, "fleet: distill failed (pool unchanged): %s\n",
                   pool_st.ToString().c_str());
    } else if (pool_was_distilled_at_ != result_.distill_cycles) {
      pool_was_distilled_at_ = result_.distill_cycles;
      pool_bytes_ = EncodePool(result_.corpus);
      // The distill replay blocked the loop; forgive every in-flight
      // lease's heartbeat deadline for the time we stole.
      for (Slot& other : slots_) {
        if (other.state == Slot::State::kLeased) {
          other.last_heartbeat = Clock::now();
        }
      }
      Log("distill cycle %d: pool %zu cases", result_.distill_cycles,
          result_.corpus.size());
    }

    Journal();
  }

  void MergeOutcome(const ShardOutcome& outcome, const std::string& origin) {
    const fuzz::CampaignResult& r = outcome.result;
    result_.executions += r.executions;
    result_.statements_executed += r.statements_executed;
    result_.statement_errors += r.statement_errors;
    result_.crashes_total += r.crashes_total;
    result_.logic_bugs_total += r.logic_bugs_total;
    result_.rules = std::max(result_.rules, r.rules);
    result_.coverage.MergeFrom(outcome.coverage);
    result_.storage.Add(r.storage);
    for (size_t i = 0; i < r.captured_crashes.size(); ++i) {
      const uint64_t hash = r.captured_crashes[i].stack_hash;
      if (result_.crashes.emplace(hash, r.captured_crashes[i]).second) {
        result_.crash_cases.emplace(hash, r.captured_cases[i].Clone());
        result_.crash_origins.emplace(hash, origin);
      }
    }
    for (size_t i = 0; i < r.captured_logic_bugs.size(); ++i) {
      const uint64_t fp = r.captured_logic_bugs[i].fingerprint;
      if (result_.logic.emplace(fp, r.captured_logic_bugs[i]).second) {
        result_.logic_cases.emplace(fp, r.captured_logic_cases[i].Clone());
        result_.logic_origins.emplace(fp, origin);
      }
    }
  }

  void BeginDrain() {
    draining_ = true;
    drain_deadline_ = Clock::now() + std::chrono::seconds(10);
    Log("drain: stop requested");
    for (size_t s = 0; s < slots_.size(); ++s) {
      Slot& slot = slots_[s];
      if (slot.state == Slot::State::kLeased && slot.pid > 0) {
        ::kill(slot.pid, SIGTERM);  // worker ships a partial result and exits
      } else if (slot.state == Slot::State::kIdle ||
                 slot.state == Slot::State::kStarting) {
        if (slot.cmd_fd >= 0) {
          (void)SendFrame(slot.cmd_fd, MsgType::kShutdown, "");
        }
        slot.shutdown_sent = true;
      }
    }
  }

  bool Finished() {
    if (static_cast<int>(result_.shards_done.size()) == config_.num_shards) {
      return true;
    }
    if (draining_) {
      bool in_flight = false;
      for (const Slot& slot : slots_) {
        if (slot.state == Slot::State::kLeased ||
            (slot.pid > 0 && !slot.shutdown_sent)) {
          in_flight = true;
        }
      }
      if (!in_flight || Clock::now() >= drain_deadline_) {
        result_.stopped_early = true;
        return true;
      }
      return false;
    }
    // Graceful degradation: every slot's circuit open with work pending.
    bool any_alive = false;
    for (const Slot& slot : slots_) {
      if (slot.state != Slot::State::kQuarantined) any_alive = true;
    }
    if (!any_alive) {
      result_.degraded = true;
      return true;
    }
    return false;
  }

  void Teardown() {
    // Politely shut down whoever is left, then make sure of it.
    for (Slot& slot : slots_) {
      if (slot.cmd_fd >= 0 && slot.pid > 0) {
        (void)SendFrame(slot.cmd_fd, MsgType::kShutdown, "");
        slot.shutdown_sent = true;
      }
    }
    const Clock::time_point deadline =
        Clock::now() + std::chrono::seconds(5);
    for (Slot& slot : slots_) {
      while (slot.pid > 0) {
        int ws = 0;
        pid_t pid = ::waitpid(slot.pid, &ws, WNOHANG);
        if (pid == slot.pid || pid < 0) {
          slot.pid = -1;
          break;
        }
        if (Clock::now() >= deadline) {
          ::kill(slot.pid, SIGKILL);
          ::waitpid(slot.pid, &ws, 0);
          slot.pid = -1;
          break;
        }
        ::usleep(5 * 1000);
      }
      if (slot.state == Slot::State::kLeased && slot.shard >= 0) {
        Requeue(slot.shard, true);
        slot.shard = -1;
      }
      CloseFd(&slot.cmd_fd);
      CloseFd(&slot.resp_fd);
    }
    FinalJournal();
  }

  void MaybeWriteStatus(bool force) {
    const double since_ms = MsBetween(last_status_, Clock::now());
    if (!force && since_ms < options_.status_every_ms) return;
    last_status_ = Clock::now();
    std::vector<WorkerStatus> workers;
    for (size_t s = 0; s < slots_.size(); ++s) {
      const Slot& slot = slots_[s];
      WorkerStatus w;
      w.slot = static_cast<int>(s);
      w.state = StateName(slot.state);
      w.pid = slot.pid;
      w.shard = slot.shard;
      w.strikes = slot.strikes;
      if (slot.state == Slot::State::kLeased) {
        w.lease_age_s = SecondsSince(slot.lease_start);
        w.heartbeat_age_s = SecondsSince(slot.last_heartbeat);
      }
      workers.push_back(std::move(w));
    }
    const double elapsed = SecondsSince(start_);
    const double rate =
        elapsed > 0 ? static_cast<double>(result_.executions) / elapsed : 0.0;
    (void)WriteStatusFile(options_.fleet_dir,
                          RenderStatusJson(result_, workers, elapsed, rate));
  }

  void RunTriage() {
    const minidb::DialectProfile* profile =
        minidb::DialectProfile::ByName(config_.profile);
    if (profile == nullptr) return;
    fuzz::CampaignResult campaign;
    campaign.fuzzer = config_.fuzzer;
    campaign.profile = config_.profile;
    for (const auto& [hash, crash] : result_.crashes) {
      campaign.crash_hashes.insert(hash);
      campaign.bug_ids.insert(crash.bug_id);
      campaign.captured_crashes.push_back(crash);
      campaign.captured_cases.push_back(result_.crash_cases.at(hash).Clone());
    }
    for (const auto& [fp, bug] : result_.logic) {
      campaign.logic_fingerprints.insert(fp);
      campaign.captured_logic_bugs.push_back(bug);
      campaign.captured_logic_cases.push_back(
          result_.logic_cases.at(fp).Clone());
    }
    triage::TriageOptions topt;
    topt.reduce = options_.reduce;
    topt.repro_dir = options_.fleet_dir + "/repro";
    topt.backend = config_.backend;
    if (!topt.backend.db_dir.empty()) topt.backend.db_dir += "/triage";
    topt.campaign_seed = config_.base_seed;
    topt.origin = triage::OriginString("fleet", config_.backend);
    topt.crash_origins = result_.crash_origins;
    topt.logic_origins = result_.logic_origins;
    triage::TriageReport report =
        triage::TriageCampaign(campaign, *profile, "", topt);
    result_.triaged_bugs = static_cast<int>(report.bugs.size());
    Log("triage: %zu unique bugs into %s", report.bugs.size(),
        topt.repro_dir.c_str());
  }

  FleetOptions options_;
  FleetConfig config_;
  FleetResult result_;
  std::vector<Slot> slots_;
  std::vector<PendingShard> queue_;
  std::string pool_bytes_;
  int pool_was_distilled_at_ = 0;
  bool draining_ = false;
  Clock::time_point start_;
  Clock::time_point drain_deadline_;
  Clock::time_point last_status_ = Clock::now() - std::chrono::hours(1);
};

}  // namespace

Status UpdatePool(const FleetConfig& config, int completed_shards,
                  std::vector<fuzz::TestCase> fresh,
                  std::vector<fuzz::TestCase>* pool,
                  std::vector<fuzz::TestCase>* pending, int* distill_cycles,
                  double* distill_seconds) {
  for (auto& tc : fresh) pending->push_back(std::move(tc));
  if (config.distill_every <= 0 || completed_shards == 0 ||
      completed_shards % config.distill_every != 0 || pending->empty()) {
    return Status::OK();
  }
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName(config.profile);
  if (profile == nullptr) {
    return Status::InvalidArgument("fleet: unknown profile '" +
                                   config.profile + "'");
  }
  std::vector<fuzz::TestCase> merged;
  merged.reserve(pool->size() + pending->size());
  for (auto& tc : *pool) merged.push_back(std::move(tc));
  for (auto& tc : *pending) merged.push_back(std::move(tc));
  pool->clear();
  pending->clear();
  // Distillation always replays on a private in-process/mem harness:
  // deterministic, cheap, and independent of whatever backend the workers
  // fuzz through.
  fuzz::ExecutionHarness harness(*profile, fuzz::BackendOptions{});
  fuzz::DistillStats stats;
  const Clock::time_point t0 = Clock::now();
  *pool = fuzz::DistillCorpus(merged, &harness, &stats);
  *distill_seconds += SecondsSince(t0);
  ++*distill_cycles;
  return Status::OK();
}

FleetResult RunFleet(const FleetOptions& options) {
  Coordinator coordinator(options);
  return coordinator.Run();
}

}  // namespace lego::fleet
