#ifndef LEGO_FLEET_SHARD_H_
#define LEGO_FLEET_SHARD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "fuzz/campaign.h"
#include "fuzz/fuzzer.h"
#include "minidb/profile.h"

namespace lego::fleet {

/// What one worker ships home for one completed (or drained) lease.
struct ShardOutcome {
  int shard_id = 0;
  /// False when the shard was cut short by a drain (SIGTERM): the
  /// coordinator re-queues the shard instead of merging a partial result,
  /// keeping "merged state == union of complete shards" exact.
  bool complete = false;
  fuzz::CampaignResult result;
  /// The shard harness's full edge bitmap — merged coordinator-side for the
  /// exact fleet-wide union.
  cov::GlobalCoverage coverage;
};

/// Deterministic per-shard campaign seed. Mixed (not base_seed + shard) so
/// it cannot collide with the parallel-campaign convention of seeding
/// worker w at base_seed + w.
uint64_t ShardSeed(const FleetConfig& config, int shard_id);

/// Builds the configured fuzzer the same way fuzz_campaign_cli does
/// ("lego", "lego-", "squirrel", "sqlancer", "sqlsmith"). Null on an
/// unknown name.
std::unique_ptr<fuzz::Fuzzer> MakeFleetFuzzer(
    const std::string& name, const minidb::DialectProfile& profile,
    uint64_t seed);

/// Runs one shard to completion in the calling process: a serial
/// RunCampaign of config.shard_budget executions seeded ShardSeed(shard_id)
/// with `pool` imported as the starting corpus. Pure function of
/// (config, shard_id, pool) — a re-queued shard replayed anywhere
/// reproduces the same outcome. `progress` (optional) receives the running
/// execution count every config.progress_every executions; `stop` drains
/// cooperatively (outcome.complete turns false).
StatusOr<ShardOutcome> ExecuteShard(
    const FleetConfig& config, int shard_id,
    const std::vector<fuzz::TestCase>& pool, const std::atomic<bool>* stop,
    std::function<void(int64_t)> progress);

/// Serializes an outcome into persist-enveloped bytes (magic + version +
/// checksum), so the coordinator can ProbeEnvelope() a result frame and
/// reject torn/poisoned payloads before parsing. Decode mirrors; any
/// structural damage surfaces as a non-OK status.
std::string EncodeShardOutcome(const ShardOutcome& outcome);
StatusOr<ShardOutcome> DecodeShardOutcome(const std::string& bytes);

/// Serializes a corpus pool for a lease grant ("POOL" chunk, enveloped).
std::string EncodePool(const std::vector<fuzz::TestCase>& pool);
StatusOr<std::vector<fuzz::TestCase>> DecodePool(const std::string& bytes);

}  // namespace lego::fleet

#endif  // LEGO_FLEET_SHARD_H_
