#ifndef LEGO_FLEET_STATUS_JSON_H_
#define LEGO_FLEET_STATUS_JSON_H_

#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "util/status.h"

namespace lego::fleet {

/// Control-plane snapshot of one worker slot for status.json.
struct WorkerStatus {
  int slot = 0;
  std::string state;  // starting|idle|leased|dead|quarantined|finished
  int64_t pid = 0;
  int shard = -1;      // leased shard, -1 when none
  int strikes = 0;
  double lease_age_s = 0.0;       // since grant, leased only
  double heartbeat_age_s = 0.0;   // since last heartbeat, leased only
};

/// Renders the one-line status JSON the fleet control plane serves:
/// campaign progress (shards, execs, execs/sec, coverage, rules, unique
/// bugs), worker fleet health (live/parked/quarantined, per-slot lease
/// ages), fault counters, and storage stats. One line by contract so
/// `fleet_cli status` and CI can pipe it straight into a JSON parser.
std::string RenderStatusJson(const FleetResult& result,
                             const std::vector<WorkerStatus>& workers,
                             double elapsed_s, double execs_per_sec);

inline constexpr char kStatusFile[] = "status.json";

/// Atomically rewrites fleet_dir/status.json (readers never see a torn
/// line).
Status WriteStatusFile(const std::string& fleet_dir, const std::string& json);

}  // namespace lego::fleet

#endif  // LEGO_FLEET_STATUS_JSON_H_
