#include "chaos/failpoint.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "util/hash.h"

namespace lego::chaos {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// SplitMix64 finalizer: a full-avalanche mix of the 64-bit input. Draw k
/// for a failpoint is SplitMix64(seed ^ k) — a pure function, so the fire
/// schedule depends only on (seed, hit ordinal), never on threads or pids.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct FailpointState {
  const char* name;
  std::atomic<int> mode{static_cast<int>(FailpointMode::kOff)};
  double probability = 0.0;  // kProbability parameter
  uint64_t n = 0;            // kNthHit / kKillNthHit parameter (1-based)
  uint64_t seed = 0;         // per-failpoint: HashMix(global seed, name hash)
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> fires{0};
};

/// The registry is a fixed table: failpoint sites are compiled into the
/// binary, so the name set is closed. Linear scan is fine — Evaluate only
/// runs when something is armed, and the table is tiny.
FailpointState g_failpoints[] = {
    {"persist.open"},         // atomic state write: cannot open .tmp
    {"persist.write"},        // atomic state write: short write / flush fail
    {"persist.rename"},       // atomic state write: rename into place fails
    {"persist.read"},         // state file read fails
    {"corpus.save"},          // corpus export fails
    {"corpus.load"},          // corpus import fails
    {"minidb.insert_alloc"},  // row materialization allocation fails
    {"minidb.select_alloc"},  // result-set allocation fails
    {"backend.spawn"},        // fork-server pipe/fork setup fails
    {"env.write"},            // storage Env: page/log write fails (per chunk)
    {"env.sync"},             // storage Env: fsync fails
    {"wal.append"},           // WAL: record append into the log buffer fails
    {"pager.flush"},          // buffer pool: dirty-page write-back fails
    {"wal.recover"},          // WAL: record read during recovery fails
    {"fleet.heartbeat"},      // fleet worker: lease heartbeat send suppressed
    {"fleet.result_write"},   // fleet worker: shard result envelope corrupted
    {"fleet.lease_grant"},    // fleet coordinator: lease grant deferred
    {"fleet.journal_write"},  // fleet coordinator: journal write fails
};

FailpointState* Find(std::string_view name) {
  for (FailpointState& fp : g_failpoints) {
    if (name == fp.name) return &fp;
  }
  return nullptr;
}

void Arm(FailpointState* fp, FailpointMode mode, double probability,
         uint64_t n, uint64_t global_seed) {
  fp->probability = probability;
  fp->n = n;
  fp->seed = HashMix(global_seed, Fnv1a64(fp->name));
  fp->hits.store(0, std::memory_order_relaxed);
  fp->fires.store(0, std::memory_order_relaxed);
  fp->mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

/// g_armed is the hot-path gate: true iff any failpoint is not kOff.
void RefreshArmedFlag() {
  bool any = false;
  for (const FailpointState& fp : g_failpoints) {
    any |= fp.mode.load(std::memory_order_relaxed) !=
           static_cast<int>(FailpointMode::kOff);
  }
  detail::g_armed.store(any, std::memory_order_relaxed);
}

}  // namespace

namespace detail {

bool Evaluate(std::string_view name) {
  FailpointState* fp = Find(name);
  if (fp == nullptr) return false;
  const auto mode =
      static_cast<FailpointMode>(fp->mode.load(std::memory_order_relaxed));
  if (mode == FailpointMode::kOff) return false;
  const uint64_t hit = fp->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (mode) {
    case FailpointMode::kOff:
      break;
    case FailpointMode::kAlways:
      fire = true;
      break;
    case FailpointMode::kProbability: {
      // 53-bit uniform draw in [0, 1), indexed by hit ordinal.
      const double u =
          static_cast<double>(SplitMix64(fp->seed ^ hit) >> 11) * 0x1.0p-53;
      fire = u < fp->probability;
      break;
    }
    case FailpointMode::kNthHit:
      fire = hit == fp->n;
      break;
    case FailpointMode::kKillNthHit:
      if (hit == fp->n) {
        std::fprintf(stderr, "chaos: SIGKILL at failpoint %s (hit %llu)\n",
                     fp->name, static_cast<unsigned long long>(hit));
        std::fflush(stderr);
        std::raise(SIGKILL);
      }
      break;
  }
  if (fire) fp->fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

}  // namespace detail

std::vector<std::string_view> RegisteredFailpoints() {
  std::vector<std::string_view> names;
  for (const FailpointState& fp : g_failpoints) names.push_back(fp.name);
  return names;
}

void ArmAll(uint64_t seed, double probability) {
  for (FailpointState& fp : g_failpoints) {
    Arm(&fp, FailpointMode::kProbability, probability, 0, seed);
  }
  RefreshArmedFlag();
}

Status ArmSpec(std::string_view spec, uint64_t seed) {
  const size_t eq = spec.find('=');
  if (eq == std::string_view::npos) {
    return Status::InvalidArgument("failpoint spec must be name=mode: " +
                                   std::string(spec));
  }
  const std::string_view name = spec.substr(0, eq);
  const std::string_view mode = spec.substr(eq + 1);
  FailpointState* fp = Find(name);
  if (fp == nullptr) {
    return Status::InvalidArgument("unknown failpoint '" + std::string(name) +
                                   "'");
  }
  auto parse_u64 = [](std::string_view s, uint64_t* out) {
    if (s.empty()) return false;
    char* end = nullptr;
    const std::string copy(s);
    *out = std::strtoull(copy.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
  };
  if (mode == "off") {
    Arm(fp, FailpointMode::kOff, 0.0, 0, seed);
  } else if (mode == "always") {
    Arm(fp, FailpointMode::kAlways, 0.0, 0, seed);
  } else if (mode.rfind("prob:", 0) == 0) {
    char* end = nullptr;
    const std::string copy(mode.substr(5));
    const double p = std::strtod(copy.c_str(), &end);
    if (copy.empty() || end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("bad probability in failpoint spec: " +
                                     std::string(spec));
    }
    Arm(fp, FailpointMode::kProbability, p, 0, seed);
  } else if (mode.rfind("nth:", 0) == 0) {
    uint64_t n = 0;
    if (!parse_u64(mode.substr(4), &n) || n == 0) {
      return Status::InvalidArgument("bad hit ordinal in failpoint spec: " +
                                     std::string(spec));
    }
    Arm(fp, FailpointMode::kNthHit, 0.0, n, seed);
  } else if (mode.rfind("kill:", 0) == 0) {
    uint64_t n = 0;
    if (!parse_u64(mode.substr(5), &n) || n == 0) {
      return Status::InvalidArgument("bad hit ordinal in failpoint spec: " +
                                     std::string(spec));
    }
    Arm(fp, FailpointMode::kKillNthHit, 0.0, n, seed);
  } else {
    return Status::InvalidArgument(
        "failpoint mode must be off|always|prob:P|nth:N|kill:N: " +
        std::string(spec));
  }
  RefreshArmedFlag();
  return Status::OK();
}

void DisarmAll() {
  for (FailpointState& fp : g_failpoints) {
    fp.mode.store(static_cast<int>(FailpointMode::kOff),
                  std::memory_order_relaxed);
    fp.hits.store(0, std::memory_order_relaxed);
    fp.fires.store(0, std::memory_order_relaxed);
  }
  detail::g_armed.store(false, std::memory_order_relaxed);
}

uint64_t HitCount(std::string_view name) {
  const FailpointState* fp = Find(name);
  return fp == nullptr ? 0 : fp->hits.load(std::memory_order_relaxed);
}

uint64_t FireCount(std::string_view name) {
  const FailpointState* fp = Find(name);
  return fp == nullptr ? 0 : fp->fires.load(std::memory_order_relaxed);
}

FailpointMode ModeOf(std::string_view name) {
  const FailpointState* fp = Find(name);
  if (fp == nullptr) return FailpointMode::kOff;
  return static_cast<FailpointMode>(fp->mode.load(std::memory_order_relaxed));
}

std::vector<FailpointInfo> Snapshot() {
  std::vector<FailpointInfo> out;
  for (const FailpointState& fp : g_failpoints) {
    FailpointInfo info;
    info.name = fp.name;
    info.mode =
        static_cast<FailpointMode>(fp.mode.load(std::memory_order_relaxed));
    info.hits = fp.hits.load(std::memory_order_relaxed);
    info.fires = fp.fires.load(std::memory_order_relaxed);
    out.push_back(info);
  }
  return out;
}

std::string_view ModeName(FailpointMode mode) {
  switch (mode) {
    case FailpointMode::kOff:
      return "off";
    case FailpointMode::kAlways:
      return "always";
    case FailpointMode::kProbability:
      return "prob";
    case FailpointMode::kNthHit:
      return "nth";
    case FailpointMode::kKillNthHit:
      return "kill";
  }
  return "?";
}

}  // namespace lego::chaos
