#ifndef LEGO_CHAOS_FAILPOINT_H_
#define LEGO_CHAOS_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lego::chaos {

/// Deterministic failpoint layer.
///
/// A failpoint is a named site in production code — `LEGO_FAILPOINT("x")`
/// inside an if — that normally evaluates to false. Arming the registry
/// turns selected sites into injected faults on a seeded, reproducible
/// schedule, which is how the robustness paths (checkpoint retry, torn-file
/// fallback, spawn circuit breaker, tolerant corpus import) get exercised
/// without real disk or kernel failures.
///
/// Design constraints, in priority order:
///  - Disarmed cost is one relaxed atomic load plus a branch; no site ever
///    takes a lock or touches the registry when nothing is armed.
///  - Evaluation is lock-free throughout. ForkedBackend children inherit
///    the armed registry across fork(); a mutex held by another thread at
///    fork time would deadlock the child, so per-failpoint state is atomics
///    only and probability draws are pure functions of (seed, hit ordinal).
///  - Same seed => same fire schedule. The Nth evaluation of a failpoint
///    fires or not independent of wall clock, pid, or thread interleaving
///    of *other* failpoints.
///
/// Arming/disarming is NOT safe concurrently with evaluation; configure the
/// schedule before starting workloads (the CLI arms before building any
/// harness) and tear it down after they join.
enum class FailpointMode {
  kOff,          // never fires (counts nothing)
  kAlways,       // fires on every hit
  kProbability,  // fires per-hit with probability p, seeded draw
  kNthHit,       // fires exactly on the Nth hit (1-based), once
  kKillNthHit,   // raises SIGKILL on the Nth hit — torn-write simulation
};

struct FailpointInfo {
  std::string_view name;
  FailpointMode mode = FailpointMode::kOff;
  uint64_t hits = 0;   // evaluations while armed in any mode but kOff
  uint64_t fires = 0;  // evaluations that returned true
};

namespace detail {
extern std::atomic<bool> g_armed;
bool Evaluate(std::string_view name);
}  // namespace detail

/// True when the named failpoint fires this evaluation. Registered names
/// only; unknown names never fire. Hot-path cost when nothing is armed:
/// the g_armed load short-circuits before any registry lookup.
inline bool Hit(std::string_view name) {
  return detail::g_armed.load(std::memory_order_relaxed) &&
         detail::Evaluate(name);
}

/// Spelled as a macro at call sites so failpoints are greppable as a class.
#define LEGO_FAILPOINT(name) (::lego::chaos::Hit(name))

/// All names compiled into the registry (failpoint sites are code, so the
/// set is static).
std::vector<std::string_view> RegisteredFailpoints();

/// Arms every registered failpoint in probability mode. Each failpoint
/// derives its own stream from (seed, name), so schedules do not correlate
/// across sites. Resets all counters.
void ArmAll(uint64_t seed, double probability);

/// Arms one failpoint from a "name=mode" spec, where mode is one of
/// off | always | prob:P | nth:N | kill:N (N is a 1-based hit ordinal).
/// Unknown names or malformed modes are InvalidArgument.
Status ArmSpec(std::string_view spec, uint64_t seed);

/// Returns every failpoint to kOff and zeroes all counters.
void DisarmAll();

uint64_t HitCount(std::string_view name);
uint64_t FireCount(std::string_view name);

/// Current mode of one failpoint (kOff for unknown names). The durability
/// checker consults this to tell an *injected* recovery failure (expected
/// while wal.recover / env sites are armed) from a genuine DUR-RECOVERY-FAIL.
FailpointMode ModeOf(std::string_view name);

/// Counter snapshot for end-of-run reporting.
std::vector<FailpointInfo> Snapshot();

std::string_view ModeName(FailpointMode mode);

}  // namespace lego::chaos

#endif  // LEGO_CHAOS_FAILPOINT_H_
