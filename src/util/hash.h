#ifndef LEGO_UTIL_HASH_H_
#define LEGO_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace lego {

/// 64-bit FNV-1a. constexpr so it can key compile-time coverage probe ids
/// derived from __FILE__ ":" __LINE__.
constexpr uint64_t Fnv1a64(std::string_view data,
                           uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes an integer into a hash (used for synthetic stack hashes and
/// coverage edge ids).
constexpr uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace lego

#endif  // LEGO_UTIL_HASH_H_
