#ifndef LEGO_UTIL_STRING_UTIL_H_
#define LEGO_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace lego {

/// Joins `parts` with `sep` ("a", "b" -> "a, b" for sep ", ").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

/// ASCII-uppercases a copy of `s`.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// SQL single-quoted string literal with '' escaping: abc -> 'abc'.
std::string QuoteSqlString(std::string_view s);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

}  // namespace lego

#endif  // LEGO_UTIL_STRING_UTIL_H_
