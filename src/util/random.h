#ifndef LEGO_UTIL_RANDOM_H_
#define LEGO_UTIL_RANDOM_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace lego {

/// Deterministic pseudo-random generator (xoshiro256**). All stochastic
/// choices in the fuzzers flow through one of these so campaigns are
/// reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator with SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBool(double p = 0.5);

  /// Uniformly chosen element of `v`. `v` must be non-empty.
  template <typename T>
  const T& Choose(const std::vector<T>& v) {
    return v[NextBelow(v.size())];
  }

  /// Random lowercase identifier of length in [1, max_len] starting with a
  /// letter; useful for generating names and text values.
  std::string NextIdentifier(int max_len = 8);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = NextBelow(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// The raw xoshiro256** state words, for checkpointing. Restoring the
  /// exact words (rather than re-seeding) is what makes a resumed campaign
  /// draw the same stream it would have drawn uninterrupted.
  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  uint64_t s_[4];
};

}  // namespace lego

#endif  // LEGO_UTIL_RANDOM_H_
