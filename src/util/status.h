#ifndef LEGO_UTIL_STATUS_H_
#define LEGO_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace lego {

/// Error category carried by a Status. The taxonomy mirrors what a DBMS
/// front-end needs to distinguish: syntax errors (parser rejects), semantic
/// errors (valid syntax referencing missing objects, type errors, ...),
/// constraint violations, runtime execution errors, injected crashes, and
/// internal invariant failures.
enum class StatusCode {
  kOk = 0,
  kSyntaxError,
  kSemanticError,
  kConstraintViolation,
  kExecutionError,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kTransactionError,
  kCrash,
  kInvalidArgument,
  kUnsupported,
  kInternal,
};

/// Returns a human-readable name for `code` (e.g. "SyntaxError").
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation that can fail without exceptions. Cheap to move;
/// the OK state carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status SyntaxError(std::string msg) {
    return Status(StatusCode::kSyntaxError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status TransactionError(std::string msg) {
    return Status(StatusCode::kTransactionError, std::move(msg));
  }
  static Status Crash(std::string msg) {
    return Status(StatusCode::kCrash, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True when the failure indicates the simulated process crashed
  /// (fault-injection oracle fired).
  bool IsCrash() const { return code_ == StatusCode::kCrash; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-error wrapper, in the spirit of arrow::Result / absl::StatusOr.
/// Accessing the value of a failed StatusOr is a programming error and
/// asserts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value: `return my_value;`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status: `return st;`.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the contained value out; the StatusOr must be OK.
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the current function.
#define LEGO_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::lego::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)

/// Evaluates a StatusOr expression; on error returns the status, otherwise
/// assigns the value to `lhs`.
#define LEGO_ASSIGN_OR_RETURN(lhs, expr)               \
  LEGO_ASSIGN_OR_RETURN_IMPL_(                         \
      LEGO_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define LEGO_STATUS_CONCAT_INNER_(a, b) a##b
#define LEGO_STATUS_CONCAT_(a, b) LEGO_STATUS_CONCAT_INNER_(a, b)
#define LEGO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(*tmp)

}  // namespace lego

#endif  // LEGO_UTIL_STATUS_H_
