#include "util/random.h"

#include <algorithm>

namespace lego {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling, rejection-free variant is
  // unnecessary here: modulo bias is negligible for fuzzing decisions, but we
  // still use multiplication-based reduction for speed and uniformity.
  unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

std::string Rng::NextIdentifier(int max_len) {
  int len = static_cast<int>(NextBelow(static_cast<uint64_t>(max_len))) + 1;
  std::string out;
  out.reserve(static_cast<size_t>(len));
  out.push_back(static_cast<char>('a' + NextBelow(26)));
  for (int i = 1; i < len; ++i) {
    uint64_t pick = NextBelow(36);
    out.push_back(pick < 26 ? static_cast<char>('a' + pick)
                            : static_cast<char>('0' + (pick - 26)));
  }
  return out;
}

}  // namespace lego
