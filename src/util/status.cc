#include "util/status.h"

namespace lego {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kSyntaxError:
      return "SyntaxError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kTransactionError:
      return "TransactionError";
    case StatusCode::kCrash:
      return "Crash";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace lego
