#include "concurrency/history.h"

#include <sstream>

#include "util/hash.h"

namespace lego::concurrency {
namespace {

const char* TypeName(Event::Type t) {
  switch (t) {
    case Event::Type::kBegin: return "begin";
    case Event::Type::kRead: return "read";
    case Event::Type::kWrite: return "write";
    case Event::Type::kCommit: return "commit";
    case Event::Type::kAbort: return "abort";
  }
  return "?";
}

}  // namespace

uint64_t History::Digest() const {
  uint64_t h = Fnv1a64("history");
  for (const Event& e : events_) {
    h = HashMix(h, static_cast<uint64_t>(e.type));
    h = HashMix(h, static_cast<uint64_t>(e.session));
    h = HashMix(h, e.txn);
    h = HashMix(h, Fnv1a64(e.key));
    h = HashMix(h, e.version);
    h = HashMix(h, e.prev_version);
  }
  return h;
}

std::string History::Render() const {
  std::ostringstream out;
  for (const Event& e : events_) {
    out << "s" << e.session << " t" << e.txn << " " << TypeName(e.type);
    if (!e.key.empty()) {
      out << " " << e.key << " v" << e.version;
      if (e.type == Event::Type::kWrite) out << " prev" << e.prev_version;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace lego::concurrency
