#ifndef LEGO_CONCURRENCY_HISTORY_CHECKER_H_
#define LEGO_CONCURRENCY_HISTORY_CHECKER_H_

#include <optional>
#include <string>

#include "concurrency/history.h"

namespace lego::concurrency {

/// An isolation anomaly found in a history. `id` is the lowercase anomaly
/// class ("iso-dirty-read", "iso-lost-update", ...); the oracle layer
/// uppercases it into the campaign-facing `ISO-<ANOMALY>` bug id.
struct Anomaly {
  std::string id;
  std::string key;     // representative key involved (may be empty for cycles)
  std::string detail;  // human-readable evidence
};

/// Checks a history against serializability-adjacent anomaly classes and
/// returns the first (most specific) one found, in this fixed order:
///
///   iso-lost-update          two committed txns both read version v of k and
///                            both wrote k (the classic unprotected RMW race)
///   iso-dirty-read           a committed txn observed a version before its
///                            writer committed
///   iso-g1a                  aborted read: observed a version whose writer
///                            rolled back
///   iso-g1b                  intermediate read: observed a non-final version
///                            of another txn's writes to a key
///   iso-non-repeatable-read  one txn read k twice and saw different versions
///                            it did not write itself
///   iso-g1c                  cycle in ww ∪ wr among committed txns
///   iso-write-skew           pure rw 2-cycle over distinct keys
///   iso-g2                   cycle in ww ∪ wr ∪ rw with at least one rw edge
///
/// Lost update precedes dirty read deliberately: the planted lost-update
/// defect (skipped X locks) also produces dirty-read observations, and the
/// more specific classification should win. The checker is pure — it never
/// consults the engine, so it can be conformance-tested on hand-written
/// histories.
std::optional<Anomaly> CheckHistory(const History& history);

}  // namespace lego::concurrency

#endif  // LEGO_CONCURRENCY_HISTORY_CHECKER_H_
