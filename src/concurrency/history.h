#ifndef LEGO_CONCURRENCY_HISTORY_H_
#define LEGO_CONCURRENCY_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lego::concurrency {

/// One entry of an execution history, in the style of Elle/Adya: the total
/// order of transaction events the token-serialized engine actually
/// performed, with version observations attached to reads and writes.
///
/// Versions are global write timestamps: version 0 is the initial (setup)
/// state of every key; each write produces a fresh version and records the
/// version it overwrote (`prev_version`), so the checker can reconstruct
/// per-key version chains without trusting commit order. Rolled-back writes
/// have their versions restored, so `prev_version` pointers among committed
/// writes always skip aborted versions.
struct Event {
  enum class Type : uint8_t { kBegin, kRead, kWrite, kCommit, kAbort };

  Type type = Type::kBegin;
  int session = 0;
  uint64_t txn = 0;
  std::string key;             // "table:page:slot"; empty for txn markers
  uint64_t version = 0;        // version observed (read) / produced (write)
  uint64_t prev_version = 0;   // writes: version overwritten
};

/// Append-only event log for one concurrent case. Only the scheduler's token
/// holder appends, so no internal locking is needed and the event order is
/// exactly the serialized execution order.
class History {
 public:
  void Begin(int session, uint64_t txn) {
    events_.push_back({Event::Type::kBegin, session, txn, {}, 0, 0});
  }
  void Read(int session, uint64_t txn, std::string key, uint64_t version) {
    events_.push_back(
        {Event::Type::kRead, session, txn, std::move(key), version, 0});
  }
  void Write(int session, uint64_t txn, std::string key, uint64_t version,
             uint64_t prev_version) {
    events_.push_back({Event::Type::kWrite, session, txn, std::move(key),
                       version, prev_version});
  }
  void Commit(int session, uint64_t txn) {
    events_.push_back({Event::Type::kCommit, session, txn, {}, 0, 0});
  }
  void Abort(int session, uint64_t txn) {
    events_.push_back({Event::Type::kAbort, session, txn, {}, 0, 0});
  }

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  /// Order- and content-sensitive hash of the whole log; the determinism
  /// tests compare this across reruns and resume boundaries.
  uint64_t Digest() const;

  /// Human-readable rendering, one event per line (repro artifacts, tests).
  std::string Render() const;

 private:
  std::vector<Event> events_;
};

}  // namespace lego::concurrency

#endif  // LEGO_CONCURRENCY_HISTORY_H_
