#include "concurrency/engine.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <thread>

#include "minidb/catalog.h"
#include "sql/statement_type.h"

namespace lego::concurrency {
namespace {

/// Terminal unwind signal: the run is over (crash or external abort); the
/// throwing thread must exit without touching any shared engine state.
struct ShutdownException {};

}  // namespace

thread_local ConcurrentEngine::SessionCtx* ConcurrentEngine::tls_ctx_ =
    nullptr;

ConcurrentEngine::ConcurrentEngine(minidb::Database* db, Options options)
    : db_(db),
      options_(std::move(options)),
      scheduler_(options_.sessions, options_.seed) {}

ConcurrentEngine::~ConcurrentEngine() = default;

bool ConcurrentEngine::AllowedInSession(sql::StatementType type) {
  // Sessions run DML, DQL, and transaction control only. DDL, DCL, COPY and
  // maintenance/utility statements belong to the serial setup phase: the
  // catalog is frozen during concurrent execution (locks are row-level and
  // cannot protect schema changes).
  switch (sql::CategoryOf(type)) {
    case sql::StatementCategory::kDml:
      return type != sql::StatementType::kCopy;
    case sql::StatementCategory::kDql:
    case sql::StatementCategory::kTcl:
      return true;
    default:
      return false;
  }
}

ConcurrentEngine::SessionCtx& ConcurrentEngine::Ctx() {
  assert(tls_ctx_ != nullptr);
  return *tls_ctx_;
}

void ConcurrentEngine::SwapIn(SessionCtx& ctx) {
  std::swap(db_->session(), ctx.db_session);
  ctx.swapped_in = true;
}

void ConcurrentEngine::SwapOut(SessionCtx& ctx) {
  std::swap(db_->session(), ctx.db_session);
  ctx.swapped_in = false;
}

void ConcurrentEngine::SchedulePoint(SessionCtx& ctx) {
  ReleaseLatches(ctx);  // latches never span a park
  if (ctx.swapped_in) SwapOut(ctx);
  if (scheduler_.Arrive(ctx.sid) == EpochScheduler::Wake::kShutdown) {
    throw ShutdownException{};
  }
  SwapIn(ctx);
}

std::mutex* ConcurrentEngine::LatchFor(const PageKey& key) {
  std::unique_ptr<std::mutex>& slot = page_latches_[key];
  if (slot == nullptr) slot = std::make_unique<std::mutex>();
  return slot.get();
}

void ConcurrentEngine::LatchPage(SessionCtx& ctx,
                                 const minidb::HeapTable* heap,
                                 minidb::RowId id) {
  const PageKey key{heap, minidb::HeapTable::LatchPageOf(id)};
  for (const auto& held : ctx.latches) {
    if (held.first == key) return;
  }
  if (!ctx.latches.empty() && key < ctx.latches.back().first) {
    // Out-of-order request: restart the crab in PageKey order. The session
    // holds the scheduler token, so dropping and retaking is atomic with
    // respect to every other session.
    std::vector<PageKey> want;
    want.reserve(ctx.latches.size() + 1);
    for (auto it = ctx.latches.rbegin(); it != ctx.latches.rend(); ++it) {
      want.push_back(it->first);
      it->second->unlock();
    }
    want.push_back(key);
    std::sort(want.begin(), want.end());
    ctx.latches.clear();
    for (const PageKey& k : want) {
      std::mutex* m = LatchFor(k);
      m->lock();
      ++ctx.latch_acquires;
      ctx.latches.emplace_back(k, m);
    }
    return;
  }
  std::mutex* m = LatchFor(key);
  m->lock();
  ++ctx.latch_acquires;
  ctx.latches.emplace_back(key, m);
}

void ConcurrentEngine::ReleaseLatches(SessionCtx& ctx) {
  for (auto it = ctx.latches.rbegin(); it != ctx.latches.rend(); ++it) {
    it->second->unlock();
  }
  ctx.latches.clear();
}

const std::string& ConcurrentEngine::TableName(const minidb::HeapTable* heap) {
  auto it = table_names_.find(heap);
  if (it != table_names_.end()) return it->second;
  // The catalog is frozen during the run, so a one-shot reverse lookup per
  // heap is safe to cache.
  for (const std::string& name : db_->catalog().TableNames()) {
    auto t = db_->catalog().GetTable(name);
    if (t.ok() && &t.value()->heap == heap) {
      return table_names_.emplace(heap, name).first->second;
    }
  }
  static const std::string kUnknown = "?";
  return kUnknown;
}

std::string ConcurrentEngine::KeyString(const std::string& table,
                                        minidb::RowId id) {
  std::ostringstream out;
  out << table << ":" << id.page << ":" << id.slot;
  return out.str();
}

void ConcurrentEngine::BeginTxn(SessionCtx& ctx) {
  ctx.txn = next_txn_++;
  ctx.txn_open = true;
  ctx.in_explicit = false;
  ctx.undo.clear();
  txn_sid_[ctx.txn] = ctx.sid;
  history_.Begin(ctx.sid, ctx.txn);
}

void ConcurrentEngine::WakeGranted(const std::vector<uint64_t>& txns) {
  for (uint64_t txn : txns) {
    auto it = txn_sid_.find(txn);
    if (it != txn_sid_.end()) scheduler_.WakeLocked(it->second);
  }
}

void ConcurrentEngine::CommitTxn(SessionCtx& ctx) {
  ReleaseLatches(ctx);
  history_.Commit(ctx.sid, ctx.txn);
  WakeGranted(locks_.ReleaseAll(ctx.txn));
  ctx.undo.clear();
  ctx.txn_open = false;
  ctx.in_explicit = false;
  db_->session().in_transaction = false;
}

void ConcurrentEngine::ApplyUndo(SessionCtx& ctx) {
  // Undo application must not re-enter the observer (no locks, no schedule
  // points, no history inside a rollback) and must not feed the storage
  // engine's WAL capture (the concurrent phase logs via checkpoint, not
  // per-statement records).
  minidb::RowHookClearScope no_hooks;
  minidb::StorageHookClearScope no_storage_hooks;
  std::map<std::string, minidb::HeapTable*> touched;
  for (auto it = ctx.undo.rbegin(); it != ctx.undo.rend(); ++it) {
    UndoRecord& rec = *it;
    touched.emplace(rec.table, rec.heap);
    switch (rec.kind) {
      case UndoRecord::Kind::kInsert:
        rec.heap->Delete(rec.rid);
        break;
      case UndoRecord::Kind::kUpdate:
        rec.heap->Update(rec.rid, std::move(rec.old_row));
        break;
      case UndoRecord::Kind::kDelete:
        rec.heap->ResurrectAt(rec.rid, std::move(rec.old_row));
        break;
    }
    if (rec.old_version == 0) {
      versions_[rec.table].erase(rec.rid);
    } else {
      versions_[rec.table][rec.rid] = rec.old_version;
    }
  }
  // Rebuild the indexes of touched tables from the heap: the executor's
  // per-row index maintenance for the undone statements is not tracked in
  // the undo log, and a full rebuild is always consistent.
  for (const auto& [name, heap] : touched) {
    auto t = db_->catalog().GetTable(name);
    if (!t.ok()) continue;
    minidb::TableInfo* info = t.value();
    for (const std::string& iname : info->index_names) {
      auto idx = db_->catalog().GetIndex(iname);
      if (!idx.ok()) continue;
      minidb::IndexInfo* index = idx.value();
      int col = info->schema.FindColumn(index->columns[0]);
      if (col < 0) continue;
      index->tree.Clear();
      heap->Scan([&](minidb::RowId rid, const minidb::Row& row) {
        if (static_cast<size_t>(col) < row.size()) {
          index->tree.Insert(row[static_cast<size_t>(col)], rid);
        }
        return true;
      });
    }
  }
}

void ConcurrentEngine::RollbackTxn(SessionCtx& ctx) {
  ReleaseLatches(ctx);
  ApplyUndo(ctx);
  history_.Abort(ctx.sid, ctx.txn);
  WakeGranted(locks_.ReleaseAll(ctx.txn));
  ctx.undo.clear();
  ctx.txn_open = false;
  ctx.in_explicit = false;
  db_->session().in_transaction = false;
}

void ConcurrentEngine::AcquireLock(SessionCtx& ctx,
                                   const minidb::LockKey& key,
                                   minidb::LockMode mode) {
  switch (locks_.Request(ctx.txn, key, mode)) {
    case minidb::LockManager::Acquire::kGranted:
      return;
    case minidb::LockManager::Acquire::kDeadlock:
      throw TxnAbortException{};
    case minidb::LockManager::Acquire::kWouldBlock:
      break;
  }
  ReleaseLatches(ctx);  // about to park: latches never span a wait
  SwapOut(ctx);
  EpochScheduler::Wake w = scheduler_.BlockOnLock(ctx.sid);
  if (w == EpochScheduler::Wake::kShutdown) throw ShutdownException{};
  SwapIn(ctx);
  if (w == EpochScheduler::Wake::kForcedAbort) {
    // The pending request is still queued; ReleaseAll during the rollback
    // this exception triggers will cancel it.
    throw TxnAbortException{};
  }
  // kGo: another session's release promoted our request; the lock is held.
}

// --- TxnHook ---------------------------------------------------------------

Status ConcurrentEngine::Begin(minidb::Database& db) {
  SessionCtx& ctx = Ctx();
  if (ctx.in_explicit) {
    return Status::TransactionError("a transaction is already in progress");
  }
  if (!ctx.txn_open) BeginTxn(ctx);
  ctx.in_explicit = true;
  db.session().in_transaction = true;
  return Status::OK();
}

Status ConcurrentEngine::Commit(minidb::Database& db) {
  (void)db;
  SessionCtx& ctx = Ctx();
  if (!ctx.in_explicit) {
    return Status::TransactionError("no transaction in progress");
  }
  CommitTxn(ctx);
  return Status::OK();
}

Status ConcurrentEngine::Rollback(minidb::Database& db) {
  (void)db;
  SessionCtx& ctx = Ctx();
  if (!ctx.in_explicit) {
    return Status::TransactionError("no transaction in progress");
  }
  RollbackTxn(ctx);
  return Status::OK();
}

Status ConcurrentEngine::Savepoint(minidb::Database& db, const std::string&) {
  (void)db;
  return Status::TransactionError(
      "SAVEPOINT is not supported under the concurrent backend");
}

Status ConcurrentEngine::Release(minidb::Database& db, const std::string&) {
  (void)db;
  return Status::TransactionError(
      "RELEASE is not supported under the concurrent backend");
}

Status ConcurrentEngine::RollbackTo(minidb::Database& db, const std::string&) {
  (void)db;
  return Status::TransactionError(
      "ROLLBACK TO is not supported under the concurrent backend");
}

// --- RowObserver -----------------------------------------------------------

void ConcurrentEngine::OnRead(const minidb::HeapTable* table,
                              minidb::RowId id) {
  SessionCtx& ctx = Ctx();
  if (!ctx.txn_open) return;
  SchedulePoint(ctx);
  const std::string& name = TableName(table);
  // Reads performed by UPDATE/DELETE statements lock X up front (they feed
  // a mutation; going straight to X avoids upgrade deadlock storms).
  bool write_read = ctx.current_type == sql::StatementType::kUpdate ||
                    ctx.current_type == sql::StatementType::kDelete ||
                    ctx.current_type == sql::StatementType::kReplace;
  minidb::LockMode mode = write_read && !options_.planted_lost_update
                              ? minidb::LockMode::kExclusive
                              : minidb::LockMode::kShared;
  bool skip = options_.planted_dirty_read &&
              mode == minidb::LockMode::kShared;
  if (!skip) AcquireLock(ctx, minidb::LockKey{name, id}, mode);
  // Latch below the row lock: the heap will decode this row's page into
  // its shared cache right after this hook returns.
  LatchPage(ctx, table, id);
  uint64_t version = 0;
  auto t = versions_.find(name);
  if (t != versions_.end()) {
    auto r = t->second.find(id);
    if (r != t->second.end()) version = r->second;
  }
  history_.Read(ctx.sid, ctx.txn, KeyString(name, id), version);
}

void ConcurrentEngine::OnUpdate(minidb::HeapTable* table, minidb::RowId id) {
  SessionCtx& ctx = Ctx();
  if (!ctx.txn_open) return;
  SchedulePoint(ctx);
  const std::string& name = TableName(table);
  if (!options_.planted_lost_update) {
    AcquireLock(ctx, minidb::LockKey{name, id}, minidb::LockMode::kExclusive);
  }
  LatchPage(ctx, table, id);
  const minidb::Row* old = table->RawRow(id);
  if (old == nullptr) return;  // dead slot; the mutation itself will fail
  uint64_t prev = versions_[name].count(id) ? versions_[name][id] : 0;
  ctx.undo.push_back(
      {UndoRecord::Kind::kUpdate, name, table, id, *old, prev});
  uint64_t version = next_version_++;
  history_.Write(ctx.sid, ctx.txn, KeyString(name, id), version, prev);
  versions_[name][id] = version;
}

void ConcurrentEngine::OnDelete(minidb::HeapTable* table, minidb::RowId id) {
  SessionCtx& ctx = Ctx();
  if (!ctx.txn_open) return;
  SchedulePoint(ctx);
  const std::string& name = TableName(table);
  if (!options_.planted_lost_update) {
    AcquireLock(ctx, minidb::LockKey{name, id}, minidb::LockMode::kExclusive);
  }
  LatchPage(ctx, table, id);
  const minidb::Row* old = table->RawRow(id);
  if (old == nullptr) return;
  uint64_t prev = versions_[name].count(id) ? versions_[name][id] : 0;
  ctx.undo.push_back(
      {UndoRecord::Kind::kDelete, name, table, id, *old, prev});
  uint64_t version = next_version_++;
  history_.Write(ctx.sid, ctx.txn, KeyString(name, id), version, prev);
  versions_[name][id] = version;
}

void ConcurrentEngine::OnInsert(minidb::HeapTable* table) {
  SessionCtx& ctx = Ctx();
  if (!ctx.txn_open) return;
  SchedulePoint(ctx);
  const std::string& name = TableName(table);
  minidb::RowId rid = table->PeekInsert();
  if (!options_.planted_lost_update) {
    // Lock the predicted slot; if acquiring parked us and another session
    // moved the insertion point meanwhile, re-predict and lock again (the
    // stale lock is kept — strict 2PL has no single-lock release).
    for (;;) {
      AcquireLock(ctx, minidb::LockKey{name, rid},
                  minidb::LockMode::kExclusive);
      minidb::RowId again = table->PeekInsert();
      if (again == rid) break;
      rid = again;
    }
  }
  LatchPage(ctx, table, rid);
  uint64_t prev = versions_[name].count(rid) ? versions_[name][rid] : 0;
  ctx.undo.push_back({UndoRecord::Kind::kInsert, name, table, rid, {}, prev});
  uint64_t version = next_version_++;
  history_.Write(ctx.sid, ctx.txn, KeyString(name, rid), version, prev);
  versions_[name][rid] = version;
}

// --- session loop ----------------------------------------------------------

void ConcurrentEngine::ExecuteOne(SessionCtx& ctx,
                                  const sql::Statement& stmt) {
  ctx.current_type = stmt.type();
  if (!AllowedInSession(stmt.type())) {
    ++ctx.errors;
    return;
  }
  if (!ctx.txn_open) BeginTxn(ctx);
  try {
    auto result = db_->Execute(stmt);
    if (!result.ok() && result.status().IsCrash()) {
      crashed_ = true;
      crash_ = db_->last_crash();
      scheduler_.AbortAll();
      throw ShutdownException{};
    }
    if (!result.ok()) {
      ++ctx.errors;
      // An errored autocommit statement rolls its implicit transaction
      // back; an explicit transaction stays open (minidb skips statement
      // errors rather than poisoning the transaction).
      if (!ctx.in_explicit && ctx.txn_open) RollbackTxn(ctx);
    } else {
      ++ctx.executed;
      if (!ctx.in_explicit && ctx.txn_open) CommitTxn(ctx);
    }
  } catch (const TxnAbortException&) {
    ++ctx.deadlocks;
    ++ctx.errors;
    RollbackTxn(ctx);
  }
}

void ConcurrentEngine::SessionMain(SessionCtx* ctx) {
  tls_ctx_ = ctx;
  minidb::RowHooks::Set(this);
  if (options_.on_thread_start) options_.on_thread_start(ctx->sid);
  try {
    for (const sql::Statement* stmt : ctx->script) {
      SchedulePoint(*ctx);  // statement-boundary schedule point
      ExecuteOne(*ctx, *stmt);
    }
    if (ctx->txn_open) RollbackTxn(*ctx);  // end-of-script: abandon open txn
    ReleaseLatches(*ctx);
    if (ctx->swapped_in) SwapOut(*ctx);
    scheduler_.Finish(ctx->sid);
  } catch (const ShutdownException&) {
    // Crash or abort: exit without holding latches or touching shared
    // engine state; the database is reset by the backend before next use.
    ReleaseLatches(*ctx);
  }
  minidb::RowHooks::Set(nullptr);
  tls_ctx_ = nullptr;
}

ConcurrentEngine::RunStats ConcurrentEngine::Run(
    const std::vector<std::vector<const sql::Statement*>>& scripts) {
  assert(static_cast<int>(scripts.size()) == options_.sessions);
  ctxs_.clear();
  ctxs_.resize(scripts.size());
  for (size_t i = 0; i < scripts.size(); ++i) {
    ctxs_[i].sid = static_cast<int>(i);
    ctxs_[i].script = scripts[i];
  }
  db_->set_txn_hook(this);
  std::vector<std::thread> threads;
  threads.reserve(ctxs_.size());
  for (SessionCtx& ctx : ctxs_) {
    threads.emplace_back(&ConcurrentEngine::SessionMain, this, &ctx);
  }
  for (std::thread& t : threads) t.join();
  db_->set_txn_hook(nullptr);

  RunStats stats;
  for (const SessionCtx& ctx : ctxs_) {
    stats.executed += ctx.executed;
    stats.errors += ctx.errors;
    stats.deadlocks += ctx.deadlocks;
    stats.page_latch_acquires += ctx.latch_acquires;
  }
  stats.crashed = crashed_;
  stats.crash = crash_;
  stats.trace_digest = scheduler_.TraceDigest();
  stats.history_digest = history_.Digest();
  stats.epochs = scheduler_.epochs();
  stats.switches = scheduler_.switches();
  return stats;
}

}  // namespace lego::concurrency
