#ifndef LEGO_CONCURRENCY_ENGINE_H_
#define LEGO_CONCURRENCY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "concurrency/history.h"
#include "concurrency/scheduler.h"
#include "minidb/database.h"
#include "minidb/heap_table.h"
#include "minidb/lock_manager.h"
#include "sql/ast.h"

namespace lego::concurrency {

/// Thrown inside a session thread when its transaction must abort (deadlock
/// victim or forced stall-break). Unwinds cleanly through the executor —
/// minidb code is exception-neutral — and is caught at the engine's
/// statement loop, which rolls back via the undo log.
struct TxnAbortException {};

/// Drives N sessions as real threads over ONE shared minidb::Database,
/// token-serialized by the EpochScheduler so exactly one session executes at
/// a time and the interleaving is a pure function of the scheduler seed.
///
/// The engine hooks the storage layer twice:
///  - as minidb::RowObserver (thread-local per session thread): every row
///    read/write is a schedule point and a strict-2PL lock acquisition
///    (S for SELECT reads, X for UPDATE/DELETE reads and all mutations),
///    an undo-log append, and a history event;
///  - as minidb::TxnHook (installed on the Database): BEGIN/COMMIT/ROLLBACK
///    run the engine's transactions (locks + undo) instead of minidb's
///    serial snapshot transactions, which cannot nest across sessions.
///
/// Session state (the Database's SessionState) is swapped in/out at every
/// token handoff, so each session observes its own settings/trace while the
/// shared catalog carries the data. DDL is screened at the statement level
/// and the catalog is additionally frozen by the backend, so the set of
/// tables/indexes is fixed for the whole concurrent phase.
///
/// Beneath row-level 2PL sits a page-latch layer (PR 9): before a session
/// touches a heap row it latches that row's logical page — a real
/// std::mutex per (heap, page), acquired in (heap, page-id) order while the
/// session holds the scheduler token and released before every yield
/// (schedule points, lock waits) and at transaction resolution. Because
/// latches never span a park, they cannot deadlock; their job is latch
/// discipline over the shared paged heaps and explicit happens-before edges
/// for TSan on the page-cache accesses the token alone serializes.
class ConcurrentEngine : public minidb::TxnHook, public minidb::RowObserver {
 public:
  struct Options {
    int sessions = 2;
    uint64_t seed = 1;
    /// Planted defect: UPDATE/DELETE reads take S instead of X and write
    /// mutations skip their X locks — the classic unprotected
    /// read-modify-write (lost update).
    bool planted_lost_update = false;
    /// Planted defect: S-mode read locking is skipped entirely, so reads
    /// observe uncommitted (dirty) versions.
    bool planted_dirty_read = false;
    /// Invoked at the start of each session thread (sid) — the backend
    /// installs its thread-local coverage map here.
    std::function<void(int)> on_thread_start;
  };

  struct RunStats {
    int executed = 0;       // statements that ran without error
    int errors = 0;         // statement-level errors (incl. rejected types)
    int deadlocks = 0;      // transactions aborted as deadlock victims
    bool crashed = false;
    std::optional<minidb::CrashInfo> crash;
    uint64_t trace_digest = 0;
    uint64_t history_digest = 0;
    int epochs = 0;
    int switches = 0;
    uint64_t page_latch_acquires = 0;  // page latches taken across the run
  };

  ConcurrentEngine(minidb::Database* db, Options options);
  ~ConcurrentEngine() override;

  ConcurrentEngine(const ConcurrentEngine&) = delete;
  ConcurrentEngine& operator=(const ConcurrentEngine&) = delete;

  /// Runs one script per session concurrently (scripts are parsed
  /// beforehand; statements are borrowed, not owned). Blocks until every
  /// session finishes or a crash aborts the run.
  RunStats Run(const std::vector<std::vector<const sql::Statement*>>& scripts);

  const History& history() const { return history_; }

  // --- minidb::TxnHook -----------------------------------------------------
  Status Begin(minidb::Database& db) override;
  Status Commit(minidb::Database& db) override;
  Status Rollback(minidb::Database& db) override;
  Status Savepoint(minidb::Database& db, const std::string& n) override;
  Status Release(minidb::Database& db, const std::string& n) override;
  Status RollbackTo(minidb::Database& db, const std::string& n) override;

  // --- minidb::RowObserver -------------------------------------------------
  void OnInsert(minidb::HeapTable* table) override;
  void OnUpdate(minidb::HeapTable* table, minidb::RowId id) override;
  void OnDelete(minidb::HeapTable* table, minidb::RowId id) override;
  void OnRead(const minidb::HeapTable* table, minidb::RowId id) override;

 private:
  struct UndoRecord {
    enum class Kind : uint8_t { kInsert, kUpdate, kDelete };
    Kind kind = Kind::kInsert;
    std::string table;
    minidb::HeapTable* heap = nullptr;
    minidb::RowId rid;
    minidb::Row old_row;        // update/delete pre-image
    uint64_t old_version = 0;   // versions_ entry before this write
  };

  /// Identifies one latchable logical heap page.
  using PageKey = std::pair<const minidb::HeapTable*, uint32_t>;

  struct SessionCtx {
    int sid = 0;
    std::vector<const sql::Statement*> script;
    minidb::SessionState db_session;  // parked session state (swap slot)
    bool swapped_in = false;

    uint64_t txn = 0;
    bool txn_open = false;
    bool in_explicit = false;
    sql::StatementType current_type = sql::StatementType::kSelect;
    std::vector<UndoRecord> undo;

    /// Page latches this session holds, sorted by PageKey (the acquisition
    /// order). Always empty while parked.
    std::vector<std::pair<PageKey, std::mutex*>> latches;

    int executed = 0;
    int errors = 0;
    int deadlocks = 0;
    uint64_t latch_acquires = 0;
  };

  static bool AllowedInSession(sql::StatementType type);

  /// Calling session thread's context (set for the thread's lifetime).
  static thread_local SessionCtx* tls_ctx_;

  SessionCtx& Ctx();                // calling thread's session
  void SessionMain(SessionCtx* ctx);
  void ExecuteOne(SessionCtx& ctx, const sql::Statement& stmt);

  void SwapIn(SessionCtx& ctx);
  void SwapOut(SessionCtx& ctx);
  /// Statement/row-op schedule point: release token, park, resume.
  void SchedulePoint(SessionCtx& ctx);

  void BeginTxn(SessionCtx& ctx);
  void CommitTxn(SessionCtx& ctx);
  void RollbackTxn(SessionCtx& ctx);
  void ApplyUndo(SessionCtx& ctx);
  void WakeGranted(const std::vector<uint64_t>& txns);

  /// Strict-2PL acquisition with scheduler integration; throws
  /// TxnAbortException on deadlock / forced stall-break. Drops any held
  /// page latches before parking on a contended lock.
  void AcquireLock(SessionCtx& ctx, const minidb::LockKey& key,
                   minidb::LockMode mode);

  /// Latches the logical page holding `id` (idempotent if already held).
  /// An out-of-order request restarts the whole acquisition in PageKey
  /// order — safe because the caller holds the scheduler token throughout.
  void LatchPage(SessionCtx& ctx, const minidb::HeapTable* heap,
                 minidb::RowId id);
  /// Unlocks every held latch in reverse order. Must run before any yield.
  void ReleaseLatches(SessionCtx& ctx);
  std::mutex* LatchFor(const PageKey& key);

  const std::string& TableName(const minidb::HeapTable* heap);
  static std::string KeyString(const std::string& table, minidb::RowId id);

  minidb::Database* db_;
  Options options_;
  EpochScheduler scheduler_;
  minidb::LockManager locks_;
  History history_;

  std::vector<SessionCtx> ctxs_;
  std::map<uint64_t, int> txn_sid_;
  uint64_t next_txn_ = 1;
  uint64_t next_version_ = 1;
  std::map<std::string, std::map<minidb::RowId, uint64_t>> versions_;
  std::map<const minidb::HeapTable*, std::string> table_names_;
  /// Latch registry, created on first touch. Only mutated while holding the
  /// scheduler token, so the map itself needs no lock of its own.
  std::map<PageKey, std::unique_ptr<std::mutex>> page_latches_;

  bool crashed_ = false;
  std::optional<minidb::CrashInfo> crash_;
};

}  // namespace lego::concurrency

#endif  // LEGO_CONCURRENCY_ENGINE_H_
