#ifndef LEGO_CONCURRENCY_SCHEDULER_H_
#define LEGO_CONCURRENCY_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "util/random.h"

namespace lego::concurrency {

/// Epoch-based cooperative scheduler: the deterministic-interleaving core.
///
/// Exactly one session thread runs at a time (holds "the token"). Sessions
/// announce schedule points by calling Arrive() — at every statement boundary
/// and every row operation — which parks them. When every live session is
/// parked (arrived, blocked on a lock, or finished), the scheduler closes the
/// epoch: it COLLECTs the arrived sessions, shuffles them with the case's
/// seeded RNG, and DRAINs the queue by granting the token to each in turn.
/// A granted session executes exactly one schedule step and parks again for
/// the next epoch. The shuffle is the only source of interleaving variety,
/// so the full interleaving is a pure function of the seed — replayable,
/// fork-stable, and checkpointable.
///
/// Lock waits integrate as a third state: a token holder whose lock request
/// would block calls BlockOnLock(), which releases the token and parks the
/// session out of the epoch rotation until another session's commit grants
/// the lock and calls WakeLocked() for it (re-entering it into the next
/// epoch). If every live session ends up lock-waiting — which strict 2PL
/// plus requester-dies deadlock handling should make impossible — the
/// scheduler force-wakes the smallest waiting session with kForcedAbort as a
/// deterministic last resort rather than hanging the campaign.
class EpochScheduler {
 public:
  enum class Wake : uint8_t {
    kGo,           // token granted, proceed
    kForcedAbort,  // stall breaker: abort the transaction (lock not granted)
    kShutdown,     // AbortAll() was called: unwind without touching the db
  };

  EpochScheduler(int n_sessions, uint64_t seed);

  /// Schedule point. Releases the token (if held) and parks until granted.
  Wake Arrive(int sid);

  /// Token holder whose lock request returned kWouldBlock. Releases the
  /// token and parks until WakeLocked(sid) + a later epoch grant (kGo, the
  /// lock is then held), a forced stall-break (kForcedAbort), or shutdown.
  Wake BlockOnLock(int sid);

  /// Called by the token holder after its lock release granted `sid`'s
  /// pending request: re-enters `sid` into the epoch rotation.
  void WakeLocked(int sid);

  /// Session `sid` is done (end of script). Releases the token.
  void Finish(int sid);

  /// Terminal: wake everyone with kShutdown (crash or external abort).
  void AbortAll();

  bool aborted() const;

  /// Granted-session order, one entry per token grant — the interleaving
  /// trace. Stable across replays of the same seed.
  const std::vector<int>& picks() const { return picks_; }
  uint64_t TraceDigest() const;
  int epochs() const { return epochs_; }
  /// Number of grants that switched to a different session than the
  /// previous grant (the triage minimizer prefers fewer switches).
  int switches() const { return switches_; }
  int forced_aborts() const { return forced_aborts_; }

 private:
  enum class State : uint8_t { kOutside, kArrived, kLockWait, kRunning, kDone };

  /// With lock_ held: if no one runs, drain the queue or close the epoch.
  void Dispatch();
  void Grant(int sid);

  mutable std::mutex lock_;
  std::condition_variable cv_;

  int n_;
  Rng rng_;
  std::vector<State> states_;
  std::vector<bool> forced_;  // sid woken via stall-break
  std::deque<int> drain_;
  int running_ = -1;
  bool aborted_ = false;

  std::vector<int> picks_;
  int epochs_ = 0;
  int switches_ = 0;
  int forced_aborts_ = 0;
};

}  // namespace lego::concurrency

#endif  // LEGO_CONCURRENCY_SCHEDULER_H_
