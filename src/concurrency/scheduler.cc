#include "concurrency/scheduler.h"

#include <algorithm>

#include "util/hash.h"

namespace lego::concurrency {

EpochScheduler::EpochScheduler(int n_sessions, uint64_t seed)
    : n_(n_sessions),
      rng_(seed),
      states_(static_cast<size_t>(n_sessions), State::kOutside),
      forced_(static_cast<size_t>(n_sessions), false) {}

void EpochScheduler::Grant(int sid) {
  states_[static_cast<size_t>(sid)] = State::kRunning;
  running_ = sid;
  if (!picks_.empty() && picks_.back() != sid) ++switches_;
  picks_.push_back(sid);
}

void EpochScheduler::Dispatch() {
  if (running_ != -1 || aborted_) return;
  if (!drain_.empty()) {
    int sid = drain_.front();
    drain_.pop_front();
    Grant(sid);
    cv_.notify_all();
    return;
  }
  // Close the epoch once every session is parked: arrived, lock-waiting, or
  // done. (Sessions still kOutside haven't reached their first schedule
  // point yet — the first epoch waits for all of them, a deterministic
  // start barrier.)
  int arrived = 0, lockwait = 0, done = 0;
  for (State s : states_) {
    if (s == State::kArrived) ++arrived;
    else if (s == State::kLockWait) ++lockwait;
    else if (s == State::kDone) ++done;
  }
  if (arrived + lockwait + done < n_) return;
  if (arrived > 0) {
    std::vector<int> batch;
    for (int sid = 0; sid < n_; ++sid) {
      if (states_[static_cast<size_t>(sid)] == State::kArrived) {
        batch.push_back(sid);
      }
    }
    rng_.Shuffle(&batch);
    drain_.assign(batch.begin(), batch.end());
    ++epochs_;
    int sid = drain_.front();
    drain_.pop_front();
    Grant(sid);
    cv_.notify_all();
    return;
  }
  if (lockwait > 0) {
    // Every live session waits on a lock. Strict 2PL with requester-dies
    // deadlock handling should make this unreachable; break the stall
    // deterministically instead of hanging: force-wake the smallest waiter,
    // which aborts its transaction (kForcedAbort).
    for (int sid = 0; sid < n_; ++sid) {
      if (states_[static_cast<size_t>(sid)] == State::kLockWait) {
        forced_[static_cast<size_t>(sid)] = true;
        ++forced_aborts_;
        Grant(sid);
        cv_.notify_all();
        return;
      }
    }
  }
  // Everyone done: nothing left to schedule.
}

EpochScheduler::Wake EpochScheduler::Arrive(int sid) {
  std::unique_lock<std::mutex> hold(lock_);
  if (aborted_) return Wake::kShutdown;
  if (running_ == sid) running_ = -1;
  states_[static_cast<size_t>(sid)] = State::kArrived;
  Dispatch();
  cv_.wait(hold, [&] {
    return aborted_ || states_[static_cast<size_t>(sid)] == State::kRunning;
  });
  if (aborted_) return Wake::kShutdown;
  return Wake::kGo;
}

EpochScheduler::Wake EpochScheduler::BlockOnLock(int sid) {
  std::unique_lock<std::mutex> hold(lock_);
  if (aborted_) return Wake::kShutdown;
  if (running_ == sid) running_ = -1;
  states_[static_cast<size_t>(sid)] = State::kLockWait;
  Dispatch();
  cv_.wait(hold, [&] {
    return aborted_ || states_[static_cast<size_t>(sid)] == State::kRunning;
  });
  if (aborted_) return Wake::kShutdown;
  if (forced_[static_cast<size_t>(sid)]) {
    forced_[static_cast<size_t>(sid)] = false;
    return Wake::kForcedAbort;
  }
  return Wake::kGo;
}

void EpochScheduler::WakeLocked(int sid) {
  std::unique_lock<std::mutex> hold(lock_);
  if (states_[static_cast<size_t>(sid)] == State::kLockWait) {
    states_[static_cast<size_t>(sid)] = State::kArrived;
  }
}

void EpochScheduler::Finish(int sid) {
  std::unique_lock<std::mutex> hold(lock_);
  if (running_ == sid) running_ = -1;
  states_[static_cast<size_t>(sid)] = State::kDone;
  Dispatch();
}

void EpochScheduler::AbortAll() {
  std::unique_lock<std::mutex> hold(lock_);
  aborted_ = true;
  cv_.notify_all();
}

bool EpochScheduler::aborted() const {
  std::unique_lock<std::mutex> hold(lock_);
  return aborted_;
}

uint64_t EpochScheduler::TraceDigest() const {
  std::unique_lock<std::mutex> hold(lock_);
  uint64_t h = Fnv1a64("interleaving");
  for (int sid : picks_) h = HashMix(h, static_cast<uint64_t>(sid) + 1);
  return h;
}

}  // namespace lego::concurrency
