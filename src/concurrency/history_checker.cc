#include "concurrency/history_checker.h"

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace lego::concurrency {
namespace {

struct TxnInfo {
  bool committed = false;          // no commit event => treated as aborted
  size_t commit_idx = 0;           // event index of the commit
  std::map<std::string, size_t> first_write;  // key -> event index
  std::map<std::string, std::set<uint64_t>> writes;  // key -> versions
};

struct Extract {
  std::map<uint64_t, TxnInfo> txns;
  std::map<uint64_t, uint64_t> writer_of;     // version -> txn (version > 0)
  std::map<uint64_t, size_t> write_idx;       // version -> event index
  // last (final) version each txn produced per key
  std::map<uint64_t, std::map<std::string, uint64_t>> final_version;
};

Extract Scan(const History& h) {
  Extract x;
  const auto& ev = h.events();
  for (size_t i = 0; i < ev.size(); ++i) {
    const Event& e = ev[i];
    TxnInfo& t = x.txns[e.txn];
    switch (e.type) {
      case Event::Type::kBegin:
      case Event::Type::kAbort:
        break;
      case Event::Type::kCommit:
        t.committed = true;
        t.commit_idx = i;
        break;
      case Event::Type::kRead:
        break;
      case Event::Type::kWrite:
        if (!t.first_write.count(e.key)) t.first_write[e.key] = i;
        t.writes[e.key].insert(e.version);
        x.writer_of[e.version] = e.txn;
        x.write_idx[e.version] = i;
        x.final_version[e.txn][e.key] = e.version;
        break;
    }
  }
  return x;
}

bool Committed(const Extract& x, uint64_t txn) {
  auto it = x.txns.find(txn);
  return it != x.txns.end() && it->second.committed;
}

std::string TxnList(const std::vector<uint64_t>& cycle) {
  std::ostringstream out;
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i) out << " -> ";
    out << "t" << cycle[i];
  }
  return out.str();
}

/// Finds any cycle in `edges` (adjacency per txn); returns it as a txn list
/// (closing node repeated), or empty if acyclic.
std::vector<uint64_t> FindCycle(
    const std::map<uint64_t, std::set<uint64_t>>& edges) {
  std::map<uint64_t, int> color;  // 0 white, 1 gray, 2 black
  std::vector<uint64_t> path;
  std::vector<uint64_t> found;

  std::function<bool(uint64_t)> dfs = [&](uint64_t u) {
    color[u] = 1;
    path.push_back(u);
    auto it = edges.find(u);
    if (it != edges.end()) {
      for (uint64_t v : it->second) {
        if (color[v] == 1) {
          // Close the cycle from the first occurrence of v on the path.
          size_t start = 0;
          while (path[start] != v) ++start;
          found.assign(path.begin() + static_cast<ptrdiff_t>(start),
                       path.end());
          found.push_back(v);
          return true;
        }
        if (color[v] == 0 && dfs(v)) return true;
      }
    }
    color[u] = 2;
    path.pop_back();
    return false;
  };
  for (const auto& [u, _] : edges) {
    if (color[u] == 0 && dfs(u)) return found;
  }
  return {};
}

}  // namespace

std::optional<Anomaly> CheckHistory(const History& h) {
  const auto& ev = h.events();
  Extract x = Scan(h);

  // --- iso-lost-update -----------------------------------------------------
  // Two distinct committed transactions each read the same version v of key
  // k *before their own first write to k* (the read that feeds the RMW), and
  // both wrote k. Under correct X-locking the second writer's read must see
  // the first writer's committed version, so this cannot happen.
  {
    // (key, version) -> txns that performed a pre-write read of it
    std::map<std::pair<std::string, uint64_t>, std::set<uint64_t>> rmw_reads;
    for (size_t i = 0; i < ev.size(); ++i) {
      const Event& e = ev[i];
      if (e.type != Event::Type::kRead) continue;
      if (!Committed(x, e.txn)) continue;
      const TxnInfo& t = x.txns[e.txn];
      auto fw = t.first_write.find(e.key);
      if (fw == t.first_write.end() || i >= fw->second) continue;
      auto& readers = rmw_reads[{e.key, e.version}];
      readers.insert(e.txn);
      if (readers.size() >= 2) {
        std::ostringstream d;
        d << "committed txns ";
        for (uint64_t txn : readers) d << "t" << txn << " ";
        d << "each read version " << e.version << " of " << e.key
          << " and then wrote it";
        return Anomaly{"iso-lost-update", e.key, d.str()};
      }
    }
  }

  // --- iso-dirty-read ------------------------------------------------------
  // A committed transaction observed a version before its writer committed.
  for (size_t i = 0; i < ev.size(); ++i) {
    const Event& e = ev[i];
    if (e.type != Event::Type::kRead || e.version == 0) continue;
    if (!Committed(x, e.txn)) continue;
    auto w = x.writer_of.find(e.version);
    if (w == x.writer_of.end() || w->second == e.txn) continue;
    if (!Committed(x, w->second)) continue;  // aborted writer => iso-g1a
    if (i < x.txns[w->second].commit_idx) {
      std::ostringstream d;
      d << "t" << e.txn << " read version " << e.version << " of " << e.key
        << " before its writer t" << w->second << " committed";
      return Anomaly{"iso-dirty-read", e.key, d.str()};
    }
  }

  // --- iso-g1a (aborted read) ----------------------------------------------
  for (const Event& e : ev) {
    if (e.type != Event::Type::kRead || e.version == 0) continue;
    if (!Committed(x, e.txn)) continue;
    auto w = x.writer_of.find(e.version);
    if (w == x.writer_of.end() || w->second == e.txn) continue;
    if (!Committed(x, w->second)) {
      std::ostringstream d;
      d << "t" << e.txn << " read version " << e.version << " of " << e.key
        << " written by aborted t" << w->second;
      return Anomaly{"iso-g1a", e.key, d.str()};
    }
  }

  // --- iso-g1b (intermediate read) -----------------------------------------
  for (const Event& e : ev) {
    if (e.type != Event::Type::kRead || e.version == 0) continue;
    if (!Committed(x, e.txn)) continue;
    auto w = x.writer_of.find(e.version);
    if (w == x.writer_of.end() || w->second == e.txn) continue;
    if (!Committed(x, w->second)) continue;
    auto fv = x.final_version[w->second].find(e.key);
    if (fv != x.final_version[w->second].end() && fv->second != e.version) {
      std::ostringstream d;
      d << "t" << e.txn << " read intermediate version " << e.version
        << " of " << e.key << " (t" << w->second << "'s final is v"
        << fv->second << ")";
      return Anomaly{"iso-g1b", e.key, d.str()};
    }
  }

  // --- iso-non-repeatable-read ---------------------------------------------
  // One committed transaction read the same key twice (before any write of
  // its own to it) and saw different versions.
  {
    std::map<std::pair<uint64_t, std::string>, uint64_t> first_seen;
    for (size_t i = 0; i < ev.size(); ++i) {
      const Event& e = ev[i];
      if (e.type != Event::Type::kRead) continue;
      if (!Committed(x, e.txn)) continue;
      const TxnInfo& t = x.txns[e.txn];
      auto fw = t.first_write.find(e.key);
      if (fw != t.first_write.end() && i >= fw->second) continue;
      auto [it, inserted] = first_seen.insert({{e.txn, e.key}, e.version});
      if (!inserted && it->second != e.version) {
        std::ostringstream d;
        d << "t" << e.txn << " read " << e.key << " twice: v" << it->second
          << " then v" << e.version;
        return Anomaly{"iso-non-repeatable-read", e.key, d.str()};
      }
    }
  }

  // --- dependency edges among committed transactions -----------------------
  std::map<uint64_t, std::set<uint64_t>> ww_wr;
  std::map<uint64_t, std::set<uint64_t>> all_edges;
  // rw edges with their key, for write-skew pairing: (reader, writer) -> keys
  std::map<std::pair<uint64_t, uint64_t>, std::set<std::string>> rw_keys;

  for (const Event& e : ev) {
    if (e.type == Event::Type::kWrite && Committed(x, e.txn) &&
        e.prev_version != 0) {
      // ww: overwrote another committed txn's version.
      auto w = x.writer_of.find(e.prev_version);
      if (w != x.writer_of.end() && w->second != e.txn &&
          Committed(x, w->second)) {
        ww_wr[w->second].insert(e.txn);
        all_edges[w->second].insert(e.txn);
      }
    }
    if (e.type == Event::Type::kRead && Committed(x, e.txn) &&
        e.version != 0) {
      // wr: read another committed txn's version.
      auto w = x.writer_of.find(e.version);
      if (w != x.writer_of.end() && w->second != e.txn &&
          Committed(x, w->second)) {
        ww_wr[w->second].insert(e.txn);
        all_edges[w->second].insert(e.txn);
      }
    }
    if (e.type == Event::Type::kRead && Committed(x, e.txn)) {
      // rw: someone committed-wrote the immediate successor of the version
      // this txn read.
      for (const auto& [version, txn] : x.writer_of) {
        if (txn == e.txn || !Committed(x, txn)) continue;
        const auto& evw = ev[x.write_idx.at(version)];
        if (evw.key == e.key && evw.prev_version == e.version) {
          all_edges[e.txn].insert(txn);
          rw_keys[{e.txn, txn}].insert(e.key);
        }
      }
    }
  }

  // --- iso-g1c: cycle in ww ∪ wr -------------------------------------------
  if (auto cycle = FindCycle(ww_wr); !cycle.empty()) {
    return Anomaly{"iso-g1c", "", "ww/wr dependency cycle: " + TxnList(cycle)};
  }

  // --- iso-write-skew: pure rw 2-cycle over distinct keys ------------------
  for (const auto& [pair, keys1] : rw_keys) {
    auto [t1, t2] = pair;
    if (t1 >= t2) continue;  // examine each unordered pair once
    auto back = rw_keys.find({t2, t1});
    if (back == rw_keys.end()) continue;
    for (const std::string& k1 : keys1) {
      // Exclude keys the reader itself wrote (that shape is lost-update
      // territory, caught above).
      if (x.txns[t1].writes.count(k1)) continue;
      for (const std::string& k2 : back->second) {
        if (k1 == k2) continue;
        if (x.txns[t2].writes.count(k2)) continue;
        std::ostringstream d;
        d << "t" << t1 << " read " << k1 << " / wrote " << k2 << "; t" << t2
          << " read " << k2 << " / wrote " << k1 << "; both committed";
        return Anomaly{"iso-write-skew", k1, d.str()};
      }
    }
  }

  // --- iso-g2: cycle in ww ∪ wr ∪ rw with at least one rw edge -------------
  // Pure ww∪wr cycles were returned as iso-g1c above, so any cycle here
  // necessarily uses an rw (anti-dependency) edge.
  if (auto cycle = FindCycle(all_edges); !cycle.empty()) {
    return Anomaly{"iso-g2",
                   "", "dependency cycle with anti-dependency: " +
                           TxnList(cycle)};
  }

  return std::nullopt;
}

}  // namespace lego::concurrency
