file(REMOVE_RECURSE
  "CMakeFiles/lego_faults.dir/bug_catalog.cc.o"
  "CMakeFiles/lego_faults.dir/bug_catalog.cc.o.d"
  "CMakeFiles/lego_faults.dir/bug_engine.cc.o"
  "CMakeFiles/lego_faults.dir/bug_engine.cc.o.d"
  "liblego_faults.a"
  "liblego_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lego_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
