# Empty dependencies file for lego_faults.
# This may be replaced when dependencies are built.
