file(REMOVE_RECURSE
  "liblego_faults.a"
)
