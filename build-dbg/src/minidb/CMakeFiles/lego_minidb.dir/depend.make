# Empty dependencies file for lego_minidb.
# This may be replaced when dependencies are built.
