file(REMOVE_RECURSE
  "liblego_minidb.a"
)
