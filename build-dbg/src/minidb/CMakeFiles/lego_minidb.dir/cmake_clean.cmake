file(REMOVE_RECURSE
  "CMakeFiles/lego_minidb.dir/btree.cc.o"
  "CMakeFiles/lego_minidb.dir/btree.cc.o.d"
  "CMakeFiles/lego_minidb.dir/catalog.cc.o"
  "CMakeFiles/lego_minidb.dir/catalog.cc.o.d"
  "CMakeFiles/lego_minidb.dir/database.cc.o"
  "CMakeFiles/lego_minidb.dir/database.cc.o.d"
  "CMakeFiles/lego_minidb.dir/eval.cc.o"
  "CMakeFiles/lego_minidb.dir/eval.cc.o.d"
  "CMakeFiles/lego_minidb.dir/executor.cc.o"
  "CMakeFiles/lego_minidb.dir/executor.cc.o.d"
  "CMakeFiles/lego_minidb.dir/heap_table.cc.o"
  "CMakeFiles/lego_minidb.dir/heap_table.cc.o.d"
  "CMakeFiles/lego_minidb.dir/planner.cc.o"
  "CMakeFiles/lego_minidb.dir/planner.cc.o.d"
  "CMakeFiles/lego_minidb.dir/profile.cc.o"
  "CMakeFiles/lego_minidb.dir/profile.cc.o.d"
  "CMakeFiles/lego_minidb.dir/value.cc.o"
  "CMakeFiles/lego_minidb.dir/value.cc.o.d"
  "liblego_minidb.a"
  "liblego_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lego_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
