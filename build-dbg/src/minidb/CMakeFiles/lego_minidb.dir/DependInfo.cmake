
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minidb/btree.cc" "src/minidb/CMakeFiles/lego_minidb.dir/btree.cc.o" "gcc" "src/minidb/CMakeFiles/lego_minidb.dir/btree.cc.o.d"
  "/root/repo/src/minidb/catalog.cc" "src/minidb/CMakeFiles/lego_minidb.dir/catalog.cc.o" "gcc" "src/minidb/CMakeFiles/lego_minidb.dir/catalog.cc.o.d"
  "/root/repo/src/minidb/database.cc" "src/minidb/CMakeFiles/lego_minidb.dir/database.cc.o" "gcc" "src/minidb/CMakeFiles/lego_minidb.dir/database.cc.o.d"
  "/root/repo/src/minidb/eval.cc" "src/minidb/CMakeFiles/lego_minidb.dir/eval.cc.o" "gcc" "src/minidb/CMakeFiles/lego_minidb.dir/eval.cc.o.d"
  "/root/repo/src/minidb/executor.cc" "src/minidb/CMakeFiles/lego_minidb.dir/executor.cc.o" "gcc" "src/minidb/CMakeFiles/lego_minidb.dir/executor.cc.o.d"
  "/root/repo/src/minidb/heap_table.cc" "src/minidb/CMakeFiles/lego_minidb.dir/heap_table.cc.o" "gcc" "src/minidb/CMakeFiles/lego_minidb.dir/heap_table.cc.o.d"
  "/root/repo/src/minidb/planner.cc" "src/minidb/CMakeFiles/lego_minidb.dir/planner.cc.o" "gcc" "src/minidb/CMakeFiles/lego_minidb.dir/planner.cc.o.d"
  "/root/repo/src/minidb/profile.cc" "src/minidb/CMakeFiles/lego_minidb.dir/profile.cc.o" "gcc" "src/minidb/CMakeFiles/lego_minidb.dir/profile.cc.o.d"
  "/root/repo/src/minidb/value.cc" "src/minidb/CMakeFiles/lego_minidb.dir/value.cc.o" "gcc" "src/minidb/CMakeFiles/lego_minidb.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-dbg/src/sql/CMakeFiles/lego_sql.dir/DependInfo.cmake"
  "/root/repo/build-dbg/src/coverage/CMakeFiles/lego_coverage.dir/DependInfo.cmake"
  "/root/repo/build-dbg/src/util/CMakeFiles/lego_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
