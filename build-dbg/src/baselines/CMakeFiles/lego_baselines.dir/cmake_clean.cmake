file(REMOVE_RECURSE
  "CMakeFiles/lego_baselines.dir/sqlancer_like.cc.o"
  "CMakeFiles/lego_baselines.dir/sqlancer_like.cc.o.d"
  "CMakeFiles/lego_baselines.dir/sqlsmith_like.cc.o"
  "CMakeFiles/lego_baselines.dir/sqlsmith_like.cc.o.d"
  "CMakeFiles/lego_baselines.dir/squirrel_like.cc.o"
  "CMakeFiles/lego_baselines.dir/squirrel_like.cc.o.d"
  "liblego_baselines.a"
  "liblego_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lego_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
