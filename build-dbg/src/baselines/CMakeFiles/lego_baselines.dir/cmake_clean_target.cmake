file(REMOVE_RECURSE
  "liblego_baselines.a"
)
