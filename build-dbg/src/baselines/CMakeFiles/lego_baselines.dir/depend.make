# Empty dependencies file for lego_baselines.
# This may be replaced when dependencies are built.
