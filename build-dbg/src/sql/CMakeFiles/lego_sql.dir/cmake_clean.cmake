file(REMOVE_RECURSE
  "CMakeFiles/lego_sql.dir/ast.cc.o"
  "CMakeFiles/lego_sql.dir/ast.cc.o.d"
  "CMakeFiles/lego_sql.dir/ast_walk.cc.o"
  "CMakeFiles/lego_sql.dir/ast_walk.cc.o.d"
  "CMakeFiles/lego_sql.dir/lexer.cc.o"
  "CMakeFiles/lego_sql.dir/lexer.cc.o.d"
  "CMakeFiles/lego_sql.dir/parser.cc.o"
  "CMakeFiles/lego_sql.dir/parser.cc.o.d"
  "CMakeFiles/lego_sql.dir/statement_type.cc.o"
  "CMakeFiles/lego_sql.dir/statement_type.cc.o.d"
  "liblego_sql.a"
  "liblego_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lego_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
