# Empty dependencies file for lego_sql.
# This may be replaced when dependencies are built.
