file(REMOVE_RECURSE
  "liblego_sql.a"
)
