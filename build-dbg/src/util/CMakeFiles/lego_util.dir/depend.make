# Empty dependencies file for lego_util.
# This may be replaced when dependencies are built.
