file(REMOVE_RECURSE
  "liblego_util.a"
)
