file(REMOVE_RECURSE
  "CMakeFiles/lego_util.dir/random.cc.o"
  "CMakeFiles/lego_util.dir/random.cc.o.d"
  "CMakeFiles/lego_util.dir/status.cc.o"
  "CMakeFiles/lego_util.dir/status.cc.o.d"
  "CMakeFiles/lego_util.dir/string_util.cc.o"
  "CMakeFiles/lego_util.dir/string_util.cc.o.d"
  "liblego_util.a"
  "liblego_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lego_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
