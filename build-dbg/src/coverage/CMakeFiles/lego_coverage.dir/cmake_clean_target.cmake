file(REMOVE_RECURSE
  "liblego_coverage.a"
)
