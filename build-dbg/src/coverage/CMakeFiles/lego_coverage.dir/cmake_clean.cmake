file(REMOVE_RECURSE
  "CMakeFiles/lego_coverage.dir/coverage.cc.o"
  "CMakeFiles/lego_coverage.dir/coverage.cc.o.d"
  "liblego_coverage.a"
  "liblego_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lego_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
