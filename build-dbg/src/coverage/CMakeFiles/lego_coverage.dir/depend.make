# Empty dependencies file for lego_coverage.
# This may be replaced when dependencies are built.
