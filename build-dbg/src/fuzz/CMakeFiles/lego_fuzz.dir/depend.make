# Empty dependencies file for lego_fuzz.
# This may be replaced when dependencies are built.
