file(REMOVE_RECURSE
  "liblego_fuzz.a"
)
