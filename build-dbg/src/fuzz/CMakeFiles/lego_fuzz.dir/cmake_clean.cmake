file(REMOVE_RECURSE
  "CMakeFiles/lego_fuzz.dir/campaign.cc.o"
  "CMakeFiles/lego_fuzz.dir/campaign.cc.o.d"
  "CMakeFiles/lego_fuzz.dir/corpus.cc.o"
  "CMakeFiles/lego_fuzz.dir/corpus.cc.o.d"
  "CMakeFiles/lego_fuzz.dir/harness.cc.o"
  "CMakeFiles/lego_fuzz.dir/harness.cc.o.d"
  "CMakeFiles/lego_fuzz.dir/seeds.cc.o"
  "CMakeFiles/lego_fuzz.dir/seeds.cc.o.d"
  "CMakeFiles/lego_fuzz.dir/testcase.cc.o"
  "CMakeFiles/lego_fuzz.dir/testcase.cc.o.d"
  "liblego_fuzz.a"
  "liblego_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lego_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
