file(REMOVE_RECURSE
  "CMakeFiles/lego_core.dir/affinity.cc.o"
  "CMakeFiles/lego_core.dir/affinity.cc.o.d"
  "CMakeFiles/lego_core.dir/ast_library.cc.o"
  "CMakeFiles/lego_core.dir/ast_library.cc.o.d"
  "CMakeFiles/lego_core.dir/generator.cc.o"
  "CMakeFiles/lego_core.dir/generator.cc.o.d"
  "CMakeFiles/lego_core.dir/instantiator.cc.o"
  "CMakeFiles/lego_core.dir/instantiator.cc.o.d"
  "CMakeFiles/lego_core.dir/lego_fuzzer.cc.o"
  "CMakeFiles/lego_core.dir/lego_fuzzer.cc.o.d"
  "CMakeFiles/lego_core.dir/mutation.cc.o"
  "CMakeFiles/lego_core.dir/mutation.cc.o.d"
  "CMakeFiles/lego_core.dir/synthesis.cc.o"
  "CMakeFiles/lego_core.dir/synthesis.cc.o.d"
  "liblego_core.a"
  "liblego_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lego_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
