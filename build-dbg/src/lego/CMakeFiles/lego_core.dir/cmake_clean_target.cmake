file(REMOVE_RECURSE
  "liblego_core.a"
)
