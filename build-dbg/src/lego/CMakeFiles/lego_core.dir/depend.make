# Empty dependencies file for lego_core.
# This may be replaced when dependencies are built.
