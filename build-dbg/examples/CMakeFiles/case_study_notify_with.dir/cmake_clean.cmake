file(REMOVE_RECURSE
  "CMakeFiles/case_study_notify_with.dir/case_study_notify_with.cc.o"
  "CMakeFiles/case_study_notify_with.dir/case_study_notify_with.cc.o.d"
  "case_study_notify_with"
  "case_study_notify_with.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_notify_with.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
