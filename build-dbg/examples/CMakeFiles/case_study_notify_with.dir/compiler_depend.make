# Empty compiler generated dependencies file for case_study_notify_with.
# This may be replaced when dependencies are built.
