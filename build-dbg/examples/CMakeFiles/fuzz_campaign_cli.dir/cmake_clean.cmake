file(REMOVE_RECURSE
  "CMakeFiles/fuzz_campaign_cli.dir/fuzz_campaign_cli.cc.o"
  "CMakeFiles/fuzz_campaign_cli.dir/fuzz_campaign_cli.cc.o.d"
  "fuzz_campaign_cli"
  "fuzz_campaign_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_campaign_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
