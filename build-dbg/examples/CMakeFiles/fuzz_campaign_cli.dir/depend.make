# Empty dependencies file for fuzz_campaign_cli.
# This may be replaced when dependencies are built.
