# Empty dependencies file for sequence_synthesis_demo.
# This may be replaced when dependencies are built.
