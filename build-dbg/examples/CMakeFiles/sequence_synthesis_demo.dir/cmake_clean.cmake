file(REMOVE_RECURSE
  "CMakeFiles/sequence_synthesis_demo.dir/sequence_synthesis_demo.cc.o"
  "CMakeFiles/sequence_synthesis_demo.dir/sequence_synthesis_demo.cc.o.d"
  "sequence_synthesis_demo"
  "sequence_synthesis_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_synthesis_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
