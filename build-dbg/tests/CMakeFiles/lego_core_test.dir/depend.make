# Empty dependencies file for lego_core_test.
# This may be replaced when dependencies are built.
