file(REMOVE_RECURSE
  "CMakeFiles/lego_core_test.dir/lego_core_test.cc.o"
  "CMakeFiles/lego_core_test.dir/lego_core_test.cc.o.d"
  "lego_core_test"
  "lego_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lego_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
