# Empty compiler generated dependencies file for parser_roundtrip_test.
# This may be replaced when dependencies are built.
