file(REMOVE_RECURSE
  "CMakeFiles/parser_roundtrip_test.dir/parser_roundtrip_test.cc.o"
  "CMakeFiles/parser_roundtrip_test.dir/parser_roundtrip_test.cc.o.d"
  "parser_roundtrip_test"
  "parser_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
