file(REMOVE_RECURSE
  "CMakeFiles/campaign_parallel_test.dir/campaign_parallel_test.cc.o"
  "CMakeFiles/campaign_parallel_test.dir/campaign_parallel_test.cc.o.d"
  "campaign_parallel_test"
  "campaign_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
