# Empty dependencies file for campaign_parallel_test.
# This may be replaced when dependencies are built.
