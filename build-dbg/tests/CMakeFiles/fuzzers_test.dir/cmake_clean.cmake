file(REMOVE_RECURSE
  "CMakeFiles/fuzzers_test.dir/fuzzers_test.cc.o"
  "CMakeFiles/fuzzers_test.dir/fuzzers_test.cc.o.d"
  "fuzzers_test"
  "fuzzers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
