# Empty dependencies file for fuzzers_test.
# This may be replaced when dependencies are built.
