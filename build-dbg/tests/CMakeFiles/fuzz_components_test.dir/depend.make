# Empty dependencies file for fuzz_components_test.
# This may be replaced when dependencies are built.
