file(REMOVE_RECURSE
  "CMakeFiles/fuzz_components_test.dir/fuzz_components_test.cc.o"
  "CMakeFiles/fuzz_components_test.dir/fuzz_components_test.cc.o.d"
  "fuzz_components_test"
  "fuzz_components_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
