# Empty compiler generated dependencies file for micro_parser.
# This may be replaced when dependencies are built.
