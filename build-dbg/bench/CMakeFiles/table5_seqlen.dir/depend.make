# Empty dependencies file for table5_seqlen.
# This may be replaced when dependencies are built.
