file(REMOVE_RECURSE
  "CMakeFiles/table5_seqlen.dir/table5_seqlen.cc.o"
  "CMakeFiles/table5_seqlen.dir/table5_seqlen.cc.o.d"
  "table5_seqlen"
  "table5_seqlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_seqlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
