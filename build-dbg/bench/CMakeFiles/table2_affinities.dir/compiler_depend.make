# Empty compiler generated dependencies file for table2_affinities.
# This may be replaced when dependencies are built.
