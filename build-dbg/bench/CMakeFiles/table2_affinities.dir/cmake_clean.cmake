file(REMOVE_RECURSE
  "CMakeFiles/table2_affinities.dir/table2_affinities.cc.o"
  "CMakeFiles/table2_affinities.dir/table2_affinities.cc.o.d"
  "table2_affinities"
  "table2_affinities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_affinities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
