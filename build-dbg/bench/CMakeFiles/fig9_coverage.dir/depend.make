# Empty dependencies file for fig9_coverage.
# This may be replaced when dependencies are built.
