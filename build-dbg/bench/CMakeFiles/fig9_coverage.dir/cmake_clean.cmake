file(REMOVE_RECURSE
  "CMakeFiles/fig9_coverage.dir/fig9_coverage.cc.o"
  "CMakeFiles/fig9_coverage.dir/fig9_coverage.cc.o.d"
  "fig9_coverage"
  "fig9_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
