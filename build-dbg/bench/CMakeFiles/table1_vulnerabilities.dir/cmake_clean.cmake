file(REMOVE_RECURSE
  "CMakeFiles/table1_vulnerabilities.dir/table1_vulnerabilities.cc.o"
  "CMakeFiles/table1_vulnerabilities.dir/table1_vulnerabilities.cc.o.d"
  "table1_vulnerabilities"
  "table1_vulnerabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_vulnerabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
