# Empty dependencies file for table1_vulnerabilities.
# This may be replaced when dependencies are built.
