file(REMOVE_RECURSE
  "CMakeFiles/micro_synthesis.dir/micro_synthesis.cc.o"
  "CMakeFiles/micro_synthesis.dir/micro_synthesis.cc.o.d"
  "micro_synthesis"
  "micro_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
