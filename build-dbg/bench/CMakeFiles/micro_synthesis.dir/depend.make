# Empty dependencies file for micro_synthesis.
# This may be replaced when dependencies are built.
