// Execution-backend overhead: execs/sec of the in-process engine vs the
// forked crash-isolated child, at 1 and 4 workers, same budget. The gap is
// the price of the pipe round-trip + child-side re-parse per statement —
// the figure that tells you what crash isolation costs on this machine.
//
//   ./bench/micro_backend

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

// Smaller than micro_parallel's budget: the forked backend runs every
// statement through a pipe round-trip, so a serial campaign is several
// times slower per execution.
constexpr int kBudget = 2000;

void RunBackendCampaign(benchmark::State& state,
                        lego::fuzz::BackendKind kind) {
  using namespace lego;  // NOLINT(build/namespaces)
  const int workers = static_cast<int>(state.range(0));
  const auto& profile = minidb::DialectProfile::PgLite();
  fuzz::BackendOptions backend;
  backend.kind = kind;
  for (auto _ : state) {
    auto fuzzer = bench::MakeFuzzer("lego", profile, /*seed=*/1);
    fuzz::ExecutionHarness harness(profile, backend);
    fuzz::CampaignOptions options;
    options.max_executions = kBudget;
    options.snapshot_every = kBudget;  // curve bookkeeping off the hot path
    options.num_workers = workers;
    fuzz::CampaignResult result =
        fuzz::RunCampaign(fuzzer.get(), &harness, options);
    benchmark::DoNotOptimize(result.edges);
    if (result.executions != kBudget) {
      state.SkipWithError("campaign did not exhaust its budget");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * kBudget);
  state.counters["workers"] = workers;
}

void BM_InProcessBackend(benchmark::State& state) {
  RunBackendCampaign(state, lego::fuzz::BackendKind::kInProcess);
}

void BM_ForkedBackend(benchmark::State& state) {
  RunBackendCampaign(state, lego::fuzz::BackendKind::kForked);
}

}  // namespace

BENCHMARK(BM_InProcessBackend)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ForkedBackend)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
