// Microbenchmarks for LEGO's core algorithms plus the ablation the design
// calls out: progressive synthesis (Algorithm 3 with the Prefix Sequence
// index) versus naive full re-enumeration on every new affinity, and
// instantiation with dependency refill (reporting the semantic-validity rate
// it buys).

#include <benchmark/benchmark.h>

#include "fuzz/seeds.h"
#include "lego/affinity.h"
#include "lego/ast_library.h"
#include "lego/instantiator.h"
#include "lego/synthesis.h"
#include "minidb/database.h"

namespace {

using lego::Rng;
using lego::core::SequenceSynthesizer;
using lego::core::TypeAffinityMap;
using lego::sql::StatementType;

std::vector<std::pair<StatementType, StatementType>> RandomAffinities(
    int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<StatementType, StatementType>> out;
  while (static_cast<int>(out.size()) < count) {
    auto t1 = static_cast<StatementType>(
        rng.NextBelow(lego::sql::kNumStatementTypes));
    auto t2 = static_cast<StatementType>(
        rng.NextBelow(lego::sql::kNumStatementTypes));
    if (t1 == t2) continue;
    out.emplace_back(t1, t2);
  }
  return out;
}

void BM_AffinityAnalyze(benchmark::State& state) {
  Rng rng(5);
  std::vector<StatementType> sequence;
  for (int i = 0; i < 64; ++i) {
    sequence.push_back(static_cast<StatementType>(
        rng.NextBelow(lego::sql::kNumStatementTypes)));
  }
  for (auto _ : state) {
    TypeAffinityMap map;
    auto found = map.Analyze(sequence);
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_AffinityAnalyze);

// Algorithm 3: only sequences containing the new affinity are enumerated.
void BM_ProgressiveSynthesis(benchmark::State& state) {
  auto affinities = RandomAffinities(static_cast<int>(state.range(0)), 9);
  for (auto _ : state) {
    TypeAffinityMap map;
    SequenceSynthesizer synthesizer(/*max_len=*/4);
    for (const auto& [t1, t2] : affinities) {
      synthesizer.AddStartType(t1);
      synthesizer.AddStartType(t2);
    }
    size_t produced = 0;
    for (const auto& [t1, t2] : affinities) {
      if (!map.Add(t1, t2)) continue;
      produced += synthesizer.OnNewAffinity(t1, t2, map).size();
    }
    benchmark::DoNotOptimize(produced);
  }
}
BENCHMARK(BM_ProgressiveSynthesis)->Arg(16)->Arg(48);

// Ablation: rebuild every sequence from scratch after each new affinity
// (what the Prefix Sequence index avoids). Same output set, much more work.
void BM_FullReenumeration(benchmark::State& state) {
  auto affinities = RandomAffinities(static_cast<int>(state.range(0)), 9);
  for (auto _ : state) {
    TypeAffinityMap map;
    size_t produced = 0;
    for (const auto& [t1, t2] : affinities) {
      if (!map.Add(t1, t2)) continue;
      // Re-enumerate everything reachable with the full map each time.
      SequenceSynthesizer fresh(/*max_len=*/4);
      for (const auto& [a, b] : affinities) {
        fresh.AddStartType(a);
        fresh.AddStartType(b);
      }
      TypeAffinityMap rebuild;
      for (const auto& [a, b] : map.All()) {
        if (rebuild.Add(a, b)) {
          produced += fresh.OnNewAffinity(a, b, rebuild).size();
        }
      }
    }
    benchmark::DoNotOptimize(produced);
  }
}
BENCHMARK(BM_FullReenumeration)->Arg(16)->Arg(48);

// Instantiation throughput + semantic-validity rate of the dependency
// refill (executed against a fresh database; errors counted).
void BM_InstantiateAndExecute(benchmark::State& state) {
  Rng rng(21);
  lego::core::AstLibrary library;
  for (const auto& script : lego::fuzz::SeedScriptsFor("pglite")) {
    auto tc = lego::fuzz::TestCase::FromSql(script);
    if (tc.ok()) library.AddTestCase(*tc);
  }
  lego::core::Instantiator instantiator(
      &lego::minidb::DialectProfile::PgLite(), &library, &rng);
  lego::minidb::Database db(&lego::minidb::DialectProfile::PgLite());

  const std::vector<StatementType> sequence = {
      StatementType::kCreateTable, StatementType::kInsert,
      StatementType::kCreateIndex, StatementType::kUpdate,
      StatementType::kSelect};

  int64_t statements = 0;
  int64_t errors = 0;
  for (auto _ : state) {
    auto tc = instantiator.Instantiate(sequence);
    db.ResetAll();
    auto run = db.ExecuteScript(tc.ToSql());
    if (run.ok()) {
      statements += run->executed + run->errors;
      errors += run->errors;
    }
    benchmark::DoNotOptimize(tc);
  }
  state.SetItemsProcessed(state.iterations());
  if (statements > 0) {
    state.counters["semantic_validity"] =
        1.0 - static_cast<double>(errors) / static_cast<double>(statements);
  }
}
BENCHMARK(BM_InstantiateAndExecute);

}  // namespace

BENCHMARK_MAIN();
