// Microbenchmarks for the minidb substrate: storage, index, executor, and
// the harness hot loop (executions/second is the fuzzing budget currency).

#include <benchmark/benchmark.h>

#include "fuzz/harness.h"
#include "minidb/btree.h"
#include "minidb/database.h"
#include "sql/parser.h"

namespace {

using lego::minidb::BTreeIndex;
using lego::minidb::Database;
using lego::minidb::RowId;
using lego::minidb::Value;

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    BTreeIndex tree;
    for (int64_t i = 0; i < state.range(0); ++i) {
      tree.Insert(Value::Int(i * 2654435761 % 100000),
                  RowId{0, static_cast<uint32_t>(i)});
    }
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreeFind(benchmark::State& state) {
  BTreeIndex tree;
  for (int64_t i = 0; i < state.range(0); ++i) {
    tree.Insert(Value::Int(i), RowId{0, static_cast<uint32_t>(i)});
  }
  int64_t probe = 0;
  for (auto _ : state) {
    auto rids = tree.Find(Value::Int(probe++ % state.range(0)));
    benchmark::DoNotOptimize(rids);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeFind)->Arg(10000);

void BM_InsertStatement(benchmark::State& state) {
  Database db;
  (void)db.ExecuteScript("CREATE TABLE t (a INT, b TEXT);");
  auto insert =
      lego::sql::Parser::ParseStatement("INSERT INTO t VALUES (1, 'x')");
  for (auto _ : state) {
    auto result = db.Execute(**insert);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertStatement);

void BM_SelectSeqScan(benchmark::State& state) {
  Database db;
  (void)db.ExecuteScript("CREATE TABLE t (a INT, b INT);");
  for (int i = 0; i < state.range(0); ++i) {
    (void)db.ExecuteScript("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 0);");
  }
  auto select =
      lego::sql::Parser::ParseStatement("SELECT a FROM t WHERE b = 1");
  for (auto _ : state) {
    auto result = db.Execute(**select);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelectSeqScan)->Arg(256);

void BM_SelectIndexScan(benchmark::State& state) {
  Database db;
  (void)db.ExecuteScript(
      "CREATE TABLE t (a INT, b INT); CREATE INDEX ta ON t (a);");
  for (int i = 0; i < state.range(0); ++i) {
    (void)db.ExecuteScript("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 0);");
  }
  auto select =
      lego::sql::Parser::ParseStatement("SELECT b FROM t WHERE a = 77");
  for (auto _ : state) {
    auto result = db.Execute(**select);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectIndexScan)->Arg(256);

void BM_TransactionSnapshotRoundtrip(benchmark::State& state) {
  Database db;
  (void)db.ExecuteScript("CREATE TABLE t (a INT);");
  for (int i = 0; i < 64; ++i) {
    (void)db.ExecuteScript("INSERT INTO t VALUES (1);");
  }
  for (auto _ : state) {
    auto result = db.ExecuteScript(
        "BEGIN; INSERT INTO t VALUES (2); ROLLBACK;");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransactionSnapshotRoundtrip);

void BM_HarnessRunTestCase(benchmark::State& state) {
  lego::fuzz::ExecutionHarness harness(
      lego::minidb::DialectProfile::PgLite());
  auto tc = lego::fuzz::TestCase::FromSql(
      "CREATE TABLE t1 (v1 INT, v2 INT);"
      "INSERT INTO t1 VALUES (1, 1);"
      "INSERT INTO t1 VALUES (2, 1);"
      "SELECT * FROM t1 ORDER BY v1;"
      "SELECT v2 FROM t1 WHERE v1 = 1;");
  for (auto _ : state) {
    auto result = harness.Run(*tc);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["execs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HarnessRunTestCase);

}  // namespace

BENCHMARK_MAIN();
