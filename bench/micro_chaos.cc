// Chaos/governance overhead pricing.
//
// 1. Failpoint check: the cost of one LEGO_FAILPOINT site when the registry
//    is disarmed (one relaxed atomic load + branch — must be nanoseconds;
//    the acceptance bar is <1% on any hot path) vs armed-but-never-firing
//    (registry scan + seeded draw — still cheap, only paid in chaos runs).
// 2. Campaign with all failpoints armed at probability 0 vs disarmed: the
//    end-to-end cost of *carrying* the chaos layer through a real workload.
// 3. Governed vs ungoverned forked campaigns at 1 and 4 workers: what the
//    per-child rlimit caps (setrlimit at spawn) cost in practice.
//
//   ./bench/micro_chaos

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chaos/failpoint.h"

namespace {

void BM_FailpointCheck_Disabled(benchmark::State& state) {
  lego::chaos::DisarmAll();
  for (auto _ : state) {
    benchmark::DoNotOptimize(LEGO_FAILPOINT("minidb.insert_alloc"));
  }
}

void BM_FailpointCheck_ArmedNeverFiring(benchmark::State& state) {
  lego::chaos::ArmAll(/*seed=*/1, /*probability=*/0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LEGO_FAILPOINT("minidb.insert_alloc"));
  }
  lego::chaos::DisarmAll();
}

constexpr int kBudget = 2000;

void RunChaosCampaign(benchmark::State& state, bool armed) {
  using namespace lego;  // NOLINT(build/namespaces)
  const auto& profile = minidb::DialectProfile::PgLite();
  if (armed) {
    chaos::ArmAll(/*seed=*/1, /*probability=*/0.0);  // full cost, no faults
  } else {
    chaos::DisarmAll();
  }
  for (auto _ : state) {
    auto fuzzer = bench::MakeFuzzer("lego", profile, /*seed=*/1);
    fuzz::ExecutionHarness harness(profile);
    fuzz::CampaignOptions options;
    options.max_executions = kBudget;
    options.snapshot_every = kBudget;
    fuzz::CampaignResult result =
        fuzz::RunCampaign(fuzzer.get(), &harness, options);
    benchmark::DoNotOptimize(result.edges);
    if (result.executions != kBudget) {
      state.SkipWithError("campaign did not exhaust its budget");
      break;
    }
  }
  chaos::DisarmAll();
  state.SetItemsProcessed(state.iterations() * kBudget);
}

void BM_Campaign_ChaosDisarmed(benchmark::State& state) {
  RunChaosCampaign(state, /*armed=*/false);
}

void BM_Campaign_ChaosArmedNeverFiring(benchmark::State& state) {
  RunChaosCampaign(state, /*armed=*/true);
}

void RunGovernedCampaign(benchmark::State& state, bool governed) {
  using namespace lego;  // NOLINT(build/namespaces)
  const int workers = static_cast<int>(state.range(0));
  const auto& profile = minidb::DialectProfile::PgLite();
  fuzz::BackendOptions backend;
  backend.kind = fuzz::BackendKind::kForked;
  if (governed) {
    backend.max_child_mem_mb = 512;
    backend.max_child_cpu_s = 60;
    backend.max_child_fsize_mb = 64;
  }
  for (auto _ : state) {
    auto fuzzer = bench::MakeFuzzer("lego", profile, /*seed=*/1);
    fuzz::ExecutionHarness harness(profile, backend);
    fuzz::CampaignOptions options;
    options.max_executions = kBudget;
    options.snapshot_every = kBudget;
    options.num_workers = workers;
    fuzz::CampaignResult result =
        fuzz::RunCampaign(fuzzer.get(), &harness, options);
    benchmark::DoNotOptimize(result.edges);
    if (result.executions != kBudget) {
      state.SkipWithError("campaign did not exhaust its budget");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * kBudget);
  state.counters["workers"] = workers;
}

void BM_ForkedCampaign_Ungoverned(benchmark::State& state) {
  RunGovernedCampaign(state, /*governed=*/false);
}

void BM_ForkedCampaign_Governed(benchmark::State& state) {
  RunGovernedCampaign(state, /*governed=*/true);
}

}  // namespace

BENCHMARK(BM_FailpointCheck_Disabled);
BENCHMARK(BM_FailpointCheck_ArmedNeverFiring);
BENCHMARK(BM_Campaign_ChaosDisarmed)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_Campaign_ChaosArmedNeverFiring)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ForkedCampaign_Ungoverned)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ForkedCampaign_Governed)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
