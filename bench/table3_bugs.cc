// Reproduces paper Table III: the number of bugs each fuzzer triggers within
// a fixed budget (the paper's 24-hour runs). SQLsmith only supports
// PostgreSQL syntax, so — as in the paper — it is only run there.
//
// Paper values:        SQLancer  SQLsmith  SQUIRREL  LEGO
//   PostgreSQL             0         0         0        2
//   MySQL                  0         -         3       11
//   MariaDB                0         -         8       32
//   Comdb2                 0         -         0        7
//   Total                  0         0        11       52

#include <vector>

#include "bench_util.h"
#include "triage/triage.h"

int main() {
  using namespace lego;  // NOLINT(build/namespaces)

  const int kBudget = 20000;
  const std::vector<std::string> fuzzers = {"sqlancer", "sqlsmith",
                                            "squirrel", "lego"};

  std::printf(
      "Table III — number of bugs triggered within a %d-execution budget\n"
      "(the scaled stand-in for the paper's 24-hour runs)\n\n",
      kBudget);
  std::printf("%-22s %10s %10s %10s %10s\n", "DBMS", "SQLancer", "SQLsmith",
              "SQUIRREL", "LEGO");
  bench::PrintRule(68);

  std::vector<int> totals(fuzzers.size(), 0);
  std::vector<bool> ran(fuzzers.size(), false);
  for (const auto* profile : minidb::DialectProfile::All()) {
    std::printf("%-22s", (std::string(bench::PaperNameOf(profile->name)) +
                          " (" + profile->name + ")")
                             .c_str());
    for (size_t i = 0; i < fuzzers.size(); ++i) {
      if (fuzzers[i] == "sqlsmith" && profile->name != "pglite") {
        std::printf(" %10s", "-");
        continue;
      }
      fuzz::CampaignResult result =
          bench::RunOne(fuzzers[i], *profile, kBudget, /*seed=*/31);
      totals[i] += static_cast<int>(result.bug_ids.size());
      ran[i] = true;
      std::printf(" %10zu", result.bug_ids.size());
    }
    std::printf("\n");
  }
  bench::PrintRule(68);
  std::printf("%-22s", "Total");
  for (size_t i = 0; i < totals.size(); ++i) {
    std::printf(" %10d", totals[i]);
  }
  std::printf("\n%-22s", "Increment (LEGO - x)");
  for (int n : totals) std::printf(" %10d", totals.back() - n);
  std::printf("\n\nPaper totals: SQLancer 0, SQLsmith 0, SQUIRREL 11, "
              "LEGO 52\n");

  // Triage view: each LEGO campaign's captured crashes ddmin-reduced and
  // deduplicated by (bug id, minimized type fingerprint). A 4-worker
  // campaign explores a different trajectory than a 1-worker one (worker w
  // is seeded base_seed + w), so the two may legitimately report different
  // bug sets; what must hold is rerun stability — repeating either
  // configuration with the same base seed triages to the identical
  // unique-bug count. Each cell below is run twice and flagged UNSTABLE on
  // any disagreement.
  std::printf("\nTriaged unique bugs (lego, ddmin-reduced repros; every cell"
              " rerun twice)\n");
  std::printf("%-22s %10s %10s %12s %12s\n", "DBMS", "1 worker", "4 workers",
              "repro stmts", "reduction");
  bench::PrintRule(72);
  bool stable = true;
  for (const auto* profile : minidb::DialectProfile::All()) {
    size_t unique[2] = {0, 0};
    bool cell_stable[2] = {true, true};
    int repro_stmts = 0;
    double shrink = 0.0;
    const int worker_counts[2] = {1, 4};
    for (int wi = 0; wi < 2; ++wi) {
      for (int rerun = 0; rerun < 2; ++rerun) {
        fuzz::CampaignResult result =
            bench::RunOne("lego", *profile, kBudget, /*seed=*/31,
                          /*stop_when_all_found=*/false, worker_counts[wi]);
        triage::TriageOptions triage_options;
        triage::TriageReport report =
            triage::TriageCampaign(result, *profile, "", triage_options);
        if (rerun == 0) {
          unique[wi] = report.bugs.size();
        } else if (report.bugs.size() != unique[wi]) {
          cell_stable[wi] = false;
          stable = false;
        }
        if (wi == 0 && rerun == 0) {
          int original = 0;
          for (const triage::TriagedBug& bug : report.bugs) {
            repro_stmts += bug.reduced_statements;
            original += bug.original_statements;
          }
          if (repro_stmts > 0) {
            shrink = static_cast<double>(original) / repro_stmts;
          }
        }
      }
    }
    std::printf("%-22s %10zu %10zu %12d %11.1fx%s%s\n",
                (std::string(bench::PaperNameOf(profile->name)) + " (" +
                 profile->name + ")")
                    .c_str(),
                unique[0], unique[1], repro_stmts, shrink,
                cell_stable[0] ? "" : "  UNSTABLE(1w)",
                cell_stable[1] ? "" : "  UNSTABLE(4w)");
  }
  std::printf("\nRerun stability: %s\n", stable ? "OK" : "FAILED");
  return stable ? 0 : 1;
}
