// Reproduces paper Table III: the number of bugs each fuzzer triggers within
// a fixed budget (the paper's 24-hour runs). SQLsmith only supports
// PostgreSQL syntax, so — as in the paper — it is only run there.
//
// Paper values:        SQLancer  SQLsmith  SQUIRREL  LEGO
//   PostgreSQL             0         0         0        2
//   MySQL                  0         -         3       11
//   MariaDB                0         -         8       32
//   Comdb2                 0         -         0        7
//   Total                  0         0        11       52

#include <vector>

#include "bench_util.h"

int main() {
  using namespace lego;  // NOLINT(build/namespaces)

  const int kBudget = 20000;
  const std::vector<std::string> fuzzers = {"sqlancer", "sqlsmith",
                                            "squirrel", "lego"};

  std::printf(
      "Table III — number of bugs triggered within a %d-execution budget\n"
      "(the scaled stand-in for the paper's 24-hour runs)\n\n",
      kBudget);
  std::printf("%-22s %10s %10s %10s %10s\n", "DBMS", "SQLancer", "SQLsmith",
              "SQUIRREL", "LEGO");
  bench::PrintRule(68);

  std::vector<int> totals(fuzzers.size(), 0);
  std::vector<bool> ran(fuzzers.size(), false);
  for (const auto* profile : minidb::DialectProfile::All()) {
    std::printf("%-22s", (std::string(bench::PaperNameOf(profile->name)) +
                          " (" + profile->name + ")")
                             .c_str());
    for (size_t i = 0; i < fuzzers.size(); ++i) {
      if (fuzzers[i] == "sqlsmith" && profile->name != "pglite") {
        std::printf(" %10s", "-");
        continue;
      }
      fuzz::CampaignResult result =
          bench::RunOne(fuzzers[i], *profile, kBudget, /*seed=*/31);
      totals[i] += static_cast<int>(result.bug_ids.size());
      ran[i] = true;
      std::printf(" %10zu", result.bug_ids.size());
    }
    std::printf("\n");
  }
  bench::PrintRule(68);
  std::printf("%-22s", "Total");
  for (size_t i = 0; i < totals.size(); ++i) {
    std::printf(" %10d", totals[i]);
  }
  std::printf("\n%-22s", "Increment (LEGO - x)");
  for (int n : totals) std::printf(" %10d", totals.back() - n);
  std::printf("\n\nPaper totals: SQLancer 0, SQLsmith 0, SQUIRREL 11, "
              "LEGO 52\n");
  return 0;
}
