// Reproduces paper Fig. 9: branches covered by LEGO, SQUIRREL, SQLancer, and
// SQLsmith on the four DBMS profiles over one campaign, printed as the bar
// values plus the coverage-over-time series for each fuzzer.
//
// Paper result: LEGO covers 198%, 44%, and 120% more branches than SQLancer,
// SQLsmith, and SQUIRREL on average.

#include <vector>

#include "bench_util.h"

int main() {
  using namespace lego;  // NOLINT(build/namespaces)

  const int kBudget = 20000;
  const std::vector<std::string> fuzzers = {"lego", "squirrel", "sqlancer",
                                            "sqlsmith"};

  std::printf(
      "Figure 9 — branches covered on 4 DBMSs (%d-execution campaigns)\n\n",
      kBudget);

  // Average improvement accumulators: LEGO vs each baseline.
  std::vector<double> ratio_sum(fuzzers.size(), 0.0);
  std::vector<int> ratio_n(fuzzers.size(), 0);

  for (const auto* profile : minidb::DialectProfile::All()) {
    std::printf("%s (%s)\n", bench::PaperNameOf(profile->name),
                profile->name.c_str());
    bench::PrintRule(70);
    size_t lego_edges = 0;
    for (size_t i = 0; i < fuzzers.size(); ++i) {
      if (fuzzers[i] == "sqlsmith" && profile->name != "pglite") {
        std::printf("  %-10s %8s\n", "sqlsmith", "-");
        continue;
      }
      fuzz::CampaignResult result =
          bench::RunOne(fuzzers[i], *profile, kBudget, /*seed=*/37);
      if (i == 0) lego_edges = result.edges;
      std::printf("  %-10s %8zu   curve:", fuzzers[i].c_str(), result.edges);
      for (const auto& [execs, edges] : result.coverage_curve) {
        std::printf(" %zu", edges);
      }
      std::printf("\n");
      if (i > 0 && result.edges > 0) {
        ratio_sum[i] += 100.0 * (static_cast<double>(lego_edges) -
                                 static_cast<double>(result.edges)) /
                        static_cast<double>(result.edges);
        ++ratio_n[i];
      }
    }
    std::printf("\n");
  }

  bench::PrintRule(70);
  std::printf("Average branch-coverage improvement of LEGO:\n");
  for (size_t i = 1; i < fuzzers.size(); ++i) {
    if (ratio_n[i] == 0) continue;
    std::printf("  vs %-9s +%.0f%%\n", fuzzers[i].c_str(),
                ratio_sum[i] / ratio_n[i]);
  }
  std::printf("Paper: +120%% vs SQUIRREL, +198%% vs SQLancer, "
              "+44%% vs SQLsmith\n");
  return 0;
}
