// Reproduces paper Table I: the vulnerabilities LEGO discovers in continuous
// fuzzing on each target, grouped by component with kind counts and
// identifiers. Paper totals: PostgreSQL 6, MySQL 21, MariaDB 42, Comdb2 33
// (102 in all, 22 CVEs). Our campaigns are execution-bounded stand-ins for
// the paper's two-week wall-clock runs.

#include <map>
#include <set>

#include "bench_util.h"
#include "faults/bug_catalog.h"

int main() {
  using namespace lego;  // NOLINT(build/namespaces)

  const int kContinuousBudget = 200000;
  std::printf(
      "Table I — vulnerabilities discovered by LEGO in continuous fuzzing\n"
      "(budget %d executions per target; paper: two weeks wall-clock)\n\n",
      kContinuousBudget);

  int grand_total = 0;
  int paper_total = 0;
  std::set<std::string> cves;
  for (const auto* profile : minidb::DialectProfile::All()) {
    fuzz::CampaignResult result = bench::RunOne(
        "lego", *profile, kContinuousBudget, /*seed=*/17,
        /*stop_when_all_found=*/true);

    auto injected = faults::BugsForProfile(profile->name);
    // Group found bugs by component, tallying kinds and identifiers.
    std::map<std::string, std::map<std::string, int>> kind_counts;
    std::map<std::string, std::set<std::string>> identifiers;
    for (const auto* bug : injected) {
      if (!result.bug_ids.count(bug->id)) continue;
      ++kind_counts[bug->component][bug->kind];
      if (!bug->identifier.empty()) {
        identifiers[bug->component].insert(bug->identifier);
        if (bug->identifier.rfind("CVE-", 0) == 0) {
          cves.insert(bug->identifier);
        }
      }
    }

    std::printf("%s (%s): %zu / %zu bugs after %d executions\n",
                bench::PaperNameOf(profile->name), profile->name.c_str(),
                result.bug_ids.size(), injected.size(), result.executions);
    bench::PrintRule();
    std::printf("%-12s %-34s %s\n", "Component", "Bug Type and Number",
                "Identifier");
    for (const auto& [component, kinds] : kind_counts) {
      std::string kind_text;
      for (const auto& [kind, count] : kinds) {
        if (!kind_text.empty()) kind_text += ", ";
        kind_text += kind + "(" + std::to_string(count) + ")";
      }
      std::string id_text;
      int shown = 0;
      for (const auto& id : identifiers[component]) {
        if (shown++ == 3) {
          id_text += ", ...";
          break;
        }
        if (!id_text.empty()) id_text += ", ";
        id_text += id;
      }
      std::printf("%-12s %-34s %s\n", component.c_str(), kind_text.c_str(),
                  id_text.c_str());
    }
    std::printf("\n");
    grand_total += static_cast<int>(result.bug_ids.size());
    paper_total += static_cast<int>(injected.size());
  }

  bench::PrintRule();
  std::printf("Total: %d bugs found of %d injected (%zu distinct CVEs)\n",
              grand_total, paper_total, cves.size());
  std::printf("Paper: 102 bugs (PostgreSQL 6, MySQL 21, MariaDB 42, "
              "Comdb2 33), 22 CVEs\n");
  return 0;
}
