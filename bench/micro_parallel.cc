// Parallel campaign throughput: execs/sec of the worker-pool runner at
// 1/2/4/8 workers, same total budget, on the quickstart profile. The
// items_per_second counter is the figure of merit — on an N-core machine
// the 4-worker row should be well over 2x the 1-worker row.
//
//   ./bench/micro_parallel

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

// Total executions, split across workers. Large enough that per-worker
// execution time dominates the fixed per-worker cost of synthesizing from
// the (shared, roughly budget-independent) affinity set — at small budgets
// that Amdahl term caps speedup near 2x; at this budget 4 workers project
// ~2.3x on four cores.
constexpr int kBudget = 8000;

void BM_CampaignWorkers(benchmark::State& state) {
  using namespace lego;  // NOLINT(build/namespaces)
  const int workers = static_cast<int>(state.range(0));
  const auto& profile = minidb::DialectProfile::PgLite();
  for (auto _ : state) {
    auto fuzzer = bench::MakeFuzzer("lego", profile, /*seed=*/1);
    fuzz::ExecutionHarness harness(profile);
    fuzz::CampaignOptions options;
    options.max_executions = kBudget;
    options.snapshot_every = kBudget;  // curve bookkeeping off the hot path
    options.num_workers = workers;
    fuzz::CampaignResult result =
        fuzz::RunCampaign(fuzzer.get(), &harness, options);
    benchmark::DoNotOptimize(result.edges);
    if (result.executions != kBudget) {
      state.SkipWithError("campaign did not exhaust its budget");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * kBudget);
  state.counters["workers"] = workers;
}

}  // namespace

BENCHMARK(BM_CampaignWorkers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
