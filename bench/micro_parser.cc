// Microbenchmarks for the SQL front-end: lexing, parsing, and printing.
// These back the paper's C3 concern — fuzzing throughput is bounded by how
// fast test cases can be (re)parsed and rendered.

#include <benchmark/benchmark.h>

#include <cstring>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace {

const char* kScript =
    "CREATE TABLE t1 (v1 INT PRIMARY KEY, v2 TEXT NOT NULL, v3 REAL);\n"
    "CREATE INDEX ix1 ON t1 (v2);\n"
    "INSERT INTO t1 VALUES (1, 'a', 0.5), (2, 'b', 1.5), (3, 'c', 2.5);\n"
    "UPDATE t1 SET v3 = v3 * 2 WHERE v1 BETWEEN 1 AND 2;\n"
    "SELECT v2, COUNT(*), SUM(v3) FROM t1 WHERE v1 IN (1, 2, 3) "
    "GROUP BY v2 HAVING COUNT(*) > 0 ORDER BY v2 DESC LIMIT 10;\n"
    "WITH w AS (SELECT v1 FROM t1) SELECT * FROM w;\n";

const char* kComplexSelect =
    "SELECT DISTINCT a.x, LEAD(b.y) OVER (PARTITION BY a.x ORDER BY b.y) "
    "FROM a LEFT JOIN b ON a.k = b.k WHERE a.x > (SELECT MIN(z) FROM c) "
    "AND EXISTS (SELECT 1 FROM d WHERE d.w = a.x) "
    "UNION ALL SELECT 1, 2 ORDER BY 1 LIMIT 100 OFFSET 5";

void BM_Lex(benchmark::State& state) {
  for (auto _ : state) {
    lego::sql::Lexer lexer(kScript);
    auto tokens = lexer.Tokenize();
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(strlen(kScript)));
}
BENCHMARK(BM_Lex);

void BM_ParseScript(benchmark::State& state) {
  for (auto _ : state) {
    auto stmts = lego::sql::Parser::ParseScript(kScript);
    benchmark::DoNotOptimize(stmts);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(strlen(kScript)));
}
BENCHMARK(BM_ParseScript);

void BM_ParseComplexSelect(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = lego::sql::Parser::ParseStatement(kComplexSelect);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseComplexSelect);

void BM_PrintStatement(benchmark::State& state) {
  auto stmt = lego::sql::Parser::ParseStatement(kComplexSelect);
  for (auto _ : state) {
    std::string text = lego::sql::ToSql(**stmt);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_PrintStatement);

void BM_CloneStatement(benchmark::State& state) {
  auto stmt = lego::sql::Parser::ParseStatement(kComplexSelect);
  for (auto _ : state) {
    auto copy = (*stmt)->Clone();
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_CloneStatement);

}  // namespace

BENCHMARK_MAIN();
