// Reproduces the paper's §VI sequence-length study: fuzzing MariaDB for a
// fixed budget with the maximum synthesized sequence length LEN set to 3, 5,
// and 8. The paper reports 30, 35, and 27 bugs — cutting the length misses
// some bugs, while increasing it also loses bugs to performance degradation.

#include "bench_util.h"
#include "fuzz/campaign.h"
#include "lego/lego_fuzzer.h"

int main() {
  using namespace lego;  // NOLINT(build/namespaces)

  const int kExecCap = 120000;
  const int64_t kStatementBudget = 100000;
  const int kLengths[] = {3, 5, 8};

  std::printf(
      "Sequence-length study (§VI) — LEGO on MariaDB (marialite), "
      "%lld-statement budget per setting, mean of 3 seeds\n"
      "(statement budget models the paper's wall-clock budget: longer\n"
      "sequences consume it faster)\n\n",
      static_cast<long long>(kStatementBudget));
  std::printf("%-10s %8s %12s %14s %12s\n", "LEN", "Bugs", "Branches",
              "Affinities", "Executions");
  bench::PrintRule(50);

  const uint64_t kSeeds[] = {43, 44, 45};
  for (int len : kLengths) {
    double bugs = 0;
    double branches = 0;
    double affinities = 0;
    double executions = 0;
    for (uint64_t seed : kSeeds) {
      core::LegoOptions options;
      options.max_sequence_length = len;
      options.rng_seed = seed;
      core::LegoFuzzer lego(minidb::DialectProfile::MariaLite(), options);
      fuzz::ExecutionHarness harness(minidb::DialectProfile::MariaLite());
      fuzz::CampaignOptions campaign;
      campaign.max_executions = kExecCap;
      campaign.max_statements = kStatementBudget;
      campaign.snapshot_every = kExecCap / 4;
      fuzz::CampaignResult result =
          fuzz::RunCampaign(&lego, &harness, campaign);
      bugs += static_cast<double>(result.bug_ids.size());
      branches += static_cast<double>(result.edges);
      affinities += static_cast<double>(lego.affinities().Count());
      executions += result.executions;
    }
    const double n = static_cast<double>(std::size(kSeeds));
    std::printf("%-10d %8.1f %12.0f %14.0f %12.0f\n", len, bugs / n,
                branches / n, affinities / n, executions / n);
  }

  bench::PrintRule(50);
  std::printf("Paper: 30 bugs at LEN=3, 35 at LEN=5, 27 at LEN=8 "
              "(LEN=5 is the sweet spot)\n");
  return 0;
}
