// Checkpointing overhead: campaign execs/sec with persistence off vs
// checkpointing every 1k / 10k executions, at 1 and 4 workers, plus the
// latency of a single full state save. The execs/sec deltas between the
// `ckpt` rows and their `off` baseline are the cost of durability; the
// save-latency row bounds the stall a serial campaign sees per checkpoint.
//
//   ./bench/micro_checkpoint

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench_util.h"
#include "fuzz/checkpoint.h"
#include "persist/io.h"

namespace {

// Big enough that the 10k-interval rows actually checkpoint mid-run.
constexpr int kBudget = 20000;

std::string ScratchDir() {
  auto dir = std::filesystem::temp_directory_path() / "lego_bench_ckpt";
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// One campaign per iteration; range(0) = workers, range(1) = checkpoint
/// interval (0 = persistence off entirely).
void BM_CampaignCheckpoint(benchmark::State& state) {
  using namespace lego;  // NOLINT(build/namespaces)
  const int workers = static_cast<int>(state.range(0));
  const int interval = static_cast<int>(state.range(1));
  const auto& profile = minidb::DialectProfile::PgLite();
  const std::string dir = ScratchDir();
  for (auto _ : state) {
    auto fuzzer = bench::MakeFuzzer("lego", profile, /*seed=*/1);
    fuzz::ExecutionHarness harness(profile);
    fuzz::CampaignOptions options;
    options.max_executions = kBudget;
    options.snapshot_every = kBudget;
    options.num_workers = workers;
    if (interval > 0) {
      options.state_dir = dir;
      options.checkpoint_every = interval;
    }
    fuzz::CampaignResult result =
        fuzz::RunCampaign(fuzzer.get(), &harness, options);
    benchmark::DoNotOptimize(result.edges);
    if (!result.state_status.ok()) {
      state.SkipWithError(result.state_status.ToString().c_str());
      break;
    }
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * kBudget);
  state.counters["workers"] = workers;
  state.counters["ckpt_every"] = interval;
}

/// Latency of one serial checkpoint: serialize a mid-campaign fuzzer +
/// harness + result and write the atomic state file.
void BM_StateSaveLatency(benchmark::State& state) {
  using namespace lego;  // NOLINT(build/namespaces)
  const auto& profile = minidb::DialectProfile::PgLite();
  auto fuzzer = bench::MakeFuzzer("lego", profile, /*seed=*/1);
  fuzz::ExecutionHarness harness(profile);
  fuzz::CampaignOptions options;
  options.max_executions = static_cast<int>(state.range(0));
  options.snapshot_every = options.max_executions;
  fuzz::CampaignResult result =
      fuzz::RunCampaign(fuzzer.get(), &harness, options);

  const std::string dir = ScratchDir();
  std::filesystem::create_directories(dir);
  const std::string path = fuzz::SerialStatePath(dir);
  size_t bytes = 0;
  for (auto _ : state) {
    persist::StateWriter w;
    fuzz::WriteCampaignFingerprint(fuzzer->name(), profile.name, options, &w);
    if (!fuzz::SaveCampaignResult(result, &w).ok() ||
        !fuzzer->SaveState(&w).ok() || !harness.SaveState(&w).ok() ||
        !w.WriteFileAtomic(path).ok()) {
      state.SkipWithError("state save failed");
      break;
    }
    bytes = w.buffer().size();
  }
  std::filesystem::remove_all(dir);
  state.counters["state_bytes"] = static_cast<double>(bytes);
}

}  // namespace

BENCHMARK(BM_CampaignCheckpoint)
    ->Args({1, 0})
    ->Args({1, 1000})
    ->Args({1, 10000})
    ->Args({4, 0})
    ->Args({4, 1000})
    ->Args({4, 10000})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_StateSaveLatency)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
