// One-shot benchmark sweep writing a machine-readable BENCH_<date>.json:
// campaign throughput (execs/sec) and coverage per fuzzer/profile, per-oracle
// overhead against a no-oracle baseline, rule-coverage feedback overhead,
// concurrent-backend throughput at 1/2/4 sessions (scheduler overhead vs the
// serial in-process baseline), and raw parser throughput with the
// grammar-rule probes detached vs armed.
//
//   ./bench/bench_all [--quick] [--out FILE]
//
//   --quick  : CI budgets (500 execs per campaign instead of 5000)
//   --out F  : output path (default BENCH_<YYYY-MM-DD>.json in the CWD)
//
// The storage section times a paged-storage campaign against the in-memory
// baseline (WAL bytes/fsyncs from the Env counters), reports the buffer
// pool's hit rate under a bulk-load workload, and measures cold recovery
// (snapshot load + WAL replay) of a multi-thousand-page database.
//
// The fleet section shards one campaign across 1/2/4 worker processes via
// the fleet coordinator: aggregate execs/sec per worker count, the
// coordination tax (1-worker fleet vs the same shards run serially
// in-process), and distill-cycle latency for corpus redistribution.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "coverage/rule_coverage.h"
#include "fleet/fleet.h"
#include "fleet/shard.h"
#include "fuzz/campaign.h"
#include "fuzz/harness.h"
#include "minidb/database.h"
#include "minidb/env.h"
#include "minidb/storage_engine.h"
#include "sql/grammar_coverage.h"
#include "sql/parser.h"
#include "triage/oracle_suite.h"

namespace lego::bench {
namespace {

constexpr uint64_t kSeed = 7;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct CampaignRow {
  std::string fuzzer;
  std::string profile;
  int executions = 0;
  double seconds = 0;
  size_t edges = 0;
  size_t rules = 0;
  int crashes = 0;
  int logic_flags = 0;
};

/// One serial campaign with optional oracle spec / rule feedback, timed.
CampaignRow TimedCampaign(const std::string& fuzzer_name,
                          const std::string& profile_name, int executions,
                          const std::string& oracle_spec, bool rule_coverage,
                          const fuzz::BackendOptions& backend = {}) {
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName(profile_name);
  auto fuzzer = MakeFuzzer(fuzzer_name, *profile, kSeed);
  fuzz::ExecutionHarness harness(*profile, backend);
  std::unique_ptr<triage::OracleSuite> suite;
  if (!oracle_spec.empty()) {
    std::string error;
    suite = triage::OracleSuite::FromSpec(oracle_spec, &error);
    if (suite != nullptr) harness.set_logic_oracle(suite.get());
  }
  harness.set_rule_coverage(rule_coverage);
  fuzz::CampaignOptions options;
  options.max_executions = executions;
  options.snapshot_every = executions;
  auto t0 = std::chrono::steady_clock::now();
  fuzz::CampaignResult result =
      fuzz::RunCampaign(fuzzer.get(), &harness, options);
  CampaignRow row;
  row.fuzzer = fuzzer_name;
  row.profile = profile_name;
  row.executions = result.executions;
  row.seconds = SecondsSince(t0);
  row.edges = result.edges;
  row.rules = result.rules;
  row.crashes = result.crashes_total;
  row.logic_flags = result.logic_bugs_total;
  return row;
}

double ExecsPerSec(const CampaignRow& row) {
  return row.seconds > 0 ? row.executions / row.seconds : 0;
}

/// Parses `script` `iters` times; returns wall seconds. With `armed`, a
/// grammar-coverage scope is attached, which is the instrumented-parser
/// worst case (every probe performs its store); detached is the default
/// campaign configuration for everything except the rule-signal reparse.
double ParseLoopSeconds(const std::string& script, int iters, bool armed) {
  cov::RuleMap map;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    if (armed) {
      sql::GrammarCoverageScope scope(map.data());
      auto parsed = sql::Parser::ParseScript(script);
      if (!parsed.ok()) std::abort();
    } else {
      auto parsed = sql::Parser::ParseScript(script);
      if (!parsed.ok()) std::abort();
    }
  }
  return SecondsSince(t0);
}

/// Runs a script through the storage engine's statement bracket, the way
/// the paged backends drive it.
void BracketedExec(minidb::StorageEngine* engine, minidb::Database* db,
                   const std::string& sql) {
  auto stmts = sql::Parser::ParseScript(sql + ";");
  if (!stmts.ok()) std::abort();
  for (const sql::StmtPtr& stmt : stmts.value()) {
    engine->BeginStatement(db);
    Status st = db->Execute(*stmt).status();
    (void)engine->EndStatement(db, *stmt, st.ok());
  }
}

struct RecoveryBench {
  int rows = 0;
  uint64_t snapshot_pages = 0;
  uint64_t replayed_records = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  double load_seconds = 0;
  double recovery_seconds = 0;
};

/// Bulk-loads `rows` padded rows through the paged engine (batched commits),
/// checkpoints, appends a post-checkpoint WAL tail, then times a cold
/// OpenOrRecover of the resulting directory.
RecoveryBench TimedRecovery(int rows) {
  RecoveryBench bench;
  bench.rows = rows;
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");
  const std::string dir = "bench_recovery_db";
  minidb::StorageEngine::Options sopts;
  sopts.dir = dir;
  sopts.pool_frames = 64;
  // The bulk load would auto-checkpoint mid-way and shrink the WAL tail
  // we want to replay; keep the single explicit checkpoint authoritative.
  sopts.checkpoint_every_commits = 1u << 30;

  auto t0 = std::chrono::steady_clock::now();
  {
    minidb::StorageEngine engine(sopts);
    minidb::Database db(profile);
    if (!engine.ResetFresh(&db).ok()) std::abort();
    BracketedExec(&engine, &db, "CREATE TABLE t (a INT, b TEXT)");
    // ~2KB per row: 40k rows put the snapshot at the 10k-page mark the
    // recovery figure is quoted against.
    const std::string pad(2000, 'x');
    constexpr int kBatch = 250;
    for (int base = 0; base < rows; base += kBatch) {
      BracketedExec(&engine, &db, "BEGIN");
      for (int i = base; i < base + kBatch && i < rows; ++i) {
        BracketedExec(&engine, &db,
                      "INSERT INTO t VALUES (" + std::to_string(i) + ", '" +
                          pad + "')");
      }
      BracketedExec(&engine, &db, "COMMIT");
    }
    BracketedExec(&engine, &db, "CHECKPOINT");
    // Post-checkpoint tail: recovery replays these on top of the snapshot.
    // Autocommit inserts, one fsync each — bounded so the bench stays
    // seconds, not minutes, on a real disk.
    const int tail = rows / 10 < 500 ? rows / 10 : 500;
    for (int i = 0; i < tail; ++i) {
      BracketedExec(&engine, &db,
                    "INSERT INTO t VALUES (" + std::to_string(rows + i) +
                        ", 'tail')");
    }
    bench.pool_hits = engine.stats().pool.hits;
    bench.pool_misses = engine.stats().pool.misses;
  }
  bench.load_seconds = SecondsSince(t0);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap.", 0) == 0) {
      bench.snapshot_pages = std::filesystem::file_size(entry.path()) /
                             minidb::kPageSize;
    }
  }

  t0 = std::chrono::steady_clock::now();
  {
    minidb::StorageEngine engine(sopts);
    minidb::Database db(profile);
    if (!engine.OpenOrRecover(&db).ok()) std::abort();
    bench.replayed_records = engine.stats().recovered_records;
  }
  bench.recovery_seconds = SecondsSince(t0);
  (void)minidb::Env::Posix()->RemoveDirRecursive(dir);
  return bench;
}

struct LargerThanRamBench {
  int rows = 0;
  size_t pool_frames = 0;
  int scans = 0;
  double load_seconds = 0;
  double scan_rows_per_sec = 0;
  double scan_hit_rate_pct = 0;
  uint64_t scan_evictions = 0;
  double recovery_seconds = 0;
};

/// The paged-source-of-truth workload: a heap several times larger than
/// the pool, full-scanned repeatedly so every pass re-faults evicted pages
/// through Env, then cold-recovered. Scan throughput, the pool hit rate
/// under that pressure, and recovery time are the numbers the pager trades
/// against the mem path's free reads.
LargerThanRamBench TimedLargerThanRam(int rows, int scans) {
  LargerThanRamBench bench;
  bench.rows = rows;
  bench.scans = scans;
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");
  const std::string dir = "bench_ltr_db";
  minidb::StorageEngine::Options sopts;
  sopts.dir = dir;
  sopts.pool_frames = 64;
  sopts.checkpoint_every_commits = 1u << 30;
  bench.pool_frames = sopts.pool_frames;

  auto t0 = std::chrono::steady_clock::now();
  {
    minidb::StorageEngine engine(sopts);
    minidb::Database db(profile);
    if (!engine.ResetFresh(&db).ok()) std::abort();
    BracketedExec(&engine, &db, "CREATE TABLE t (a INT, b TEXT)");
    // ~200B per row: 10k rows ≈ 2MB of heap against a 512KB pool.
    const std::string pad(180, 'x');
    constexpr int kBatch = 250;
    for (int base = 0; base < rows; base += kBatch) {
      BracketedExec(&engine, &db, "BEGIN");
      for (int i = base; i < base + kBatch && i < rows; ++i) {
        BracketedExec(&engine, &db,
                      "INSERT INTO t VALUES (" + std::to_string(i) + ", '" +
                          pad + "')");
      }
      BracketedExec(&engine, &db, "COMMIT");
    }
    bench.load_seconds = SecondsSince(t0);

    const minidb::StorageEngine::Stats before = engine.stats();
    t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < scans; ++s) {
      // Full scan, empty result set: every row is decoded, nothing is
      // materialized, so the figure is pager throughput, not row copying.
      BracketedExec(&engine, &db, "SELECT a FROM t WHERE a < 0");
    }
    const double scan_seconds = SecondsSince(t0);
    const minidb::StorageEngine::Stats after = engine.stats();
    const uint64_t hits = after.pool.hits - before.pool.hits;
    const uint64_t misses = after.pool.misses - before.pool.misses;
    bench.scan_evictions = after.pool.evictions - before.pool.evictions;
    bench.scan_hit_rate_pct =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses) *
                  100.0
            : 0;
    bench.scan_rows_per_sec =
        scan_seconds > 0
            ? static_cast<double>(rows) * scans / scan_seconds
            : 0;
    BracketedExec(&engine, &db, "CHECKPOINT");
  }

  t0 = std::chrono::steady_clock::now();
  {
    minidb::StorageEngine engine(sopts);
    minidb::Database db(profile);
    if (!engine.OpenOrRecover(&db).ok()) std::abort();
  }
  bench.recovery_seconds = SecondsSince(t0);
  (void)minidb::Env::Posix()->RemoveDirRecursive(dir);
  return bench;
}

// --- fleet coordinator ----------------------------------------------------

struct FleetBenchRow {
  int workers = 0;
  double seconds = 0;
  int64_t executions = 0;
  int distill_cycles = 0;
  double distill_seconds = 0;
};

fleet::FleetConfig FleetBenchConfig(int shards, int budget, int distill_every) {
  fleet::FleetConfig config;
  config.profile = "pglite";
  config.fuzzer = "lego";
  config.base_seed = kSeed;
  config.num_shards = shards;
  config.shard_budget = budget;
  config.distill_every = distill_every;
  return config;
}

FleetBenchRow TimedFleet(int workers, int shards, int budget,
                         int distill_every) {
  fleet::FleetOptions options;
  options.config = FleetBenchConfig(shards, budget, distill_every);
  options.num_workers = workers;
  options.fleet_dir = "bench_fleet_w" + std::to_string(workers) + "_d" +
                      std::to_string(distill_every);
  (void)minidb::Env::Posix()->RemoveDirRecursive(options.fleet_dir);
  fleet::FleetResult result = fleet::RunFleet(options);
  FleetBenchRow row;
  row.workers = workers;
  row.seconds = result.elapsed_seconds;
  row.executions = result.executions;
  row.distill_cycles = result.distill_cycles;
  row.distill_seconds = result.distill_seconds;
  (void)minidb::Env::Posix()->RemoveDirRecursive(options.fleet_dir);
  return row;
}

}  // namespace
}  // namespace lego::bench

int main(int argc, char** argv) {
  using namespace lego::bench;  // NOLINT(build/namespaces)

  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "usage: bench_all [--quick] [--out FILE]\n");
      return 1;
    }
  }

  char date[16];
  std::time_t now = std::time(nullptr);
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  std::strftime(date, sizeof(date), "%Y-%m-%d", &tm_buf);
  if (out_path.empty()) out_path = std::string("BENCH_") + date + ".json";

  const int execs = quick ? 500 : 5000;
  std::printf("bench_all: %d executions per campaign%s -> %s\n", execs,
              quick ? " (--quick)" : "", out_path.c_str());

  // Campaign throughput + coverage across fuzzers/profiles.
  std::vector<CampaignRow> campaigns;
  for (const auto& [fuzzer, profile] :
       std::vector<std::pair<std::string, std::string>>{
           {"lego", "pglite"},
           {"lego", "marialite"},
           {"squirrel", "marialite"},
           {"sqlancer", "mylite"},
           {"sqlsmith", "comdlite"},
       }) {
    CampaignRow row = TimedCampaign(fuzzer, profile, execs, "", false);
    std::printf("  %-9s %-9s %7.0f execs/s  %4zu edges  %3d crashes\n",
                row.fuzzer.c_str(), row.profile.c_str(), ExecsPerSec(row),
                row.edges, row.crashes);
    campaigns.push_back(row);
  }

  // Per-oracle overhead vs a no-oracle baseline (same fuzzer/profile/seed).
  CampaignRow baseline = TimedCampaign("lego", "pglite", execs, "", false);
  std::vector<std::pair<std::string, CampaignRow>> oracle_rows;
  for (const char* spec : {"tlp", "norec", "clause", "tlp,norec,clause"}) {
    CampaignRow row = TimedCampaign("lego", "pglite", execs, spec, false);
    double overhead =
        baseline.seconds > 0
            ? (row.seconds - baseline.seconds) / baseline.seconds * 100.0
            : 0;
    std::printf("  oracle %-18s %7.0f execs/s  (%+.1f%% vs none, %d flags)\n",
                spec, ExecsPerSec(row), overhead, row.logic_flags);
    oracle_rows.emplace_back(spec, row);
  }

  // Concurrent backend: throughput at 1/2/4 session threads plus the
  // scheduler/locking overhead against the serial in-process baseline.
  // sessions=1 routes through the plain serial path, so its delta isolates
  // backend-construction cost; 2/4 add epoch scheduling, row locks, and the
  // history log.
  std::vector<std::pair<int, CampaignRow>> concurrent_rows;
  for (int sessions : {1, 2, 4}) {
    lego::fuzz::BackendOptions copts;
    copts.kind = lego::fuzz::BackendKind::kConcurrent;
    copts.sessions = sessions;
    copts.concurrency_seed = kSeed;
    CampaignRow row = TimedCampaign("lego", "pglite", execs, "", false, copts);
    double overhead =
        baseline.seconds > 0
            ? (row.seconds - baseline.seconds) / baseline.seconds * 100.0
            : 0;
    std::printf(
        "  concurrent x%-2d       %7.0f execs/s  (%+.1f%% vs serial, "
        "%zu edges)\n",
        sessions, ExecsPerSec(row), overhead, row.edges);
    concurrent_rows.emplace_back(sessions, row);
  }

  // Paged storage vs the in-memory baseline: same campaign, WAL+pool
  // underneath, with WAL traffic read off the process-wide Env counters.
  lego::fuzz::BackendOptions paged_opts;
  paged_opts.storage = lego::fuzz::StorageKind::kPaged;
  paged_opts.db_dir = "bench_paged_db";
  const lego::minidb::EnvStats env_before = lego::minidb::Env::Posix()->stats();
  CampaignRow paged_row =
      TimedCampaign("lego", "pglite", execs, "", false, paged_opts);
  const lego::minidb::EnvStats env_after = lego::minidb::Env::Posix()->stats();
  (void)lego::minidb::Env::Posix()->RemoveDirRecursive(paged_opts.db_dir);
  const uint64_t wal_bytes = env_after.bytes_written - env_before.bytes_written;
  const uint64_t wal_fsyncs = env_after.syncs - env_before.syncs;
  double paged_overhead =
      baseline.seconds > 0
          ? (paged_row.seconds - baseline.seconds) / baseline.seconds * 100.0
          : 0;
  std::printf(
      "  storage paged        %7.0f execs/s  (%+.1f%% vs mem, %llu WAL "
      "bytes, %llu fsyncs)\n",
      ExecsPerSec(paged_row), paged_overhead,
      static_cast<unsigned long long>(wal_bytes),
      static_cast<unsigned long long>(wal_fsyncs));

  // Cold recovery of a bulk-loaded paged database (snapshot + WAL tail).
  RecoveryBench recovery = TimedRecovery(quick ? 2000 : 40000);
  const uint64_t pool_lookups = recovery.pool_hits + recovery.pool_misses;
  const double pool_hit_rate =
      pool_lookups > 0
          ? static_cast<double>(recovery.pool_hits) / pool_lookups * 100.0
          : 0;
  std::printf(
      "  recovery             %6.3f s for %d rows (%llu snapshot pages, "
      "%llu WAL records, pool hit rate %.1f%%)\n",
      recovery.recovery_seconds, recovery.rows,
      static_cast<unsigned long long>(recovery.snapshot_pages),
      static_cast<unsigned long long>(recovery.replayed_records),
      pool_hit_rate);

  // Larger-than-RAM: repeated full scans of a heap ~4x the pool, then a
  // cold recovery of the checkpointed result.
  // 64 frames hold ~512KB; even the quick row count must overflow that or
  // the scan figure silently degrades to an all-hits cache benchmark.
  LargerThanRamBench ltr =
      TimedLargerThanRam(quick ? 4000 : 10000, quick ? 3 : 10);
  std::printf(
      "  larger-than-RAM      %7.0f rows/s scanned at %zu frames "
      "(hit rate %.1f%%, %llu evictions, recovery %.3f s)\n",
      ltr.scan_rows_per_sec, ltr.pool_frames, ltr.scan_hit_rate_pct,
      static_cast<unsigned long long>(ltr.scan_evictions),
      ltr.recovery_seconds);

  // Rule-coverage feedback overhead (same baseline).
  CampaignRow rules_on = TimedCampaign("lego", "pglite", execs, "", true);
  double rules_overhead =
      baseline.seconds > 0
          ? (rules_on.seconds - baseline.seconds) / baseline.seconds * 100.0
          : 0;
  std::printf("  rule-coverage        %7.0f execs/s  (%+.1f%%, %zu rules)\n",
              ExecsPerSec(rules_on), rules_overhead, rules_on.rules);

  // Raw parser throughput: probes detached (micro_parser configuration,
  // must stay ~free) vs armed (the rule-signal reparse itself).
  const std::string script =
      "CREATE TABLE t0 (a INT PRIMARY KEY, b TEXT, c REAL);"
      "CREATE INDEX i0 ON t0 (b);"
      "INSERT INTO t0 (a, b, c) VALUES (1, 'x', 2.5);"
      "SELECT t0.a, COUNT(*) FROM t0 JOIN t0 AS u ON t0.a = u.a "
      "WHERE t0.b LIKE 'x%' AND t0.c BETWEEN 0 AND 9 "
      "GROUP BY t0.a HAVING COUNT(*) > 0 ORDER BY t0.a DESC LIMIT 5;"
      "UPDATE t0 SET c = c + 1 WHERE a IN (SELECT a FROM t0);"
      "DROP TABLE IF EXISTS t0;";
  const int iters = quick ? 2000 : 20000;
  double detached = ParseLoopSeconds(script, iters, /*armed=*/false);
  double armed = ParseLoopSeconds(script, iters, /*armed=*/true);
  double probe_overhead =
      detached > 0 ? (armed - detached) / detached * 100.0 : 0;
  std::printf("  parser %.0f scripts/s detached, %.0f armed (%+.1f%%)\n",
              iters / detached, iters / armed, probe_overhead);

  // Fleet coordinator: the same shard set run serially in-process is the
  // zero-coordination baseline; a 1-worker fleet adds fork + pipes + journal
  // (the coordination tax), and 2/4 workers show aggregate scaling.
  const int fleet_shards = 8;
  const int fleet_budget = quick ? 250 : 1000;
  double serial_shards_seconds = 0;
  {
    lego::fleet::FleetConfig config =
        FleetBenchConfig(fleet_shards, fleet_budget, 0);
    std::vector<lego::fuzz::TestCase> pool;
    auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < fleet_shards; ++s) {
      auto outcome = lego::fleet::ExecuteShard(config, s, pool, nullptr, {});
      if (!outcome.ok()) {
        std::fprintf(stderr, "fleet bench shard failed: %s\n",
                     outcome.status().ToString().c_str());
        return 1;
      }
    }
    serial_shards_seconds = SecondsSince(t0);
  }
  std::vector<FleetBenchRow> fleet_rows;
  for (int workers : {1, 2, 4}) {
    FleetBenchRow row =
        TimedFleet(workers, fleet_shards, fleet_budget, /*distill_every=*/0);
    double rate = row.seconds > 0
                      ? static_cast<double>(row.executions) / row.seconds
                      : 0;
    double speedup = !fleet_rows.empty() && row.seconds > 0
                         ? fleet_rows.front().seconds / row.seconds
                         : 1.0;
    std::printf("  fleet x%-2d workers    %7.0f execs/s  (%.2fx vs 1 worker)\n",
                workers, rate, speedup);
    fleet_rows.push_back(row);
  }
  const double coordinator_overhead_pct =
      serial_shards_seconds > 0
          ? (fleet_rows.front().seconds - serial_shards_seconds) /
                serial_shards_seconds * 100.0
          : 0;
  FleetBenchRow fleet_distill =
      TimedFleet(1, fleet_shards, fleet_budget, /*distill_every=*/2);
  const double distill_cycle_seconds =
      fleet_distill.distill_cycles > 0
          ? fleet_distill.distill_seconds / fleet_distill.distill_cycles
          : 0;
  std::printf(
      "  fleet coordination   %+6.1f%% vs serial shards; distill %d cycles, "
      "%.3f s/cycle\n",
      coordinator_overhead_pct, fleet_distill.distill_cycles,
      distill_cycle_seconds);

  // Machine-readable dump.
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"date\": \"%s\",\n  \"quick\": %s,\n", date,
               quick ? "true" : "false");
  std::fprintf(f, "  \"executions_per_campaign\": %d,\n", execs);
  std::fprintf(f, "  \"campaigns\": [\n");
  for (size_t i = 0; i < campaigns.size(); ++i) {
    const CampaignRow& r = campaigns[i];
    std::fprintf(f,
                 "    {\"fuzzer\": \"%s\", \"profile\": \"%s\", "
                 "\"executions\": %d, \"seconds\": %.3f, "
                 "\"execs_per_sec\": %.1f, \"edges\": %zu, \"crashes\": %d}%s\n",
                 r.fuzzer.c_str(), r.profile.c_str(), r.executions, r.seconds,
                 ExecsPerSec(r), r.edges, r.crashes,
                 i + 1 < campaigns.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"oracle_overhead\": [\n");
  std::fprintf(f,
               "    {\"oracle\": \"none\", \"seconds\": %.3f, "
               "\"execs_per_sec\": %.1f, \"overhead_pct\": 0.0, "
               "\"logic_flags\": %d},\n",
               baseline.seconds, ExecsPerSec(baseline), baseline.logic_flags);
  for (size_t i = 0; i < oracle_rows.size(); ++i) {
    const auto& [spec, r] = oracle_rows[i];
    double overhead =
        baseline.seconds > 0
            ? (r.seconds - baseline.seconds) / baseline.seconds * 100.0
            : 0;
    std::fprintf(f,
                 "    {\"oracle\": \"%s\", \"seconds\": %.3f, "
                 "\"execs_per_sec\": %.1f, \"overhead_pct\": %.1f, "
                 "\"logic_flags\": %d}%s\n",
                 spec.c_str(), r.seconds, ExecsPerSec(r), overhead,
                 r.logic_flags, i + 1 < oracle_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"concurrent\": [\n");
  for (size_t i = 0; i < concurrent_rows.size(); ++i) {
    const auto& [sessions, r] = concurrent_rows[i];
    double overhead =
        baseline.seconds > 0
            ? (r.seconds - baseline.seconds) / baseline.seconds * 100.0
            : 0;
    std::fprintf(f,
                 "    {\"sessions\": %d, \"seconds\": %.3f, "
                 "\"execs_per_sec\": %.1f, \"scheduler_overhead_pct\": "
                 "%.1f, \"edges\": %zu}%s\n",
                 sessions, r.seconds, ExecsPerSec(r), overhead, r.edges,
                 i + 1 < concurrent_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"storage\": {\n"
               "    \"mem_execs_per_sec\": %.1f,\n"
               "    \"paged_execs_per_sec\": %.1f,\n"
               "    \"paged_overhead_pct\": %.1f,\n"
               "    \"wal_bytes\": %llu,\n"
               "    \"wal_fsyncs\": %llu,\n"
               "    \"pool_hit_rate_pct\": %.1f,\n"
               "    \"pool_hits\": %llu,\n"
               "    \"pool_misses\": %llu,\n"
               "    \"recovery\": {\"rows\": %d, \"snapshot_pages\": %llu, "
               "\"wal_records\": %llu, \"load_seconds\": %.3f, "
               "\"seconds\": %.3f}\n"
               "  },\n",
               ExecsPerSec(baseline), ExecsPerSec(paged_row), paged_overhead,
               static_cast<unsigned long long>(wal_bytes),
               static_cast<unsigned long long>(wal_fsyncs), pool_hit_rate,
               static_cast<unsigned long long>(recovery.pool_hits),
               static_cast<unsigned long long>(recovery.pool_misses),
               recovery.rows,
               static_cast<unsigned long long>(recovery.snapshot_pages),
               static_cast<unsigned long long>(recovery.replayed_records),
               recovery.load_seconds, recovery.recovery_seconds);
  std::fprintf(f,
               "  \"larger_than_ram\": {\"rows\": %d, \"pool_frames\": %zu, "
               "\"scans\": %d, \"scan_rows_per_sec\": %.0f, "
               "\"scan_pool_hit_rate_pct\": %.1f, \"scan_evictions\": %llu, "
               "\"load_seconds\": %.3f, \"recovery_seconds\": %.3f},\n",
               ltr.rows, ltr.pool_frames, ltr.scans, ltr.scan_rows_per_sec,
               ltr.scan_hit_rate_pct,
               static_cast<unsigned long long>(ltr.scan_evictions),
               ltr.load_seconds, ltr.recovery_seconds);
  std::fprintf(f,
               "  \"rule_coverage\": {\"off_execs_per_sec\": %.1f, "
               "\"on_execs_per_sec\": %.1f, \"overhead_pct\": %.1f, "
               "\"rules_covered\": %zu, \"rules_total\": %zu},\n",
               ExecsPerSec(baseline), ExecsPerSec(rules_on), rules_overhead,
               rules_on.rules, lego::cov::RuleMap::size());
  std::fprintf(f,
               "  \"parser_probes\": {\"iters\": %d, "
               "\"detached_scripts_per_sec\": %.1f, "
               "\"armed_scripts_per_sec\": %.1f, \"overhead_pct\": %.1f},\n",
               iters, iters / detached, iters / armed, probe_overhead);
  std::fprintf(f,
               "  \"fleet\": {\n"
               "    \"shards\": %d,\n"
               "    \"shard_budget\": %d,\n"
               "    \"serial_shards_seconds\": %.3f,\n"
               "    \"coordinator_overhead_pct\": %.1f,\n"
               "    \"workers\": [\n",
               fleet_shards, fleet_budget, serial_shards_seconds,
               coordinator_overhead_pct);
  for (size_t i = 0; i < fleet_rows.size(); ++i) {
    const FleetBenchRow& r = fleet_rows[i];
    std::fprintf(
        f,
        "      {\"workers\": %d, \"seconds\": %.3f, \"execs_per_sec\": "
        "%.1f, \"speedup_vs_1\": %.2f}%s\n",
        r.workers, r.seconds,
        r.seconds > 0 ? static_cast<double>(r.executions) / r.seconds : 0.0,
        r.seconds > 0 ? fleet_rows.front().seconds / r.seconds : 1.0,
        i + 1 < fleet_rows.size() ? "," : "");
  }
  std::fprintf(f,
               "    ],\n"
               "    \"distill\": {\"every\": 2, \"cycles\": %d, "
               "\"total_seconds\": %.3f, \"seconds_per_cycle\": %.3f}\n"
               "  }\n",
               fleet_distill.distill_cycles, fleet_distill.distill_seconds,
               distill_cycle_seconds);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
