#ifndef LEGO_BENCH_BENCH_UTIL_H_
#define LEGO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "baselines/sqlancer_like.h"
#include "baselines/sqlsmith_like.h"
#include "baselines/squirrel_like.h"
#include "fuzz/campaign.h"
#include "fuzz/harness.h"
#include "lego/lego_fuzzer.h"
#include "minidb/profile.h"

namespace lego::bench {

/// Builds a fuzzer by display name. "lego-" is the ablation.
inline std::unique_ptr<fuzz::Fuzzer> MakeFuzzer(
    const std::string& name, const minidb::DialectProfile& profile,
    uint64_t seed) {
  if (name == "lego" || name == "lego-") {
    core::LegoOptions options;
    options.sequence_algorithms_enabled = (name == "lego");
    options.rng_seed = seed;
    return std::make_unique<core::LegoFuzzer>(profile, options);
  }
  if (name == "squirrel") {
    return std::make_unique<baselines::SquirrelLikeFuzzer>(profile, seed);
  }
  if (name == "sqlancer") {
    return std::make_unique<baselines::SqlancerLikeFuzzer>(profile, seed);
  }
  if (name == "sqlsmith") {
    return std::make_unique<baselines::SqlsmithLikeFuzzer>(profile, seed);
  }
  return nullptr;
}

/// Runs one campaign of `executions` runs (split across `workers`).
inline fuzz::CampaignResult RunOne(const std::string& fuzzer_name,
                                   const minidb::DialectProfile& profile,
                                   int executions, uint64_t seed,
                                   bool stop_when_all_found = false,
                                   int workers = 1) {
  auto fuzzer = MakeFuzzer(fuzzer_name, profile, seed);
  fuzz::ExecutionHarness harness(profile);
  fuzz::CampaignOptions options;
  options.max_executions = executions;
  options.snapshot_every = std::max(1, executions / 10);
  options.stop_when_all_bugs_found = stop_when_all_found;
  options.num_workers = workers;
  return fuzz::RunCampaign(fuzzer.get(), &harness, options);
}

/// Paper target names for each profile, for side-by-side reporting.
inline const char* PaperNameOf(const std::string& profile) {
  if (profile == "pglite") return "PostgreSQL";
  if (profile == "mylite") return "MySQL";
  if (profile == "marialite") return "MariaDB";
  if (profile == "comdlite") return "Comdb2";
  return "?";
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace lego::bench

#endif  // LEGO_BENCH_BENCH_UTIL_H_
