// Reproduces paper Table IV: the effectiveness of the sequence-oriented
// algorithms. LEGO- disables proactive affinity analysis and progressive
// sequence synthesis together (they are tightly coupled); both variants run
// the same budget and we report type-affinities found and branches covered.
//
// Paper values:        Types   Affinities (LEGO-/LEGO)  Branches improvement
//   PostgreSQL          188        1764 / 2101              +20%
//   MySQL               158         595 /  643              +15%
//   MariaDB             160         615 /  734              +25%
//   Comdb2               24         200 /  229               +7%

#include "bench_util.h"
#include "lego/lego_fuzzer.h"

int main() {
  using namespace lego;  // NOLINT(build/namespaces)

  const int kBudget = 15000;
  std::printf(
      "Table IV — type-affinities found and branches covered by LEGO- and "
      "LEGO\n(budget %d executions per cell)\n\n",
      kBudget);
  std::printf("%-14s %6s | %8s %8s %6s | %8s %8s %6s\n", "DBMS", "Types",
              "Aff(L-)", "Aff(L)", "Incr", "Br(L-)", "Br(L)", "Impr");
  bench::PrintRule(78);

  for (const auto* profile : minidb::DialectProfile::All()) {
    // The affinity metric for both variants is the Table II measure:
    // affinities contained in generated test cases. Each cell is the mean
    // of two seeds to damp campaign variance.
    double minus_aff = 0;
    double full_aff = 0;
    double minus_edges = 0;
    double full_edges = 0;
    for (uint64_t seed : {41ull, 42ull}) {
      fuzz::CampaignResult minus =
          bench::RunOne("lego-", *profile, kBudget, seed);
      fuzz::CampaignResult full =
          bench::RunOne("lego", *profile, kBudget, seed);
      minus_aff += static_cast<double>(minus.affinities.size()) / 2;
      full_aff += static_cast<double>(full.affinities.size()) / 2;
      minus_edges += static_cast<double>(minus.edges) / 2;
      full_edges += static_cast<double>(full.edges) / 2;
    }
    double improvement =
        minus_edges == 0
            ? 0.0
            : 100.0 * (full_edges - minus_edges) / minus_edges;
    std::printf("%-14s %6d | %8.0f %8.0f %5.0f%s | %8.0f %8.0f %5.0f%%\n",
                bench::PaperNameOf(profile->name), profile->TypeCount(),
                minus_aff, full_aff, full_aff - minus_aff, "^", minus_edges,
                full_edges, improvement);
  }

  bench::PrintRule(78);
  std::printf(
      "Paper: more statement types -> larger affinity increment -> larger\n"
      "branch improvement (PostgreSQL +20%%, MySQL +15%%, MariaDB +25%%, "
      "Comdb2 +7%%,\nwith Comdb2 smallest because it has only 24 types).\n");
  return 0;
}
