// Configurable fuzzing campaign from the command line — the workload the
// paper's evaluation runs, as a standalone tool.
//
//   ./examples/fuzz_campaign_cli [profile] [fuzzer] [executions] [seed]
//                                [--workers N] [--reduce] [--repro-dir DIR]
//                                [--tlp] [--backend=inproc|forked]
//                                [--max-stmt-ms N]
//
//   profile : pglite | mylite | marialite | comdlite       (default pglite)
//   fuzzer  : lego | lego- | squirrel | sqlancer | sqlsmith (default lego)
//   executions : campaign budget (total, across workers)    (default 10000)
//   seed    : RNG seed (worker w derives seed + w)          (default 1)
//   --workers N : parallel worker threads                   (default 1)
//   --tlp       : arm the TLP metamorphic logic-bug oracle  (default off)
//   --backend B : execution backend — inproc (embedded minidb) or forked
//                 (crash-isolated child per worker)         (default inproc)
//   --max-stmt-ms N : forked only — kill a statement after N ms wall clock
//                 and record it as a hang                   (default off)
//   --reduce    : ddmin-minimize each unique crash after the campaign
//   --repro-dir DIR : write one deterministic .sql repro per unique bug
//                     (implies --reduce)
//   --planted-crash / --planted-hang : test-only; arm a real abort() /
//                 infinite loop inside minidb (demo of crash isolation)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/sqlancer_like.h"
#include "baselines/sqlsmith_like.h"
#include "baselines/squirrel_like.h"
#include "fuzz/campaign.h"
#include "fuzz/harness.h"
#include "lego/lego_fuzzer.h"
#include "minidb/database.h"
#include "triage/tlp_oracle.h"
#include "triage/triage.h"

int main(int argc, char** argv) {
  using namespace lego;  // NOLINT(build/namespaces)

  // Split args into flags (anywhere) and positionals.
  int workers = 1;
  bool reduce = false;
  bool tlp = false;
  std::string repro_dir;
  fuzz::BackendOptions backend;
  bool planted_crash = false;
  bool planted_hang = false;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--backend" || arg.rfind("--backend=", 0) == 0) {
      std::string value;
      if (arg == "--backend") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "--backend needs a value\n");
          return 1;
        }
        value = argv[++i];
      } else {
        value = arg.substr(10);
      }
      std::optional<fuzz::BackendKind> kind = fuzz::ParseBackendKind(value);
      if (!kind.has_value()) {
        std::fprintf(stderr, "unknown backend '%s' (inproc | forked)\n",
                     value.c_str());
        return 1;
      }
      backend.kind = *kind;
    } else if (arg == "--max-stmt-ms") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--max-stmt-ms needs a value\n");
        return 1;
      }
      backend.max_stmt_ms = std::atoi(argv[++i]);
    } else if (arg.rfind("--max-stmt-ms=", 0) == 0) {
      backend.max_stmt_ms = std::atoi(arg.c_str() + 14);
    } else if (arg == "--planted-crash") {
      planted_crash = true;
    } else if (arg == "--planted-hang") {
      planted_hang = true;
    } else if (arg == "--workers") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--workers needs a value\n");
        return 1;
      }
      workers = std::atoi(argv[++i]);
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::atoi(arg.c_str() + 10);
    } else if (arg == "--reduce") {
      reduce = true;
    } else if (arg == "--tlp") {
      tlp = true;
    } else if (arg == "--repro-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--repro-dir needs a value\n");
        return 1;
      }
      repro_dir = argv[++i];
      reduce = true;
    } else if (arg.rfind("--repro-dir=", 0) == 0) {
      repro_dir = arg.substr(12);
      reduce = true;
    } else {
      pos.push_back(std::move(arg));
    }
  }
  if (workers < 1) {
    std::fprintf(stderr, "--workers must be >= 1\n");
    return 1;
  }

  std::string profile_name = pos.size() > 0 ? pos[0] : "pglite";
  std::string fuzzer_name = pos.size() > 1 ? pos[1] : "lego";
  int executions = pos.size() > 2 ? std::atoi(pos[2].c_str()) : 10000;
  uint64_t seed =
      pos.size() > 3 ? std::strtoull(pos[3].c_str(), nullptr, 10) : 1;

  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName(profile_name);
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown profile '%s'\n", profile_name.c_str());
    return 1;
  }

  std::unique_ptr<fuzz::Fuzzer> fuzzer;
  core::LegoFuzzer* lego_ptr = nullptr;
  if (fuzzer_name == "lego" || fuzzer_name == "lego-") {
    core::LegoOptions options;
    options.sequence_algorithms_enabled = (fuzzer_name == "lego");
    options.rng_seed = seed;
    auto lego = std::make_unique<core::LegoFuzzer>(*profile, options);
    lego_ptr = lego.get();
    fuzzer = std::move(lego);
  } else if (fuzzer_name == "squirrel") {
    fuzzer = std::make_unique<baselines::SquirrelLikeFuzzer>(*profile, seed);
  } else if (fuzzer_name == "sqlancer") {
    fuzzer = std::make_unique<baselines::SqlancerLikeFuzzer>(*profile, seed);
  } else if (fuzzer_name == "sqlsmith") {
    fuzzer = std::make_unique<baselines::SqlsmithLikeFuzzer>(*profile, seed);
  } else {
    std::fprintf(stderr, "unknown fuzzer '%s'\n", fuzzer_name.c_str());
    return 1;
  }

  // Planted defects must be armed before any backend spawns: forked
  // children inherit the flags at fork time.
  if (planted_crash) minidb::testing::SetPlantedAbortForTesting(true);
  if (planted_hang) minidb::testing::SetPlantedHangForTesting(true);

  fuzz::ExecutionHarness harness(*profile, backend);
  triage::TlpOracle tlp_oracle;
  if (tlp) harness.set_logic_oracle(&tlp_oracle);
  fuzz::CampaignOptions options;
  options.max_executions = executions;
  options.snapshot_every = std::max(1, executions / 10);
  options.num_workers = workers;

  std::printf("fuzzing %s with %s for %d executions (seed %llu, %d worker%s)\n",
              profile->name.c_str(), fuzzer->name().c_str(), executions,
              static_cast<unsigned long long>(seed), workers,
              workers == 1 ? "" : "s");
  // Only announce non-default backends, keeping the default in-process
  // output byte-identical to the historical tool.
  if (backend.kind != fuzz::BackendKind::kInProcess ||
      backend.max_stmt_ms > 0) {
    std::printf("backend: %.*s",
                static_cast<int>(fuzz::BackendKindName(backend.kind).size()),
                fuzz::BackendKindName(backend.kind).data());
    if (backend.max_stmt_ms > 0) {
      std::printf(" (watchdog %d ms)", backend.max_stmt_ms);
    }
    std::printf("\n");
  }
  fuzz::CampaignResult result =
      fuzz::RunCampaign(fuzzer.get(), &harness, options);

  std::printf("\ncoverage curve (executions -> branches):\n");
  for (const auto& [execs, edges] : result.coverage_curve) {
    std::printf("  %7d  %6zu\n", execs, edges);
  }
  std::printf("\nresults:\n");
  std::printf("  branches covered   : %zu\n", result.edges);
  std::printf("  type-affinities    : %zu\n", result.affinities.size());
  std::printf("  statements executed: %d (+%d rejected)\n",
              result.statements_executed, result.statement_errors);
  std::printf("  crashes            : %d total, %zu unique\n",
              result.crashes_total, result.crash_hashes.size());
  std::printf("  bugs               : %zu / %zu injected\n",
              result.bug_ids.size(),
              harness.bug_engine().bugs().size());
  for (const std::string& bug : result.bug_ids) {
    std::printf("    %s\n", bug.c_str());
  }
  if (tlp) {
    std::printf("  logic-bug flags    : %d total, %zu unique queries\n",
                result.logic_bugs_total, result.logic_fingerprints.size());
  }

  if (reduce || tlp) {
    triage::TriageOptions triage_options;
    triage_options.reduce = reduce;
    triage_options.repro_dir = repro_dir;
    triage_options.backend = backend;
    triage::TriageReport report = triage::TriageCampaign(
        result, *profile, harness.setup_script(), triage_options);
    std::printf("\ntriage (%d crash + %d logic capture%s, %d replays):\n",
                report.crash_captures, report.logic_captures,
                report.crash_captures + report.logic_captures == 1 ? "" : "s",
                report.replays);
    std::printf("  unique bugs        : %zu (%d duplicate%s collapsed, "
                "%d not reproduced)\n",
                report.bugs.size(), report.duplicates,
                report.duplicates == 1 ? "" : "s", report.not_reproduced);
    for (const triage::TriagedBug& bug : report.bugs) {
      std::printf("    %-40s %2d stmts (from %d)%s%s\n",
                  bug.signature.Key().c_str(), bug.reduced_statements,
                  bug.original_statements,
                  bug.artifact_path.empty() ? "" : "  -> ",
                  bug.artifact_path.c_str());
    }
  }
  // In parallel mode the prototype fuzzer never runs (its per-worker clones
  // do), so its internal maps are empty — only report them for serial runs.
  if (lego_ptr != nullptr && workers == 1) {
    std::printf("  affinity map       : %zu pairs\n",
                lego_ptr->affinities().Count());
    std::printf("  synthesized seqs   : %zu\n",
                lego_ptr->synthesizer().TotalSequences());
  }
  return 0;
}
