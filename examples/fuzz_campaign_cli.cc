// Configurable fuzzing campaign from the command line — the workload the
// paper's evaluation runs, as a standalone tool.
//
//   ./examples/fuzz_campaign_cli [profile] [fuzzer] [executions] [seed]
//                                [--workers N] [--reduce] [--repro-dir DIR]
//                                [--oracle LIST] [--rule-coverage]
//                                [--backend=inproc|forked|concurrent]
//                                [--max-stmt-ms N] [--sessions N]
//
//   profile : pglite | mylite | marialite | comdlite       (default pglite)
//   fuzzer  : lego | lego- | squirrel | sqlancer | sqlsmith (default lego)
//   executions : campaign budget (total, across workers)    (default 10000)
//   seed    : RNG seed (worker w derives seed + w)          (default 1)
//   --workers N : parallel worker threads                   (default 1)
//   --oracle LIST : arm logic-bug oracles, comma-separated from
//                 tlp | norec | clause | iso | dur, checked in the given
//                 order with first-finding-wins. "dur" is the durability
//                 oracle: it needs --backend=forked --storage=paged and
//                 adjudicates every child death against a shadow replay
//                 (DUR-LOST-COMMIT / DUR-PHANTOM / DUR-RECOVERY-FAIL)
//   --tlp       : shorthand for --oracle=tlp (combines: appends to LIST)
//   --rule-coverage : grammar-rule coverage as a secondary feedback signal
//                 (parser production hit-set; rare-rule corpus weighting)
//   --backend B : execution backend — inproc (embedded minidb), forked,
//                 or concurrent (N true session threads per case under a
//                 seeded deterministic interleaving scheduler)
//                 (crash-isolated child per worker)         (default inproc)
//   --max-stmt-ms N : forked only — kill a statement after N ms wall clock
//   --sessions N : concurrent only — session threads per test case
//                 (default 2); the per-case interleaving seed is derived
//                 from the campaign seed and execution index
//   --planted-lost-update / --planted-dirty-read : test-only; plant an
//                 isolation defect in the concurrent lock discipline that
//                 the iso oracle should catch (demo of --oracle=iso)
//                 and record it as a hang                   (default off)
//   --reduce    : ddmin-minimize each unique crash after the campaign
//   --repro-dir DIR : write one deterministic .sql repro per unique bug
//                     plus a manifest.tsv (replay key, signature, trigger,
//                     campaign seed, state version); bugs already listed
//                     in the manifest are not re-reduced  (implies --reduce)
//   --state-dir DIR : persist campaign state under DIR (serial: one atomic
//                 campaign.state; parallel: per-round checkpoint dirs
//                 flipped by a LATEST pointer)
//   --checkpoint-every N : write a checkpoint every N executions (total
//                 across workers; 0 = only the final state)   (default 0)
//   --resume    : continue from the newest complete checkpoint in
//                 --state-dir; the resumed run must use identical flags
//   --import-corpus FILE : seed the fuzzer with a corpus file exported by
//                 corpus_cli before the first execution (fresh runs only)
//   --export-corpus FILE : write the final corpus (every seed of every
//                 worker) to FILE for reuse via --import-corpus or
//                 corpus_cli distill
//   --planted-crash / --planted-hang / --planted-oom : test-only; arm a
//                 real abort() / infinite loop / unbounded allocation
//                 inside minidb (demo of crash isolation + rlimit caps)
//   --planted-eval-bug : test-only; plant the NOT-NULL evaluator defect
//                 (NOT of NULL evaluates TRUE) — a wrong-result bug only
//                 the logic oracles can see (demo of --oracle)
//   --chaos     : arm every registered failpoint with --chaos-prob
//   --chaos-prob P : per-hit fire probability under --chaos (default 0.02)
//   --chaos-seed S : failpoint schedule seed (default: the campaign seed);
//                 the schedule is deterministic per (seed, hit index)
//   --chaos-fp NAME=SPEC : arm one failpoint precisely (repeatable);
//                 SPEC = off | always | prob:P | nth:N | kill:N
//   --storage S : execution storage — mem (historical in-memory database)
//                 or paged (buffer pool + WAL under --db-dir; recovery on
//                 reopen; mem stays bit-identical)          (default mem)
//   --db-dir DIR : paged only — on-disk database directory. Treated as a
//                 scratch dir: wiped on engine reset and removed when the
//                 tool exits; parallel worker w uses DIR/w<w>
//   --pool-frames N : paged only — buffer-pool frame budget  (default 64)
//   --planted-skip-fsync : test-only; the paged engine skips the commit
//                 fsync, so a kill:N storage schedule loses acknowledged
//                 commits (demo of --oracle=dur)
//   --max-child-mem-mb N : forked only — RLIMIT_AS cap per child; an
//                 allocation over it dies as a REAL-OOM crash  (default off)
//   --max-child-cpu-s N : forked only — RLIMIT_CPU cap per child; a spin
//                 over it dies as a REAL-CPU crash              (default off)
//   --max-child-fsize-mb N : forked only — RLIMIT_FSIZE cap per child
//                 (REAL-FSIZE)                                  (default off)

#include <csignal>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/sqlancer_like.h"
#include "baselines/sqlsmith_like.h"
#include "baselines/squirrel_like.h"
#include "chaos/failpoint.h"
#include "fuzz/campaign.h"
#include "fuzz/checkpoint.h"
#include "fuzz/corpus_file.h"
#include "fuzz/harness.h"
#include "lego/lego_fuzzer.h"
#include "minidb/database.h"
#include "minidb/env.h"
#include "minidb/eval.h"
#include "triage/oracle_suite.h"
#include "triage/triage.h"

namespace {

/// SIGTERM/SIGINT request a graceful drain: the campaign finishes the
/// in-flight test case, writes its final checkpoint/corpus/triage output
/// through the normal end-of-run path, and the tool exits 0 — instead of
/// dying mid-round and stranding a torn ckpt_r<N>/ dir for the resume
/// fallback to clean up.
std::atomic<bool> g_stop_requested{false};

void HandleStopSignal(int) { g_stop_requested.store(true); }

void InstallStopHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lego;  // NOLINT(build/namespaces)

  InstallStopHandlers();

  // Split args into flags (anywhere) and positionals.
  int workers = 1;
  bool reduce = false;
  bool tlp = false;
  std::string oracle_spec;
  bool rule_coverage = false;
  bool planted_eval_bug = false;
  std::string repro_dir;
  std::string state_dir;
  int checkpoint_every = 0;
  bool resume = false;
  std::string import_corpus;
  std::string export_corpus;
  fuzz::BackendOptions backend;
  bool planted_crash = false;
  bool planted_hang = false;
  bool planted_oom = false;
  bool chaos = false;
  double chaos_prob = 0.02;
  uint64_t chaos_seed = 0;
  bool chaos_seed_set = false;
  std::vector<std::string> chaos_fps;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--backend" || arg.rfind("--backend=", 0) == 0) {
      std::string value;
      if (arg == "--backend") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "--backend needs a value\n");
          return 1;
        }
        value = argv[++i];
      } else {
        value = arg.substr(10);
      }
      std::optional<fuzz::BackendKind> kind = fuzz::ParseBackendKind(value);
      if (!kind.has_value()) {
        std::fprintf(stderr,
                     "unknown backend '%s' (inproc | forked | concurrent)\n",
                     value.c_str());
        return 1;
      }
      backend.kind = *kind;
    } else if (arg == "--max-stmt-ms") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--max-stmt-ms needs a value\n");
        return 1;
      }
      backend.max_stmt_ms = std::atoi(argv[++i]);
    } else if (arg.rfind("--max-stmt-ms=", 0) == 0) {
      backend.max_stmt_ms = std::atoi(arg.c_str() + 14);
    } else if (arg == "--sessions") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--sessions needs a value\n");
        return 1;
      }
      backend.sessions = std::atoi(argv[++i]);
    } else if (arg.rfind("--sessions=", 0) == 0) {
      backend.sessions = std::atoi(arg.c_str() + 11);
    } else if (arg == "--planted-lost-update") {
      backend.planted_lost_update = true;
    } else if (arg == "--planted-dirty-read") {
      backend.planted_dirty_read = true;
    } else if (arg == "--planted-crash") {
      planted_crash = true;
    } else if (arg == "--planted-hang") {
      planted_hang = true;
    } else if (arg == "--planted-oom") {
      planted_oom = true;
    } else if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--chaos-prob") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--chaos-prob needs a value\n");
        return 1;
      }
      chaos_prob = std::atof(argv[++i]);
    } else if (arg.rfind("--chaos-prob=", 0) == 0) {
      chaos_prob = std::atof(arg.c_str() + 13);
    } else if (arg == "--chaos-seed") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--chaos-seed needs a value\n");
        return 1;
      }
      chaos_seed = std::strtoull(argv[++i], nullptr, 10);
      chaos_seed_set = true;
    } else if (arg.rfind("--chaos-seed=", 0) == 0) {
      chaos_seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
      chaos_seed_set = true;
    } else if (arg == "--chaos-fp") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--chaos-fp needs NAME=SPEC\n");
        return 1;
      }
      chaos_fps.emplace_back(argv[++i]);
    } else if (arg.rfind("--chaos-fp=", 0) == 0) {
      chaos_fps.emplace_back(arg.substr(11));
    } else if (arg == "--storage" || arg.rfind("--storage=", 0) == 0) {
      std::string value;
      if (arg == "--storage") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "--storage needs a value\n");
          return 1;
        }
        value = argv[++i];
      } else {
        value = arg.substr(10);
      }
      std::optional<fuzz::StorageKind> kind = fuzz::ParseStorageKind(value);
      if (!kind.has_value()) {
        std::fprintf(stderr, "unknown storage '%s' (mem | paged)\n",
                     value.c_str());
        return 1;
      }
      backend.storage = *kind;
    } else if (arg == "--db-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--db-dir needs a value\n");
        return 1;
      }
      backend.db_dir = argv[++i];
    } else if (arg.rfind("--db-dir=", 0) == 0) {
      backend.db_dir = arg.substr(9);
    } else if (arg == "--pool-frames") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--pool-frames needs a value\n");
        return 1;
      }
      backend.pool_frames = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg.rfind("--pool-frames=", 0) == 0) {
      backend.pool_frames = static_cast<size_t>(std::atoi(arg.c_str() + 14));
    } else if (arg == "--planted-skip-fsync") {
      backend.planted_skip_fsync = true;
    } else if (arg == "--max-child-mem-mb") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--max-child-mem-mb needs a value\n");
        return 1;
      }
      backend.max_child_mem_mb = std::atoi(argv[++i]);
    } else if (arg.rfind("--max-child-mem-mb=", 0) == 0) {
      backend.max_child_mem_mb = std::atoi(arg.c_str() + 19);
    } else if (arg == "--max-child-cpu-s") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--max-child-cpu-s needs a value\n");
        return 1;
      }
      backend.max_child_cpu_s = std::atoi(argv[++i]);
    } else if (arg.rfind("--max-child-cpu-s=", 0) == 0) {
      backend.max_child_cpu_s = std::atoi(arg.c_str() + 18);
    } else if (arg == "--max-child-fsize-mb") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--max-child-fsize-mb needs a value\n");
        return 1;
      }
      backend.max_child_fsize_mb = std::atoi(argv[++i]);
    } else if (arg.rfind("--max-child-fsize-mb=", 0) == 0) {
      backend.max_child_fsize_mb = std::atoi(arg.c_str() + 21);
    } else if (arg == "--workers") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--workers needs a value\n");
        return 1;
      }
      workers = std::atoi(argv[++i]);
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::atoi(arg.c_str() + 10);
    } else if (arg == "--reduce") {
      reduce = true;
    } else if (arg == "--tlp") {
      tlp = true;
    } else if (arg == "--oracle") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--oracle needs a value\n");
        return 1;
      }
      if (!oracle_spec.empty()) oracle_spec += ',';
      oracle_spec += argv[++i];
    } else if (arg.rfind("--oracle=", 0) == 0) {
      if (!oracle_spec.empty()) oracle_spec += ',';
      oracle_spec += arg.substr(9);
    } else if (arg == "--rule-coverage") {
      rule_coverage = true;
    } else if (arg == "--planted-eval-bug") {
      planted_eval_bug = true;
    } else if (arg == "--repro-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--repro-dir needs a value\n");
        return 1;
      }
      repro_dir = argv[++i];
      reduce = true;
    } else if (arg.rfind("--repro-dir=", 0) == 0) {
      repro_dir = arg.substr(12);
      reduce = true;
    } else if (arg == "--state-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--state-dir needs a value\n");
        return 1;
      }
      state_dir = argv[++i];
    } else if (arg.rfind("--state-dir=", 0) == 0) {
      state_dir = arg.substr(12);
    } else if (arg == "--checkpoint-every") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--checkpoint-every needs a value\n");
        return 1;
      }
      checkpoint_every = std::atoi(argv[++i]);
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      checkpoint_every = std::atoi(arg.c_str() + 19);
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--import-corpus") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--import-corpus needs a value\n");
        return 1;
      }
      import_corpus = argv[++i];
    } else if (arg.rfind("--import-corpus=", 0) == 0) {
      import_corpus = arg.substr(16);
    } else if (arg == "--export-corpus") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--export-corpus needs a value\n");
        return 1;
      }
      export_corpus = argv[++i];
    } else if (arg.rfind("--export-corpus=", 0) == 0) {
      export_corpus = arg.substr(16);
    } else {
      pos.push_back(std::move(arg));
    }
  }
  if (workers < 1) {
    std::fprintf(stderr, "--workers must be >= 1\n");
    return 1;
  }

  std::string profile_name = pos.size() > 0 ? pos[0] : "pglite";
  std::string fuzzer_name = pos.size() > 1 ? pos[1] : "lego";
  int executions = pos.size() > 2 ? std::atoi(pos[2].c_str()) : 10000;
  uint64_t seed =
      pos.size() > 3 ? std::strtoull(pos[3].c_str(), nullptr, 10) : 1;
  // Interleavings are part of the campaign's deterministic identity: the
  // concurrent backend derives each case's scheduler seed from this.
  backend.concurrency_seed = seed;

  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName(profile_name);
  if (profile == nullptr) {
    std::fprintf(stderr, "unknown profile '%s'\n", profile_name.c_str());
    return 1;
  }

  std::unique_ptr<fuzz::Fuzzer> fuzzer;
  core::LegoFuzzer* lego_ptr = nullptr;
  if (fuzzer_name == "lego" || fuzzer_name == "lego-") {
    core::LegoOptions options;
    options.sequence_algorithms_enabled = (fuzzer_name == "lego");
    options.rng_seed = seed;
    auto lego = std::make_unique<core::LegoFuzzer>(*profile, options);
    lego_ptr = lego.get();
    fuzzer = std::move(lego);
  } else if (fuzzer_name == "squirrel") {
    fuzzer = std::make_unique<baselines::SquirrelLikeFuzzer>(*profile, seed);
  } else if (fuzzer_name == "sqlancer") {
    fuzzer = std::make_unique<baselines::SqlancerLikeFuzzer>(*profile, seed);
  } else if (fuzzer_name == "sqlsmith") {
    fuzzer = std::make_unique<baselines::SqlsmithLikeFuzzer>(*profile, seed);
  } else {
    std::fprintf(stderr, "unknown fuzzer '%s'\n", fuzzer_name.c_str());
    return 1;
  }

  // Planted defects must be armed before any backend spawns: forked
  // children inherit the flags at fork time.
  if (planted_crash) minidb::testing::SetPlantedAbortForTesting(true);
  if (planted_hang) minidb::testing::SetPlantedHangForTesting(true);
  if (planted_oom) minidb::testing::SetPlantedOomForTesting(true);
  if (planted_eval_bug) minidb::Evaluator::SetNotNullEvalBugForTesting(true);

  // Chaos likewise: arm before the harness so the very first spawn and
  // every forked child run the same deterministic fault schedule.
  if (chaos) {
    chaos::ArmAll(chaos_seed_set ? chaos_seed : seed, chaos_prob);
    std::printf("chaos: all failpoints armed (prob %.3f, seed %llu)\n",
                chaos_prob,
                static_cast<unsigned long long>(chaos_seed_set ? chaos_seed
                                                               : seed));
  }
  for (const std::string& spec : chaos_fps) {
    Status armed = chaos::ArmSpec(spec, chaos_seed_set ? chaos_seed : seed);
    if (!armed.ok()) {
      std::fprintf(stderr, "bad --chaos-fp '%s': %s\n", spec.c_str(),
                   armed.ToString().c_str());
      return 1;
    }
  }

  if (tlp) {
    if (!oracle_spec.empty()) oracle_spec += ',';
    oracle_spec += "tlp";
  }
  std::unique_ptr<triage::OracleSuite> oracle_suite;
  if (!oracle_spec.empty()) {
    std::string oracle_error;
    oracle_suite = triage::OracleSuite::FromSpec(oracle_spec, &oracle_error);
    if (oracle_suite == nullptr) {
      std::fprintf(stderr, "bad --oracle '%s': %s\n", oracle_spec.c_str(),
                   oracle_error.c_str());
      return 1;
    }
  }
  if (backend.storage == fuzz::StorageKind::kPaged &&
      backend.db_dir.empty()) {
    std::fprintf(stderr, "--storage=paged requires --db-dir\n");
    return 1;
  }
  if (oracle_suite != nullptr && oracle_suite->durability_requested()) {
    if (backend.storage != fuzz::StorageKind::kPaged ||
        backend.kind != fuzz::BackendKind::kForked) {
      std::fprintf(stderr,
                   "--oracle=dur requires --backend=forked --storage=paged\n");
      return 1;
    }
    backend.durability_check = true;
  }
  // The durability oracle stamps its repro messages with the fault schedule
  // that produced them, so a DUR-* finding is replayable from its artifact.
  for (const std::string& spec : chaos_fps) {
    if (!backend.chaos_note.empty()) backend.chaos_note += ' ';
    backend.chaos_note += spec;
  }
  fuzz::ExecutionHarness harness(*profile, backend);
  if (oracle_suite != nullptr && !oracle_suite->MemberNames().empty()) {
    harness.set_logic_oracle(oracle_suite.get());
  }
  const bool oracles_armed = oracle_suite != nullptr;
  harness.set_rule_coverage(rule_coverage);
  if (resume && state_dir.empty()) {
    std::fprintf(stderr, "--resume requires --state-dir\n");
    return 1;
  }
  fuzz::CampaignOptions options;
  options.max_executions = executions;
  options.stop_flag = &g_stop_requested;
  options.snapshot_every = std::max(1, executions / 10);
  options.num_workers = workers;
  options.state_dir = state_dir;
  options.checkpoint_every = checkpoint_every;
  options.resume = resume;
  options.export_corpus = !export_corpus.empty();
  std::vector<fuzz::TestCase> imported_seeds;
  if (!import_corpus.empty() && !resume) {
    // Tolerant import: salvage the loadable prefix of a damaged corpus
    // (skip the rest with a counted warning) instead of refusing it.
    fuzz::CorpusLoadStats cls;
    auto loaded = fuzz::LoadCorpusFileTolerant(import_corpus, &cls);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot import corpus %s: %s\n",
                   import_corpus.c_str(),
                   loaded.status().message().c_str());
      return 1;
    }
    imported_seeds = std::move(*loaded);
    options.import_seeds = &imported_seeds;
    options.import_skipped = cls.skipped;
    if (cls.skipped > 0 || cls.degraded) {
      std::fprintf(stderr,
                   "warning: corpus %s damaged; salvaged %zu seed(s), "
                   "skipped %zu\n",
                   import_corpus.c_str(), cls.loaded, cls.skipped);
    }
    std::printf("imported %zu corpus seeds from %s\n", imported_seeds.size(),
                import_corpus.c_str());
  }

  std::printf("fuzzing %s with %s for %d executions (seed %llu, %d worker%s)\n",
              profile->name.c_str(), fuzzer->name().c_str(), executions,
              static_cast<unsigned long long>(seed), workers,
              workers == 1 ? "" : "s");
  // Only announce non-default backends, keeping the default in-process
  // output byte-identical to the historical tool.
  if (backend.storage == fuzz::StorageKind::kPaged) {
    std::printf("storage: paged (%zu frames, dir %s%s%s)\n",
                backend.pool_frames, backend.db_dir.c_str(),
                backend.durability_check ? ", durability oracle" : "",
                backend.planted_skip_fsync ? ", planted skip-fsync" : "");
  }
  if (backend.kind != fuzz::BackendKind::kInProcess ||
      backend.max_stmt_ms > 0) {
    std::printf("backend: %.*s",
                static_cast<int>(fuzz::BackendKindName(backend.kind).size()),
                fuzz::BackendKindName(backend.kind).data());
    if (backend.max_stmt_ms > 0) {
      std::printf(" (watchdog %d ms)", backend.max_stmt_ms);
    }
    if (backend.kind == fuzz::BackendKind::kConcurrent) {
      std::printf(" (%d sessions)", backend.sessions);
      if (backend.planted_lost_update) std::printf(" (planted lost-update)");
      if (backend.planted_dirty_read) std::printf(" (planted dirty-read)");
    }
    if (backend.max_child_mem_mb > 0) {
      std::printf(" (mem cap %d MB)", backend.max_child_mem_mb);
    }
    if (backend.max_child_cpu_s > 0) {
      std::printf(" (cpu cap %d s)", backend.max_child_cpu_s);
    }
    if (backend.max_child_fsize_mb > 0) {
      std::printf(" (fsize cap %d MB)", backend.max_child_fsize_mb);
    }
    std::printf("\n");
  }
  fuzz::CampaignResult result =
      fuzz::RunCampaign(fuzzer.get(), &harness, options);

  if (result.stopped_early) {
    std::printf("\ncampaign: stop signal received; drained after %d "
                "executions (state flushed)\n",
                result.executions);
  }
  std::printf("\ncoverage curve (executions -> branches):\n");
  for (const auto& [execs, edges] : result.coverage_curve) {
    std::printf("  %7d  %6zu\n", execs, edges);
  }
  std::printf("\nresults:\n");
  std::printf("  branches covered   : %zu\n", result.edges);
  if (rule_coverage) {
    std::printf("  grammar rules      : %zu / %zu\n", result.rules,
                cov::RuleMap::size());
  }
  std::printf("  type-affinities    : %zu\n", result.affinities.size());
  std::printf("  statements executed: %d (+%d rejected)\n",
              result.statements_executed, result.statement_errors);
  std::printf("  crashes            : %d total, %zu unique\n",
              result.crashes_total, result.crash_hashes.size());
  std::printf("  bugs               : %zu / %zu injected\n",
              result.bug_ids.size(),
              harness.bug_engine().bugs().size());
  for (const std::string& bug : result.bug_ids) {
    std::printf("    %s\n", bug.c_str());
  }
  if (oracles_armed) {
    std::printf("  logic-bug flags    : %d total, %zu unique queries\n",
                result.logic_bugs_total, result.logic_fingerprints.size());
  }
  std::printf("  corpus seeds       : %zu\n",
              result.fuzzer_stats.corpus_seeds);
  std::printf("  affinity pairs     : %zu\n",
              result.fuzzer_stats.affinity_pairs);
  std::printf("  sequences          : %zu synthesized, %zu dropped at cap\n",
              result.fuzzer_stats.sequences_total,
              result.fuzzer_stats.sequences_dropped);
  if (result.fuzzer_stats.import_skipped > 0) {
    std::printf("  import skipped     : %zu damaged corpus entr%s\n",
                result.fuzzer_stats.import_skipped,
                result.fuzzer_stats.import_skipped == 1 ? "y" : "ies");
  }
  if (backend.storage == fuzz::StorageKind::kPaged) {
    const fuzz::BackendStorageStats& ss = result.storage;
    std::printf("  buffer pool        : %.1f%% hit rate (%llu hits, "
                "%llu misses), %llu eviction(s), %llu writeback(s)\n",
                100.0 * ss.pool_hit_rate(),
                static_cast<unsigned long long>(ss.pool_hits),
                static_cast<unsigned long long>(ss.pool_misses),
                static_cast<unsigned long long>(ss.pool_evictions),
                static_cast<unsigned long long>(ss.pool_writebacks));
    std::printf("  write-ahead log    : %llu record(s), %llu byte(s), "
                "%llu fsync(s), %llu steal flush(es)\n",
                static_cast<unsigned long long>(ss.wal_records),
                static_cast<unsigned long long>(ss.wal_bytes),
                static_cast<unsigned long long>(ss.fsyncs),
                static_cast<unsigned long long>(ss.steal_flushes));
    std::printf("  durability         : %llu commit(s), %llu checkpoint(s)\n",
                static_cast<unsigned long long>(ss.commits),
                static_cast<unsigned long long>(ss.checkpoints));
  }
  if (result.checkpoints_failed > 0 || result.checkpoint_fallbacks > 0 ||
      result.workers_parked > 0) {
    std::printf("  self-healing       : %d checkpoint write(s) failed, "
                "%d checkpoint(s) skipped at resume, %d worker(s) parked\n",
                result.checkpoints_failed, result.checkpoint_fallbacks,
                result.workers_parked);
  }
  if (chaos || !chaos_fps.empty()) {
    std::printf("  chaos schedule     :\n");
    for (const chaos::FailpointInfo& fp : chaos::Snapshot()) {
      if (fp.mode == chaos::FailpointMode::kOff && fp.hits == 0) continue;
      std::printf("    %-20s %-8s %llu hit(s), %llu fire(s)\n",
                  std::string(fp.name).c_str(),
                  std::string(chaos::ModeName(fp.mode)).c_str(),
                  static_cast<unsigned long long>(fp.hits),
                  static_cast<unsigned long long>(fp.fires));
    }
  }

  if (reduce || oracles_armed) {
    triage::TriageOptions triage_options;
    triage_options.reduce = reduce;
    triage_options.repro_dir = repro_dir;
    triage_options.backend = backend;
    triage_options.campaign_seed = seed;
    triage::TriageReport report = triage::TriageCampaign(
        result, *profile, harness.setup_script(), triage_options);
    std::printf("\ntriage (%d crash + %d logic capture%s, %d replays):\n",
                report.crash_captures, report.logic_captures,
                report.crash_captures + report.logic_captures == 1 ? "" : "s",
                report.replays);
    std::printf("  unique bugs        : %zu (%d duplicate%s collapsed, "
                "%d not reproduced)\n",
                report.bugs.size(), report.duplicates,
                report.duplicates == 1 ? "" : "s", report.not_reproduced);
    if (report.skipped_known > 0) {
      std::printf("  known bugs skipped : %d (already in %s)\n",
                  report.skipped_known, triage::kTriageManifestFile);
    }
    for (const triage::TriagedBug& bug : report.bugs) {
      std::printf("    %-40s %2d stmts (from %d)%s%s\n",
                  bug.signature.Key().c_str(), bug.reduced_statements,
                  bug.original_statements,
                  bug.artifact_path.empty() ? "" : "  -> ",
                  bug.artifact_path.c_str());
    }
  }
  // In parallel mode the prototype fuzzer never runs (its per-worker clones
  // do), so its internal maps are empty — only report them for serial runs.
  if (lego_ptr != nullptr && workers == 1) {
    std::printf("  affinity map       : %zu pairs\n",
                lego_ptr->affinities().Count());
    std::printf("  synthesized seqs   : %zu\n",
                lego_ptr->synthesizer().TotalSequences());
  }
  if (!state_dir.empty()) {
    // The digest folds in everything the bit-identity acceptance bar
    // compares; CI diffs this line between interrupted and uninterrupted
    // runs.
    std::printf("  result digest      : %016llx\n",
                static_cast<unsigned long long>(fuzz::ResultDigest(result)));
    std::printf("  state              : %s (%s)\n", state_dir.c_str(),
                resume ? "resumed" : "fresh");
  }
  if (!export_corpus.empty()) {
    Status saved = fuzz::SaveCorpusFile(result.corpus_export, export_corpus);
    if (!saved.ok()) {
      std::fprintf(stderr, "cannot export corpus to %s: %s\n",
                   export_corpus.c_str(), saved.ToString().c_str());
      return 1;
    }
    std::printf("  corpus exported    : %zu seeds -> %s\n",
                result.corpus_export.size(), export_corpus.c_str());
  }
  // --db-dir is a scratch directory by contract (see the usage comment):
  // every run starts from ResetFresh, so nothing in it outlives the tool.
  if (!backend.db_dir.empty()) {
    (void)minidb::Env::Posix()->RemoveDirRecursive(backend.db_dir);
  }
  if (!result.state_status.ok()) {
    std::fprintf(stderr, "state error: %s\n",
                 result.state_status.ToString().c_str());
    return 1;
  }
  return 0;
}
