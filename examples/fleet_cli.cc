// Fleet-level continuous fuzzing from the command line: a crash-tolerant
// campaign coordinator sharding one campaign across N worker processes,
// with leased shards, corpus sync, a durable journal, and a status file.
//
//   ./examples/fleet_cli run [profile] [fuzzer] [flags]
//   ./examples/fleet_cli status --fleet-dir DIR
//
//   profile : pglite | mylite | marialite | comdlite       (default pglite)
//   fuzzer  : lego | lego- | squirrel | sqlancer | sqlsmith (default lego)
//
// run flags:
//   --fleet-dir DIR : journal (fleet.state), status.json, repro/ (required)
//   --workers N     : worker processes                       (default 2)
//   --shards N      : leased work units                      (default 8)
//   --shard-budget N: executions per shard                   (default 2000)
//   --seed S        : campaign base seed (shard s fuzzes under a seed
//                     derived from it)                        (default 1)
//   --resume        : continue from the fleet.state journal in --fleet-dir;
//                     completed shards are not re-run
//   --distill-every N : after every N completed shards, merge collected
//                     corpus exports, DistillCorpus, and redistribute the
//                     pool to subsequent leases (0 = off)     (default 0)
//   --oracle LIST   : logic oracles armed inside every worker, same spec
//                     grammar as fuzz_campaign_cli --oracle
//   --rule-coverage : grammar-rule feedback inside workers
//   --planted-eval-bug : test-only; plant the NOT-NULL evaluator defect in
//                     every worker so chaos sweeps have a known bug to find
//   --backend B / --storage S / --db-dir DIR / --sessions N / --max-stmt-ms N
//                   : worker execution backend (worker w uses DIR/fw<w>)
//   --lease-deadline-ms N : heartbeat deadline before a lease expires and
//                     the shard is re-queued                  (default 15000)
//   --strike-limit N : strikes before a worker slot is quarantined
//                     (worker death, expired lease, or poisoned result all
//                     count one strike)                       (default 3)
//   --respawn-backoff-ms N : base respawn delay, doubled per strike
//                                                            (default 50)
//   --progress-every N : worker heartbeat cadence in executions (default 64)
//   --chaos-fp NAME=SPEC : arm one failpoint (repeatable). Coordinator
//                     sites (fleet.journal_write, fleet.lease_grant) arm in
//                     the coordinator process; everything else arms inside
//                     every worker incarnation.
//   --worker-chaos-fp SLOT:NAME=SPEC : arm a failpoint in one worker slot
//                     only (repeatable) — lets chaos target slot 0 while
//                     the rest of the fleet stays healthy
//   --triage        : after the campaign, collect every unique finding into
//                     --fleet-dir/repro (deduped .sql tree + manifest.tsv
//                     stamped with per-worker origins)
//   --reduce        : ddmin-minimize during --triage
//   --verbose       : coordinator event log on stderr
//
// SIGTERM/SIGINT drain the fleet gracefully: leased workers finish their
// in-flight test case, in-flight shards are re-queued for a later --resume,
// a final journal is written, and the tool exits 0.

#include <csignal>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/failpoint.h"
#include "fleet/fleet.h"
#include "fleet/status_json.h"
#include "minidb/env.h"
#include "minidb/eval.h"
#include "util/hash.h"

namespace {

std::atomic<bool> g_stop_requested{false};

void HandleStopSignal(int) { g_stop_requested.store(true); }

void InstallStopHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

/// Failpoints that fire in coordinator code; everything else is worker-side
/// and must be re-armed inside each worker incarnation (workers reset the
/// inherited chaos registry at startup).
bool IsCoordinatorFailpoint(const std::string& spec) {
  return spec.rfind("fleet.journal_write", 0) == 0 ||
         spec.rfind("fleet.lease_grant", 0) == 0;
}

int RunStatus(const std::string& fleet_dir) {
  using namespace lego;  // NOLINT(build/namespaces)
  if (fleet_dir.empty()) {
    std::fprintf(stderr, "status: --fleet-dir is required\n");
    return 1;
  }
  const std::string path =
      fleet_dir + "/" + fleet::kStatusFile;
  auto content = minidb::Env::Posix()->ReadFile(path);
  if (!content.ok()) {
    std::fprintf(stderr, "status: cannot read %s: %s\n", path.c_str(),
                 content.status().ToString().c_str());
    return 1;
  }
  std::fputs(content->c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lego;  // NOLINT(build/namespaces)

  InstallStopHandlers();

  std::string command = "run";
  bool planted_eval_bug = false;
  fleet::FleetOptions options;
  fleet::FleetConfig& config = options.config;
  std::vector<std::string> chaos_fps;
  std::vector<std::string> pos;

  auto need_value = [&](int* i, const char* flag) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", flag);
      std::exit(1);
    }
    return argv[++*i];
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--fleet-dir") {
      options.fleet_dir = need_value(&i, "--fleet-dir");
    } else if (arg.rfind("--fleet-dir=", 0) == 0) {
      options.fleet_dir = arg.substr(12);
    } else if (arg == "--workers") {
      options.num_workers = std::atoi(need_value(&i, "--workers"));
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.num_workers = std::atoi(arg.c_str() + 10);
    } else if (arg == "--shards") {
      config.num_shards = std::atoi(need_value(&i, "--shards"));
    } else if (arg.rfind("--shards=", 0) == 0) {
      config.num_shards = std::atoi(arg.c_str() + 9);
    } else if (arg == "--shard-budget") {
      config.shard_budget = std::atoi(need_value(&i, "--shard-budget"));
    } else if (arg.rfind("--shard-budget=", 0) == 0) {
      config.shard_budget = std::atoi(arg.c_str() + 15);
    } else if (arg == "--seed") {
      config.base_seed = std::strtoull(need_value(&i, "--seed"), nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.base_seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--distill-every") {
      config.distill_every = std::atoi(need_value(&i, "--distill-every"));
    } else if (arg.rfind("--distill-every=", 0) == 0) {
      config.distill_every = std::atoi(arg.c_str() + 16);
    } else if (arg == "--oracle") {
      config.oracle_spec = need_value(&i, "--oracle");
    } else if (arg.rfind("--oracle=", 0) == 0) {
      config.oracle_spec = arg.substr(9);
    } else if (arg == "--rule-coverage") {
      config.rule_coverage = true;
    } else if (arg == "--planted-eval-bug") {
      planted_eval_bug = true;
    } else if (arg == "--backend" || arg.rfind("--backend=", 0) == 0) {
      std::string value = (arg == "--backend") ? need_value(&i, "--backend")
                                               : arg.substr(10);
      auto kind = fuzz::ParseBackendKind(value);
      if (!kind.has_value()) {
        std::fprintf(stderr,
                     "unknown backend '%s' (inproc | forked | concurrent)\n",
                     value.c_str());
        return 1;
      }
      config.backend.kind = *kind;
    } else if (arg == "--storage" || arg.rfind("--storage=", 0) == 0) {
      std::string value = (arg == "--storage") ? need_value(&i, "--storage")
                                               : arg.substr(10);
      auto kind = fuzz::ParseStorageKind(value);
      if (!kind.has_value()) {
        std::fprintf(stderr, "unknown storage '%s' (mem | paged)\n",
                     value.c_str());
        return 1;
      }
      config.backend.storage = *kind;
    } else if (arg == "--db-dir") {
      config.backend.db_dir = need_value(&i, "--db-dir");
    } else if (arg.rfind("--db-dir=", 0) == 0) {
      config.backend.db_dir = arg.substr(9);
    } else if (arg == "--sessions") {
      config.backend.sessions = std::atoi(need_value(&i, "--sessions"));
    } else if (arg.rfind("--sessions=", 0) == 0) {
      config.backend.sessions = std::atoi(arg.c_str() + 11);
    } else if (arg == "--max-stmt-ms") {
      config.backend.max_stmt_ms = std::atoi(need_value(&i, "--max-stmt-ms"));
    } else if (arg.rfind("--max-stmt-ms=", 0) == 0) {
      config.backend.max_stmt_ms = std::atoi(arg.c_str() + 14);
    } else if (arg == "--lease-deadline-ms") {
      options.lease_deadline_ms =
          std::atoi(need_value(&i, "--lease-deadline-ms"));
    } else if (arg.rfind("--lease-deadline-ms=", 0) == 0) {
      options.lease_deadline_ms = std::atoi(arg.c_str() + 20);
    } else if (arg == "--strike-limit") {
      options.strike_limit = std::atoi(need_value(&i, "--strike-limit"));
    } else if (arg.rfind("--strike-limit=", 0) == 0) {
      options.strike_limit = std::atoi(arg.c_str() + 15);
    } else if (arg == "--respawn-backoff-ms") {
      options.respawn_backoff_ms =
          std::atoi(need_value(&i, "--respawn-backoff-ms"));
    } else if (arg.rfind("--respawn-backoff-ms=", 0) == 0) {
      options.respawn_backoff_ms = std::atoi(arg.c_str() + 21);
    } else if (arg == "--progress-every") {
      config.progress_every = std::atoi(need_value(&i, "--progress-every"));
    } else if (arg.rfind("--progress-every=", 0) == 0) {
      config.progress_every = std::atoi(arg.c_str() + 17);
    } else if (arg == "--chaos-fp") {
      chaos_fps.emplace_back(need_value(&i, "--chaos-fp"));
    } else if (arg.rfind("--chaos-fp=", 0) == 0) {
      chaos_fps.emplace_back(arg.substr(11));
    } else if (arg == "--worker-chaos-fp" ||
               arg.rfind("--worker-chaos-fp=", 0) == 0) {
      std::string value = (arg == "--worker-chaos-fp")
                              ? need_value(&i, "--worker-chaos-fp")
                              : arg.substr(18);
      size_t colon = value.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--worker-chaos-fp needs SLOT:NAME=SPEC\n");
        return 1;
      }
      options.worker_chaos.emplace_back(std::atoi(value.substr(0, colon).c_str()),
                                        value.substr(colon + 1));
    } else if (arg == "--triage") {
      options.triage = true;
    } else if (arg == "--reduce") {
      options.reduce = true;
      options.triage = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 1;
    } else {
      pos.push_back(arg);
    }
  }

  size_t p = 0;
  if (p < pos.size() && (pos[p] == "run" || pos[p] == "status")) {
    command = pos[p++];
  }
  if (command == "status") {
    return RunStatus(options.fleet_dir);
  }
  if (p < pos.size()) config.profile = pos[p++];
  if (p < pos.size()) config.fuzzer = pos[p++];
  if (p < pos.size()) {
    std::fprintf(stderr, "unexpected positional '%s'\n", pos[p].c_str());
    return 1;
  }

  // Route chaos: coordinator-side sites arm here; worker-side sites ship to
  // every slot and are re-armed per incarnation (a respawned worker's kill:N
  // schedule restarts from hit 0).
  for (const std::string& spec : chaos_fps) {
    if (IsCoordinatorFailpoint(spec)) {
      Status st = chaos::ArmSpec(spec, config.base_seed);
      if (!st.ok()) {
        std::fprintf(stderr, "bad --chaos-fp '%s': %s\n", spec.c_str(),
                     st.ToString().c_str());
        return 1;
      }
      std::printf("chaos: coordinator failpoint armed: %s\n", spec.c_str());
    } else {
      options.worker_chaos.emplace_back(-1, spec);
      std::printf("chaos: worker failpoint armed (all slots): %s\n",
                  spec.c_str());
    }
  }

  // Set before RunFleet forks: workers inherit the planted defect, so every
  // shard fuzzes the same (deliberately buggy) engine build.
  if (planted_eval_bug) minidb::Evaluator::SetNotNullEvalBugForTesting(true);

  options.stop_flag = &g_stop_requested;

  std::printf(
      "fleet: profile=%s fuzzer=%s shards=%d x %d execs, workers=%d, "
      "fleet-dir=%s%s\n",
      config.profile.c_str(), config.fuzzer.c_str(), config.num_shards,
      config.shard_budget, options.num_workers, options.fleet_dir.c_str(),
      options.resume ? " (resume)" : "");

  fleet::FleetResult result = fleet::RunFleet(options);

  if (!result.status.ok()) {
    std::fprintf(stderr, "fleet error: %s\n", result.status.ToString().c_str());
    return 1;
  }

  // Stable summary lines — CI compares these between chaos and clean runs.
  std::printf("fleet done : shards %zu/%d (requeued %d, expired leases %d, "
              "rejected results %d, duplicates %d)\n",
              result.shards_done.size(), result.shards_total,
              result.shards_requeued, result.leases_expired,
              result.results_rejected, result.duplicate_results);
  std::printf("workers    : spawned %d, quarantined %d\n",
              result.workers_spawned, result.workers_quarantined);
  std::printf("executions : %" PRId64 " (%.0f/sec)\n", result.executions,
              result.elapsed_seconds > 0
                  ? static_cast<double>(result.executions) /
                        result.elapsed_seconds
                  : 0.0);
  std::printf("edges      : %zu\n", result.edges());
  if (config.rule_coverage) std::printf("rules      : %zu\n", result.rules);
  std::printf("unique crashes : %zu\n", result.crashes.size());
  std::printf("unique logic bugs : %zu\n", result.logic.size());
  std::printf("corpus seeds : %zu\n",
              result.corpus.size() + result.corpus_pending.size());
  if (result.distill_cycles > 0) {
    std::printf("distill    : %d cycles, %.2fs total\n", result.distill_cycles,
                result.distill_seconds);
  }
  if (result.triaged_bugs >= 0) {
    std::printf("triaged    : %d unique bugs -> %s/repro\n",
                result.triaged_bugs, options.fleet_dir.c_str());
  }

  // One digest over the deduped finding sets: two runs found the same bugs
  // iff these lines match.
  uint64_t digest = 0xf1ee7ULL;
  for (uint64_t h : result.crash_hashes()) digest = HashMix(digest, h);
  digest = HashMix(digest, 0x10916);
  for (uint64_t f : result.logic_fingerprints()) digest = HashMix(digest, f);
  std::printf("fleet bug digest : %016llx\n",
              static_cast<unsigned long long>(digest));

  if (result.stopped_early) {
    std::printf("fleet: stop signal received; drained with %zu/%d shards "
                "done (journal flushed; --resume continues)\n",
                result.shards_done.size(), result.shards_total);
  }

  // --db-dir is scratch by contract, mirroring fuzz_campaign_cli.
  if (!config.backend.db_dir.empty()) {
    (void)minidb::Env::Posix()->RemoveDirRecursive(config.backend.db_dir);
  }

  if (result.degraded) {
    std::fprintf(stderr,
                 "fleet degraded: all workers quarantined with %d shards "
                 "pending (state journaled)\n",
                 result.shards_total -
                     static_cast<int>(result.shards_done.size()));
    return 2;
  }
  return 0;
}
