// Corpus maintenance for cross-campaign reuse: inspect, merge, and distill
// the corpus files written by `fuzz_campaign_cli --export-corpus` and fed
// back with `--import-corpus`.
//
//   ./examples/corpus_cli info FILE...
//   ./examples/corpus_cli merge OUT FILE...
//   ./examples/corpus_cli distill IN OUT [profile] [--backend=inproc|forked]
//                                        [--max-stmt-ms N]
//
//   info    : print case/statement counts per file
//   merge   : concatenate corpora (dedup is distill's job)
//   distill : greedy cmin — replay IN through a fresh backend of `profile`
//             (default pglite, must match the donor campaign) and write the
//             smallest greedy subset covering the same edges to OUT
//
// Distillation exits non-zero if the kept subset somehow covers fewer
// edges than the input (a determinism violation worth failing loudly on).

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/corpus_file.h"
#include "fuzz/distill.h"
#include "fuzz/harness.h"
#include "minidb/profile.h"

namespace {

size_t TotalStatements(const std::vector<lego::fuzz::TestCase>& cases) {
  size_t n = 0;
  for (const auto& tc : cases) n += tc.size();
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lego;  // NOLINT(build/namespaces)

  fuzz::BackendOptions backend;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--backend" || arg.rfind("--backend=", 0) == 0) {
      std::string value;
      if (arg == "--backend") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "--backend needs a value\n");
          return 1;
        }
        value = argv[++i];
      } else {
        value = arg.substr(10);
      }
      std::optional<fuzz::BackendKind> kind = fuzz::ParseBackendKind(value);
      if (!kind.has_value()) {
        std::fprintf(stderr, "unknown backend '%s' (inproc | forked)\n",
                     value.c_str());
        return 1;
      }
      backend.kind = *kind;
    } else if (arg == "--max-stmt-ms") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--max-stmt-ms needs a value\n");
        return 1;
      }
      backend.max_stmt_ms = std::atoi(argv[++i]);
    } else if (arg.rfind("--max-stmt-ms=", 0) == 0) {
      backend.max_stmt_ms = std::atoi(arg.c_str() + 14);
    } else {
      pos.push_back(std::move(arg));
    }
  }

  if (pos.empty()) {
    std::fprintf(stderr,
                 "usage: corpus_cli info FILE...\n"
                 "       corpus_cli merge OUT FILE...\n"
                 "       corpus_cli distill IN OUT [profile] "
                 "[--backend=inproc|forked] [--max-stmt-ms N]\n");
    return 1;
  }
  const std::string& command = pos[0];

  if (command == "info") {
    if (pos.size() < 2) {
      std::fprintf(stderr, "info needs at least one corpus file\n");
      return 1;
    }
    for (size_t i = 1; i < pos.size(); ++i) {
      auto cases = fuzz::LoadCorpusFile(pos[i]);
      if (!cases.ok()) {
        std::fprintf(stderr, "%s: %s\n", pos[i].c_str(),
                     cases.status().ToString().c_str());
        return 1;
      }
      std::printf("%s: %zu cases, %zu statements\n", pos[i].c_str(),
                  cases->size(), TotalStatements(*cases));
    }
    return 0;
  }

  if (command == "merge") {
    if (pos.size() < 3) {
      std::fprintf(stderr, "merge needs an output and at least one input\n");
      return 1;
    }
    std::vector<fuzz::TestCase> all;
    for (size_t i = 2; i < pos.size(); ++i) {
      auto cases = fuzz::LoadCorpusFile(pos[i]);
      if (!cases.ok()) {
        std::fprintf(stderr, "%s: %s\n", pos[i].c_str(),
                     cases.status().ToString().c_str());
        return 1;
      }
      for (fuzz::TestCase& tc : *cases) all.push_back(std::move(tc));
    }
    Status saved = fuzz::SaveCorpusFile(all, pos[1]);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s: %s\n", pos[1].c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("merged %zu files -> %s (%zu cases)\n", pos.size() - 2,
                pos[1].c_str(), all.size());
    return 0;
  }

  if (command == "distill") {
    if (pos.size() < 3) {
      std::fprintf(stderr, "distill needs an input and an output file\n");
      return 1;
    }
    std::string profile_name = pos.size() > 3 ? pos[3] : "pglite";
    const minidb::DialectProfile* profile =
        minidb::DialectProfile::ByName(profile_name);
    if (profile == nullptr) {
      std::fprintf(stderr, "unknown profile '%s'\n", profile_name.c_str());
      return 1;
    }
    auto cases = fuzz::LoadCorpusFile(pos[1]);
    if (!cases.ok()) {
      std::fprintf(stderr, "%s: %s\n", pos[1].c_str(),
                   cases.status().ToString().c_str());
      return 1;
    }

    fuzz::ExecutionHarness harness(*profile, backend);
    fuzz::DistillStats stats;
    std::vector<fuzz::TestCase> kept =
        fuzz::DistillCorpus(*cases, &harness, &stats);

    Status saved = fuzz::SaveCorpusFile(kept, pos[2]);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s: %s\n", pos[2].c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("distilled %zu -> %zu cases (%zu replays on %s)\n",
                stats.original_cases, stats.kept_cases, stats.replays,
                profile->name.c_str());
    std::printf("edges before: %zu\n", stats.original_edges);
    std::printf("edges after : %zu\n", stats.kept_edges);
    if (stats.kept_edges != stats.original_edges) {
      std::fprintf(stderr,
                   "distillation lost coverage (non-deterministic replay?)\n");
      return 1;
    }
    return 0;
  }

  std::fprintf(stderr, "unknown command '%s' (info | merge | distill)\n",
               command.c_str());
  return 1;
}
