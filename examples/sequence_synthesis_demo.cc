// Walks through LEGO's two core algorithms on the paper's own examples:
//
//  1. Type-affinity analysis (Algorithm 2) over the Fig. 5 running example;
//  2. Progressive sequence synthesis (Algorithm 3) when a new affinity is
//     discovered (Fig. 6), including instantiation of a synthesized
//     sequence into executable SQL.
//
//   ./examples/sequence_synthesis_demo

#include <cstdio>

#include "fuzz/testcase.h"
#include "lego/affinity.h"
#include "lego/ast_library.h"
#include "lego/instantiator.h"
#include "lego/synthesis.h"
#include "minidb/database.h"

int main() {
  using namespace lego;  // NOLINT(build/namespaces)
  using sql::StatementType;

  // ---- Algorithm 2: affinity analysis on the Fig. 5 original seed --------
  auto seed = fuzz::TestCase::FromSql(
      "CREATE TABLE t1 (v1 INT, v2 INT);\n"
      "INSERT INTO t1 VALUES (1, 1);\n"
      "INSERT INTO t1 VALUES (2, 1);\n"
      "UPDATE t1 SET v1 = 1;\n"
      "SELECT * FROM t1 ORDER BY v1;\n");
  if (!seed.ok()) return 1;

  core::TypeAffinityMap affinities;
  auto discovered = affinities.Analyze(seed->TypeSequence());
  std::printf("Affinities from the Fig. 5 seed (%zu found):\n",
              discovered.size());
  for (const auto& [t1, t2] : discovered) {
    std::printf("  %s -> %s\n",
                std::string(sql::StatementTypeName(t1)).c_str(),
                std::string(sql::StatementTypeName(t2)).c_str());
  }

  // ---- Algorithm 3: progressive synthesis on a new affinity --------------
  core::SequenceSynthesizer synthesizer(/*max_len=*/4);
  for (const auto& [t1, t2] : affinities.All()) {
    synthesizer.AddStartType(t1);
    synthesizer.AddStartType(t2);
    synthesizer.OnNewAffinity(t1, t2, affinities);
  }
  size_t before = synthesizer.TotalSequences();

  // The Fig. 5 substitution discovers INSERT -> DELETE; only sequences
  // containing the new affinity are enumerated.
  affinities.Add(StatementType::kInsert, StatementType::kDelete);
  synthesizer.AddStartType(StatementType::kDelete);
  auto fresh = synthesizer.OnNewAffinity(StatementType::kInsert,
                                         StatementType::kDelete, affinities);
  std::printf(
      "\nNew affinity INSERT -> DELETE: %zu new sequences "
      "(S grew %zu -> %zu):\n",
      fresh.size(), before, synthesizer.TotalSequences());
  size_t shown = 0;
  for (const auto& seq : fresh) {
    if (shown++ >= 6) break;
    std::printf("  ");
    for (auto t : seq) {
      std::printf("[%s] ", std::string(sql::StatementTypeName(t)).c_str());
    }
    std::printf("\n");
  }

  // ---- Instantiation: sequence -> executable test case -------------------
  Rng rng(99);
  core::AstLibrary library;
  library.AddTestCase(*seed);  // donate the seed's AST skeletons
  core::Instantiator instantiator(&minidb::DialectProfile::PgLite(), &library,
                                  &rng);
  std::vector<StatementType> target = {
      StatementType::kCreateTable, StatementType::kInsert,
      StatementType::kDelete, StatementType::kSelect};
  fuzz::TestCase tc = instantiator.Instantiate(target);
  std::printf("\nInstantiated [CREATE TABLE][INSERT][DELETE][SELECT]:\n%s",
              tc.ToSql().c_str());

  // Prove it executes against a fresh database.
  minidb::Database db(&minidb::DialectProfile::PgLite());
  auto run = db.ExecuteScript(tc.ToSql());
  if (run.ok()) {
    std::printf("\nexecuted: %d ok, %d errors\n", run->executed,
                run->errors);
  }
  return 0;
}
