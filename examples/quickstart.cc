// Quickstart: embed the minidb engine, run SQL against it, then launch a
// short LEGO fuzzing campaign and inspect what it found.
//
//   ./examples/quickstart

#include <cstdio>

#include "fuzz/campaign.h"
#include "fuzz/harness.h"
#include "lego/lego_fuzzer.h"
#include "minidb/database.h"
#include "sql/parser.h"

int main() {
  using namespace lego;  // NOLINT(build/namespaces)

  // --- Part 1: minidb as a library ---------------------------------------
  minidb::Database db(&minidb::DialectProfile::PgLite());
  auto script = db.ExecuteScript(
      "CREATE TABLE users (id INT PRIMARY KEY, name TEXT, age INT);\n"
      "INSERT INTO users VALUES (1, 'ada', 36), (2, 'alan', 41), "
      "(3, 'grace', 85);\n");
  if (!script.ok()) {
    std::printf("setup failed: %s\n", script.status().ToString().c_str());
    return 1;
  }

  auto query = sql::Parser::ParseStatement(
      "SELECT name, age FROM users WHERE age > 38 ORDER BY age DESC");
  auto result = db.Execute(**query);
  std::printf("query: %s\n", sql::ToSql(**query).c_str());
  for (const auto& row : result->rows) {
    std::printf("  %-8s %s\n", row[0].ToText().c_str(),
                row[1].ToText().c_str());
  }

  // --- Part 2: a 20-second-scale LEGO campaign ---------------------------
  const auto& profile = minidb::DialectProfile::MariaLite();
  fuzz::ExecutionHarness harness(profile);
  core::LegoOptions options;
  options.rng_seed = 2024;
  core::LegoFuzzer lego(profile, options);

  fuzz::CampaignOptions campaign;
  campaign.max_executions = 5000;
  campaign.snapshot_every = 1000;
  fuzz::CampaignResult outcome =
      fuzz::RunCampaign(&lego, &harness, campaign);

  std::printf("\nLEGO on %s after %d executions:\n", profile.name.c_str(),
              outcome.executions);
  std::printf("  branches covered : %zu\n", outcome.edges);
  std::printf("  type-affinities  : %zu (map: %zu)\n",
              outcome.affinities.size(), lego.affinities().Count());
  std::printf("  sequences in S   : %zu\n",
              lego.synthesizer().TotalSequences());
  std::printf("  corpus seeds     : %zu\n", lego.corpus_size());
  std::printf("  unique bugs      : %zu\n", outcome.bug_ids.size());
  for (const std::string& bug : outcome.bug_ids) {
    std::printf("    %s\n", bug.c_str());
  }
  return 0;
}
