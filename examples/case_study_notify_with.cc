// Reproduces the paper's §V-B case study (experiment E7): a PostgreSQL SEGV
// where an INSTEAD rule rewrites the INSERT inside a WITH clause into a
// NOTIFY, leaving the planner with a NULL jointree. The minidb + fault
// oracle stand-in raises the same observable crash for the same SQL Type
// Sequence: CREATE RULE -> NOTIFY -> COPY -> WITH.
//
//   ./examples/case_study_notify_with

#include <cstdio>

#include "faults/bug_engine.h"
#include "minidb/database.h"
#include "sql/parser.h"

int main() {
  using namespace lego;  // NOLINT(build/namespaces)

  minidb::Database db(&minidb::DialectProfile::PgLite());
  faults::BugEngine oracle("pglite");
  db.set_fault_hook(&oracle);

  const char* kFig7 =
      "CREATE TABLE v0 (v4 INT, v3 INT UNIQUE, v2 INT, v1 INT UNIQUE);\n"
      "CREATE OR REPLACE RULE v1 AS ON INSERT TO v0 DO INSTEAD "
      "NOTIFY compression;\n"
      "COPY (SELECT 32 EXCEPT SELECT v3 + 16 FROM v0) TO STDOUT CSV "
      "HEADER;\n"
      "WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE "
      "v3 = - - - 48;\n";

  std::printf("Executing the paper's Fig. 7 test case:\n%s\n", kFig7);

  auto stmts = sql::Parser::ParseScript(kFig7);
  if (!stmts.ok()) {
    std::printf("parse error: %s\n", stmts.status().ToString().c_str());
    return 1;
  }
  for (const auto& stmt : *stmts) {
    auto result = db.Execute(*stmt);
    std::printf("  %-70.70s  ", sql::ToSql(*stmt).c_str());
    if (result.ok()) {
      std::printf("ok\n");
      continue;
    }
    std::printf("%s\n", result.status().ToString().c_str());
    if (result.status().IsCrash()) break;
  }

  std::printf("\nExecuted SQL Type Sequence (the oracle's view):\n  ");
  for (auto type : db.session().type_trace) {
    std::printf("[%s] ", std::string(sql::StatementTypeName(type)).c_str());
  }
  std::printf("\n");

  if (db.last_crash().has_value()) {
    const auto& crash = *db.last_crash();
    std::printf("\nServer crashed (simulated ASAN report):\n");
    std::printf("  bug        : %s\n", crash.bug_id.c_str());
    std::printf("  kind       : %s (paper: SEGV in replace_empty_jointree)\n",
                crash.kind.c_str());
    std::printf("  component  : %s\n", crash.component.c_str());
    std::printf("  stack hash : %016lx\n",
                static_cast<unsigned long>(crash.stack_hash));
    std::printf("  detail     : %s\n", crash.message.c_str());
    return 0;
  }
  std::printf("\nunexpected: no crash raised\n");
  return 1;
}
