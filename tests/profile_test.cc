#include "minidb/profile.h"

#include <gtest/gtest.h>

#include "sql/statement_type.h"

namespace lego::minidb {
namespace {

using sql::StatementType;

TEST(ProfileTest, TypeCountsFollowPaperOrdering) {
  // Paper: PostgreSQL 188 > MariaDB 160 > MySQL 158 >> Comdb2 24, scaled to
  // our 46-type taxonomy with Comdb2's 24 matched exactly.
  EXPECT_EQ(DialectProfile::PgLite().TypeCount(), sql::kNumStatementTypes);
  EXPECT_EQ(DialectProfile::ComdLite().TypeCount(), 24);
  EXPECT_GT(DialectProfile::PgLite().TypeCount(),
            DialectProfile::MariaLite().TypeCount());
  EXPECT_GT(DialectProfile::MariaLite().TypeCount(),
            DialectProfile::MyLite().TypeCount());
  EXPECT_GT(DialectProfile::MyLite().TypeCount(),
            DialectProfile::ComdLite().TypeCount());
}

TEST(ProfileTest, DialectFeatureDifferences) {
  EXPECT_TRUE(DialectProfile::PgLite().Supports(StatementType::kCreateRule));
  EXPECT_TRUE(DialectProfile::PgLite().Supports(StatementType::kNotify));
  EXPECT_TRUE(DialectProfile::PgLite().Supports(StatementType::kCopy));

  EXPECT_FALSE(DialectProfile::MyLite().Supports(StatementType::kCreateRule));
  EXPECT_FALSE(DialectProfile::MyLite().Supports(StatementType::kNotify));
  EXPECT_FALSE(DialectProfile::MyLite().Supports(StatementType::kCopy));

  // MariaDB keeps the COPY-style export MySQL lacks.
  EXPECT_TRUE(DialectProfile::MariaLite().Supports(StatementType::kCopy));
  EXPECT_FALSE(
      DialectProfile::MariaLite().Supports(StatementType::kCreateRule));

  EXPECT_FALSE(DialectProfile::ComdLite().supports_window_functions);
  EXPECT_TRUE(DialectProfile::ComdLite().Supports(StatementType::kSelect));
  EXPECT_FALSE(DialectProfile::ComdLite().Supports(StatementType::kGrant));
}

TEST(ProfileTest, EnabledTypesMatchesMaskAndSupports) {
  for (const auto* profile : DialectProfile::All()) {
    auto enabled = profile->EnabledTypes();
    EXPECT_EQ(static_cast<int>(enabled.size()), profile->TypeCount());
    for (StatementType t : enabled) {
      EXPECT_TRUE(profile->Supports(t));
    }
  }
}

TEST(ProfileTest, ByNameResolvesAllProfiles) {
  EXPECT_EQ(DialectProfile::ByName("pglite"), &DialectProfile::PgLite());
  EXPECT_EQ(DialectProfile::ByName("mylite"), &DialectProfile::MyLite());
  EXPECT_EQ(DialectProfile::ByName("marialite"),
            &DialectProfile::MariaLite());
  EXPECT_EQ(DialectProfile::ByName("comdlite"), &DialectProfile::ComdLite());
  EXPECT_EQ(DialectProfile::ByName("oracle"), nullptr);
}

TEST(ProfileTest, AllReturnsPaperOrder) {
  const auto& all = DialectProfile::All();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->name, "pglite");
  EXPECT_EQ(all[1]->name, "mylite");
  EXPECT_EQ(all[2]->name, "marialite");
  EXPECT_EQ(all[3]->name, "comdlite");
}

TEST(StatementTypeTest, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (StatementType t : sql::AllStatementTypes()) {
    std::string_view name = sql::StatementTypeName(t);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "UNKNOWN");
    EXPECT_TRUE(names.insert(name).second) << name;
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(sql::kNumStatementTypes));
}

TEST(StatementTypeTest, CategoriesPartitionTheTaxonomy) {
  int ddl = 0;
  int dml = 0;
  int dql = 0;
  int dcl = 0;
  int tcl = 0;
  int util = 0;
  for (StatementType t : sql::AllStatementTypes()) {
    switch (sql::CategoryOf(t)) {
      case sql::StatementCategory::kDdl: ++ddl; break;
      case sql::StatementCategory::kDml: ++dml; break;
      case sql::StatementCategory::kDql: ++dql; break;
      case sql::StatementCategory::kDcl: ++dcl; break;
      case sql::StatementCategory::kTcl: ++tcl; break;
      case sql::StatementCategory::kUtility: ++util; break;
    }
  }
  EXPECT_EQ(ddl, 14);
  EXPECT_EQ(dml, 5);
  EXPECT_EQ(dql, 3);
  EXPECT_EQ(dcl, 4);
  EXPECT_EQ(tcl, 6);
  EXPECT_EQ(util, 14);
  EXPECT_EQ(ddl + dml + dql + dcl + tcl + util, sql::kNumStatementTypes);
}

}  // namespace
}  // namespace lego::minidb
