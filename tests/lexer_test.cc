#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace lego::sql {
namespace {

std::vector<Token> MustLex(const std::string& text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  EXPECT_TRUE(tokens.ok()) << text << ": " << tokens.status().ToString();
  return tokens.ok() ? std::move(*tokens) : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].IsEof());
}

TEST(LexerTest, Identifiers) {
  auto tokens = MustLex("foo _bar Baz9 qux$1");
  ASSERT_EQ(tokens.size(), 5u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kIdentifier);
  }
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[2].text, "Baz9");
}

TEST(LexerTest, QuotedIdentifiers) {
  auto tokens = MustLex("\"select\" \"with space\"");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].text, "with space");
}

TEST(LexerTest, NumericLiterals) {
  auto tokens = MustLex("42 3.5 .5 1e9 2E-3 7e 1.");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntegerLiteral);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(tokens[3].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(tokens[4].kind, TokenKind::kFloatLiteral);
  // "7e" is integer 7 followed by identifier e (no exponent digits).
  EXPECT_EQ(tokens[5].kind, TokenKind::kIntegerLiteral);
  EXPECT_EQ(tokens[6].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[7].kind, TokenKind::kFloatLiteral);  // "1."
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = MustLex("'abc' '' 'it''s'");
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "abc");
  EXPECT_EQ(tokens[1].text, "");
  EXPECT_EQ(tokens[2].text, "it's");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = MustLex("( ) , ; . * + - / % = <> != < <= > >= || @@");
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  std::vector<TokenKind> want = {
      TokenKind::kLParen, TokenKind::kRParen, TokenKind::kComma,
      TokenKind::kSemicolon, TokenKind::kDot, TokenKind::kStar,
      TokenKind::kPlus, TokenKind::kMinus, TokenKind::kSlash,
      TokenKind::kPercent, TokenKind::kEq, TokenKind::kNotEq,
      TokenKind::kNotEq, TokenKind::kLt, TokenKind::kLtEq, TokenKind::kGt,
      TokenKind::kGtEq, TokenKind::kConcat, TokenKind::kAtAt,
      TokenKind::kEof};
  EXPECT_EQ(kinds, want);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = MustLex(
      "SELECT -- trailing comment\n 1 /* block */ + /*multi\nline*/ 2");
  // SELECT, 1, +, 2, EOF.
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[1].text, "1");
  EXPECT_EQ(tokens[3].text, "2");
}

TEST(LexerTest, OffsetsTrackSource) {
  auto tokens = MustLex("ab  cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 4u);
}

TEST(LexerTest, ErrorsOnUnterminatedString) {
  Lexer lexer("'abc");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, ErrorsOnUnterminatedQuotedIdentifier) {
  Lexer lexer("\"abc");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, ErrorsOnStrayCharacters) {
  EXPECT_FALSE(Lexer("a ! b").Tokenize().ok());
  EXPECT_FALSE(Lexer("a | b").Tokenize().ok());
  EXPECT_FALSE(Lexer("a @ b").Tokenize().ok());
  EXPECT_FALSE(Lexer("a # b").Tokenize().ok());
}

TEST(LexerTest, UnterminatedBlockCommentConsumesRest) {
  auto tokens = MustLex("SELECT /* never closed");
  ASSERT_EQ(tokens.size(), 2u);  // SELECT, EOF
}

}  // namespace
}  // namespace lego::sql
