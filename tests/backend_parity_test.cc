// Backend parity: a forked child driven over the pipe protocol must be
// observationally identical to the embedded in-process engine — same
// executed / rejected / crash stream for the same test cases. This is the
// contract that makes campaign and triage results backend-agnostic.
//
// Coverage parity holds for parse-normal test cases (anything that came
// from SQL text). Raw generated ASTs can differ from their own printed
// form in literal representation — e.g. Literal(-12) prints as "-12" and
// re-parses as unary-minus over Literal(12) — so the forked child, which
// executes the wire-format SQL text, can touch a small superset of eval
// edges. The first suite pins the strict statement-outcome parity on raw
// cases; the second pins *full* parity (coverage included) on normalized
// cases, proving the pipe protocol itself loses nothing.

#include <gtest/gtest.h>

#include <string>

#include "fuzz/backend.h"
#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "lego/lego_fuzzer.h"
#include "minidb/profile.h"

namespace lego::fuzz {
namespace {

constexpr int kCases = 200;

struct ParityOptions {
  /// Re-parse each generated case from its own SQL before running it, so
  /// both backends execute structurally identical statements.
  bool normalize = false;
  /// Also require identical coverage feedback (normalized cases only).
  bool compare_coverage = false;
};

/// Drives kCases fuzzer-generated test cases through an in-process harness
/// and a forked harness in lockstep, comparing every ExecResult field that
/// campaigns and triage consume. The fuzzer's feedback loop is fed from the
/// in-process results, so both harnesses see the identical case stream.
void ExpectParity(const std::string& profile_name, uint64_t seed,
                  const ParityOptions& popt) {
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName(profile_name);
  ASSERT_NE(profile, nullptr);

  core::LegoOptions options;
  options.rng_seed = seed;
  core::LegoFuzzer fuzzer(*profile, options);

  ExecutionHarness inproc(*profile);
  BackendOptions forked_options;
  forked_options.kind = BackendKind::kForked;
  ExecutionHarness forked(*profile, forked_options);

  fuzzer.Prepare(&inproc);
  for (int i = 0; i < kCases; ++i) {
    TestCase generated = fuzzer.Next();
    TestCase tc = generated.Clone();
    if (popt.normalize) {
      auto reparsed = TestCase::FromSql(generated.ToSql());
      // Print→parse is a guaranteed fixed point for printed output, but a
      // raw generated AST may not re-parse (dialect-invalid constructs are
      // part of the fuzzing diet) — skip those for the normalized suite.
      if (!reparsed.ok()) continue;
      tc = std::move(*reparsed);
    }

    ExecResult a = inproc.Run(tc);
    ExecResult b = forked.Run(tc);

    const std::string sql = tc.ToSql();
    EXPECT_EQ(a.executed, b.executed) << "case " << i << ":\n" << sql;
    EXPECT_EQ(a.errors, b.errors) << "case " << i << ":\n" << sql;
    EXPECT_EQ(a.crashed, b.crashed) << "case " << i << ":\n" << sql;
    if (a.crashed && b.crashed) {
      EXPECT_EQ(a.crash.bug_id, b.crash.bug_id) << "case " << i;
      EXPECT_EQ(a.crash.stack_hash, b.crash.stack_hash) << "case " << i;
      EXPECT_EQ(a.crash.component, b.crash.component) << "case " << i;
    }
    EXPECT_FALSE(b.hang) << "case " << i;
    if (popt.compare_coverage) {
      EXPECT_EQ(a.new_coverage, b.new_coverage)
          << "case " << i << ":\n" << sql;
      EXPECT_EQ(a.total_edges, b.total_edges) << "case " << i << ":\n" << sql;
    }

    if (a.executed != b.executed || a.errors != b.errors ||
        a.crashed != b.crashed) {
      return;  // first divergence pinpointed; later cases only add noise
    }
    fuzzer.OnResult(tc, a);
  }
}

TEST(BackendParityTest, Pglite) { ExpectParity("pglite", 11, {}); }
TEST(BackendParityTest, Mylite) { ExpectParity("mylite", 12, {}); }
TEST(BackendParityTest, Marialite) { ExpectParity("marialite", 13, {}); }
TEST(BackendParityTest, Comdlite) { ExpectParity("comdlite", 14, {}); }

TEST(BackendParityTest, PgliteNormalizedCoverage) {
  ExpectParity("pglite", 21, {/*normalize=*/true, /*compare_coverage=*/true});
}
TEST(BackendParityTest, MarialiteNormalizedCoverage) {
  ExpectParity("marialite", 23,
               {/*normalize=*/true, /*compare_coverage=*/true});
}

}  // namespace
}  // namespace lego::fuzz
