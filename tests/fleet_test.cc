// Fleet coordinator robustness tests: shard purity against an in-process
// reference, corpus distill/redistribute equivalence, worker kills mid-shard,
// coordinator SIGKILL + resume, poisoned-result quarantine, heartbeat-loss
// lease expiry, and graceful drain + resume.
//
// Every fleet config arms the TLP oracle against the planted NOT-NULL
// evaluator defect: logic bugs then surface within a few hundred executions,
// so small (fast) shard budgets still produce non-empty finding sets worth
// comparing across chaos and clean runs. The planted flag is process-global
// and is inherited by forked workers, so the whole fleet fuzzes the same
// deliberately buggy engine build.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/failpoint.h"
#include "fleet/fleet.h"
#include "fleet/journal.h"
#include "fleet/protocol.h"
#include "fleet/shard.h"
#include "fleet/status_json.h"
#include "minidb/env.h"
#include "minidb/eval.h"

namespace lego::fleet {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "lego_fleet_" + name + "_" +
                    std::to_string(static_cast<long long>(getpid()));
  (void)minidb::Env::Posix()->RemoveDirRecursive(dir);
  return dir;
}

FleetConfig BaseConfig() {
  FleetConfig config;
  config.profile = "pglite";
  config.fuzzer = "lego";
  config.base_seed = 3;
  config.num_shards = 4;
  config.shard_budget = 500;
  config.oracle_spec = "tlp";
  return config;
}

/// The single-process ground truth: runs every shard in-order in this
/// process through the same ExecuteShard + UpdatePool the coordinator uses,
/// merging the same way. A healthy fleet of any worker count must reproduce
/// these sets exactly (shard purity), as long as either distill is off (the
/// imported pool stays empty regardless of completion order) or the fleet
/// runs one worker (completion order matches shard order).
struct Reference {
  int64_t executions = 0;
  std::set<uint64_t> crash_hashes;
  std::set<uint64_t> logic_fps;
  cov::GlobalCoverage coverage;
  std::vector<fuzz::TestCase> pool;
  std::vector<fuzz::TestCase> pending;
  int distill_cycles = 0;
  double distill_seconds = 0.0;

  size_t corpus_total() const { return pool.size() + pending.size(); }
};

Reference RunReference(const FleetConfig& config) {
  Reference ref;
  int completed = 0;
  for (int s = 0; s < config.num_shards; ++s) {
    auto outcome = ExecuteShard(config, s, ref.pool, nullptr, {});
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (!outcome.ok()) return ref;
    EXPECT_TRUE(outcome->complete);
    ref.executions += outcome->result.executions;
    for (uint64_t h : outcome->result.crash_hashes) ref.crash_hashes.insert(h);
    for (uint64_t f : outcome->result.logic_fingerprints) {
      ref.logic_fps.insert(f);
    }
    ref.coverage.MergeFrom(outcome->coverage);
    ++completed;
    Status st =
        UpdatePool(config, completed, std::move(outcome->result.corpus_export),
                   &ref.pool, &ref.pending, &ref.distill_cycles,
                   &ref.distill_seconds);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return ref;
}

void ExpectMatchesReference(const FleetResult& result, const Reference& ref) {
  EXPECT_EQ(result.executions, ref.executions);
  EXPECT_EQ(result.crash_hashes(), ref.crash_hashes);
  EXPECT_EQ(result.logic_fingerprints(), ref.logic_fps);
  EXPECT_EQ(result.edges(), ref.coverage.CoveredEdges());
  EXPECT_EQ(result.corpus.size() + result.corpus_pending.size(),
            ref.corpus_total());
}

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    chaos::DisarmAll();
    minidb::Evaluator::SetNotNullEvalBugForTesting(true);
  }
  void TearDown() override {
    minidb::Evaluator::SetNotNullEvalBugForTesting(false);
    chaos::DisarmAll();
  }
};

// --- wire protocol -------------------------------------------------------

TEST_F(FleetTest, FrameRoundTripAndReassembly) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(SendFrame(fds[1], MsgType::kHeartbeat, "payload-bytes").ok());
  uint8_t type = 0;
  std::string payload;
  ASSERT_TRUE(RecvFrame(fds[0], &type, &payload).ok());
  EXPECT_EQ(type, static_cast<uint8_t>(MsgType::kHeartbeat));
  EXPECT_EQ(payload, "payload-bytes");
  ::close(fds[1]);
  // Clean EOF (peer gone before a frame started) is NotFound, not an error.
  Status eof = RecvFrame(fds[0], &type, &payload);
  EXPECT_EQ(eof.code(), StatusCode::kNotFound);
  ::close(fds[0]);

  // Byte-at-a-time reassembly: frames only pop once complete.
  std::string wire;
  AppendU32(&wire, 1 + 3);  // type + "abc"
  wire.push_back(static_cast<char>(MsgType::kResult));
  wire += "abc";
  FrameBuffer buffer;
  std::string got;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    buffer.Append(wire.data() + i, 1);
    EXPECT_FALSE(buffer.Next(&type, &got));
  }
  buffer.Append(wire.data() + wire.size() - 1, 1);
  ASSERT_TRUE(buffer.Next(&type, &got));
  EXPECT_EQ(type, static_cast<uint8_t>(MsgType::kResult));
  EXPECT_EQ(got, "abc");
  EXPECT_EQ(buffer.buffered(), 0u);

  // A corrupt length prefix poisons the buffer instead of allocating.
  std::string bogus;
  AppendU32(&bogus, kMaxFrameBytes + 1);
  buffer.Append(bogus.data(), bogus.size());
  EXPECT_FALSE(buffer.Next(&type, &got));
  EXPECT_TRUE(buffer.Overflowed());
}

// --- clean fleets reproduce the single-process campaign ------------------

TEST_F(FleetTest, CleanFleetMatchesReference) {
  FleetConfig config = BaseConfig();
  Reference ref = RunReference(config);
  ASSERT_FALSE(ref.logic_fps.empty());  // planted bug must be visible

  for (int workers : {1, 2}) {
    FleetOptions options;
    options.config = config;
    options.num_workers = workers;
    options.fleet_dir = FreshDir("clean_w" + std::to_string(workers));
    FleetResult result = RunFleet(options);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_FALSE(result.degraded);
    EXPECT_FALSE(result.stopped_early);
    EXPECT_EQ(result.shards_done.size(),
              static_cast<size_t>(config.num_shards));
    EXPECT_EQ(result.shards_requeued, 0);
    EXPECT_EQ(result.results_rejected, 0);
    ExpectMatchesReference(result, ref);

    // The control plane left a parseable final status behind.
    auto status_json = minidb::Env::Posix()->ReadFile(options.fleet_dir + "/" +
                                                      kStatusFile);
    ASSERT_TRUE(status_json.ok());
    for (const char* key :
         {"\"shards_done\"", "\"execs_per_sec\"", "\"workers\"",
          "\"unique_logic_bugs\"", "\"degraded\"", "\"storage\""}) {
      EXPECT_NE(status_json->find(key), std::string::npos) << key;
    }
  }
}

// --- merge -> distill -> redistribute ------------------------------------

TEST_F(FleetTest, DistillRedistributeMatchesReference) {
  FleetConfig config = BaseConfig();
  config.shard_budget = 400;
  config.distill_every = 2;
  Reference ref = RunReference(config);
  ASSERT_GT(ref.distill_cycles, 0);

  // One worker: fleet completion order == shard order, so the pool each
  // lease imports evolves exactly like the reference's.
  FleetOptions options;
  options.config = config;
  options.num_workers = 1;
  options.fleet_dir = FreshDir("distill");
  FleetResult result = RunFleet(options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.shards_done.size(), static_cast<size_t>(config.num_shards));
  EXPECT_EQ(result.distill_cycles, ref.distill_cycles);
  EXPECT_EQ(result.corpus.size(), ref.pool.size());
  ExpectMatchesReference(result, ref);
}

// --- worker killed mid-shard: requeue without loss ------------------------

TEST_F(FleetTest, WorkerKillMidShardRequeuesWithoutLoss) {
  FleetConfig config = BaseConfig();
  config.num_shards = 4;
  config.shard_budget = 800;  // ~14 heartbeats per shard at progress_every=64
  Reference ref = RunReference(config);

  // Slot 0 dies on its 20th heartbeat each incarnation: it completes one
  // shard (~14 beats), then is SIGKILLed partway into its next lease. The
  // shard re-queues; slot 1 (healthy) keeps the fleet finishing.
  FleetOptions options;
  options.config = config;
  options.num_workers = 2;
  options.fleet_dir = FreshDir("workerkill");
  options.respawn_backoff_ms = 10;
  options.worker_chaos.push_back({0, "fleet.heartbeat=kill:20"});
  FleetResult result = RunFleet(options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.shards_done.size(), static_cast<size_t>(config.num_shards));
  EXPECT_GE(result.shards_requeued, 1);
  EXPECT_GE(result.workers_spawned, 3);  // at least one respawn happened
  ExpectMatchesReference(result, ref);
}

// --- coordinator SIGKILL mid-campaign, then --resume ----------------------

TEST_F(FleetTest, CoordinatorKillAndResumeLosesNothing) {
  FleetConfig config = BaseConfig();
  Reference ref = RunReference(config);
  const std::string fleet_dir = FreshDir("coordkill");

  // Child coordinator arms fleet.journal_write=kill:3: the setup journal
  // and the first accepted-result journal land on disk, then the third save
  // SIGKILLs the coordinator before writing a byte — the journal on disk
  // stays the last good state.
  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    (void)chaos::ArmSpec("fleet.journal_write=kill:3", config.base_seed);
    FleetOptions options;
    options.config = config;
    options.num_workers = 2;
    options.fleet_dir = fleet_dir;
    (void)RunFleet(options);
    _exit(7);  // unreachable when the failpoint fires
  }
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status));
  EXPECT_EQ(WTERMSIG(wait_status), SIGKILL);

  // The journal survived the kill and already holds completed shards.
  FleetResult journaled;
  ASSERT_TRUE(LoadJournal(fleet_dir, config, &journaled).ok());
  EXPECT_GE(journaled.shards_done.size(), 1u);
  EXPECT_LT(journaled.shards_done.size(),
            static_cast<size_t>(config.num_shards));

  // Resume (failpoints clean): only the missing shards re-run, and the
  // merged outcome equals an uninterrupted campaign.
  FleetOptions options;
  options.config = config;
  options.num_workers = 2;
  options.fleet_dir = fleet_dir;
  options.resume = true;
  FleetResult result = RunFleet(options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.resumed);
  EXPECT_EQ(result.shards_done.size(), static_cast<size_t>(config.num_shards));
  ExpectMatchesReference(result, ref);

  // A resume under a different campaign identity must refuse the journal.
  FleetConfig other = config;
  other.base_seed = config.base_seed + 1;
  FleetOptions mismatched = options;
  mismatched.config = other;
  FleetResult refused = RunFleet(mismatched);
  EXPECT_FALSE(refused.status.ok());
}

// --- poisoned results: strikes, quarantine, graceful degradation ----------

TEST_F(FleetTest, QuarantineAfterThreePoisonedResults) {
  FleetConfig config = BaseConfig();
  config.num_shards = 2;
  config.shard_budget = 200;

  // The only worker poisons every result envelope, so the coordinator
  // rejects 3 results (checksum mismatch), strikes the slot each time, and
  // quarantines it — then returns degraded instead of stalling.
  FleetOptions options;
  options.config = config;
  options.num_workers = 1;
  options.fleet_dir = FreshDir("poison");
  options.strike_limit = 3;
  options.respawn_backoff_ms = 10;
  options.worker_chaos.push_back({0, "fleet.result_write=always"});
  FleetResult result = RunFleet(options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.results_rejected, 3);
  EXPECT_EQ(result.workers_quarantined, 1);
  EXPECT_TRUE(result.shards_done.empty());
  EXPECT_EQ(result.shards_requeued, 3);
  // Nothing poisoned leaked into the merged state.
  EXPECT_EQ(result.executions, 0);
  EXPECT_TRUE(result.crashes.empty());
  EXPECT_TRUE(result.logic.empty());
}

// --- heartbeat loss: lease expiry requeues the shard ----------------------

TEST_F(FleetTest, HeartbeatLossExpiresLeaseAndRequeues) {
  FleetConfig config = BaseConfig();
  config.num_shards = 2;
  config.shard_budget = 4000;  // long enough to outlive the lease deadline
  Reference ref = RunReference(config);

  // Slot 0 fuzzes but never heartbeats (failpoint swallows them, including
  // the lease-accept beat), so its lease expires and the shard re-queues to
  // the healthy slot. strike_limit=1 quarantines the mute on first expiry.
  FleetOptions options;
  options.config = config;
  options.num_workers = 2;
  options.fleet_dir = FreshDir("mute");
  options.lease_deadline_ms = 300;
  options.strike_limit = 1;
  options.worker_chaos.push_back({0, "fleet.heartbeat=always"});
  FleetResult result = RunFleet(options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_FALSE(result.degraded);
  EXPECT_GE(result.leases_expired, 1);
  EXPECT_EQ(result.workers_quarantined, 1);
  EXPECT_EQ(result.shards_done.size(), static_cast<size_t>(config.num_shards));
  ExpectMatchesReference(result, ref);
}

// --- graceful drain + resume ----------------------------------------------

TEST_F(FleetTest, GracefulShutdownDrainsAndResumeCompletes) {
  FleetConfig config = BaseConfig();
  config.shard_budget = 5000;
  Reference ref = RunReference(config);
  const std::string fleet_dir = FreshDir("drain");

  std::atomic<bool> stop{false};
  std::thread stopper([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
  });
  FleetOptions options;
  options.config = config;
  options.num_workers = 2;
  options.fleet_dir = fleet_dir;
  options.stop_flag = &stop;
  FleetResult drained = RunFleet(options);
  stopper.join();
  ASSERT_TRUE(drained.status.ok()) << drained.status.ToString();
  EXPECT_TRUE(drained.stopped_early);
  EXPECT_LT(drained.shards_done.size(),
            static_cast<size_t>(config.num_shards));

  // Partial (drained) results were discarded, not merged: resume reproduces
  // the uninterrupted campaign exactly.
  options.stop_flag = nullptr;
  options.resume = true;
  FleetResult result = RunFleet(options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.resumed);
  EXPECT_FALSE(result.stopped_early);
  EXPECT_EQ(result.shards_done.size(), static_cast<size_t>(config.num_shards));
  ExpectMatchesReference(result, ref);
}

// --- journal round trip ----------------------------------------------------

TEST_F(FleetTest, JournalRoundTripsMergedState) {
  FleetConfig config = BaseConfig();
  config.num_shards = 2;
  config.shard_budget = 300;

  FleetOptions options;
  options.config = config;
  options.num_workers = 1;
  options.fleet_dir = FreshDir("journal");
  FleetResult result = RunFleet(options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  FleetResult loaded;
  ASSERT_TRUE(LoadJournal(options.fleet_dir, config, &loaded).ok());
  EXPECT_EQ(loaded.executions, result.executions);
  EXPECT_EQ(loaded.shards_done, result.shards_done);
  EXPECT_EQ(loaded.crash_hashes(), result.crash_hashes());
  EXPECT_EQ(loaded.logic_fingerprints(), result.logic_fingerprints());
  EXPECT_EQ(loaded.edges(), result.edges());
  EXPECT_EQ(loaded.corpus.size(), result.corpus.size());
  EXPECT_EQ(loaded.corpus_pending.size(), result.corpus_pending.size());
  for (const auto& [hash, origin] : result.crash_origins) {
    EXPECT_EQ(loaded.crash_origins[hash], origin);
  }
  for (const auto& [fp, origin] : result.logic_origins) {
    EXPECT_EQ(loaded.logic_origins[fp], origin);
  }
}

}  // namespace
}  // namespace lego::fleet
