// Oracle conformance harness: every logic oracle (TLP, NoREC, clause-guided)
// must produce ZERO false positives against the clean engine across fuzzed
// workloads on every dialect profile, must be deterministic (byte-identical
// rerun), and must either flag the planted NOT-NULL evaluator defect or be
// explicitly asserted blind to it:
//
//   oracle  | planted NOT-NULL eval bug
//   --------+---------------------------------------------------------------
//   tlp     | CAUGHT  — NULL-phi rows land in both NOT-phi and phi-IS-NULL
//   clause  | CAUGHT  — WHERE slot evaluates NOT p over the query's own p
//   norec   | BLIND   — both sides run p through the same Evaluator, so an
//           |           eval defect distorts them identically (NoREC targets
//           |           optimization asymmetries, e.g. index-path bugs)

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fuzz/backend_inproc.h"
#include "fuzz/campaign.h"
#include "fuzz/checkpoint.h"
#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "lego/lego_fuzzer.h"
#include "minidb/database.h"
#include "minidb/eval.h"
#include "triage/clause_oracle.h"
#include "triage/norec_oracle.h"
#include "triage/oracle_suite.h"
#include "triage/tlp_oracle.h"

namespace lego::triage {
namespace {

constexpr int kCasesPerProfile = 500;
const char* const kProfiles[] = {"pglite", "mylite", "marialite", "comdlite"};
const char* const kOracleSpecs[] = {"tlp", "norec", "clause"};

/// RAII around the eval plant so a failing assertion can't leak the bug
/// into later tests.
class PlantedNotNullBug {
 public:
  PlantedNotNullBug() { minidb::Evaluator::SetNotNullEvalBugForTesting(true); }
  ~PlantedNotNullBug() {
    minidb::Evaluator::SetNotNullEvalBugForTesting(false);
  }
};

/// Backend over a table whose only mentionable column (b) holds NULLs, so
/// any partition predicate over it has UNKNOWN rows to mispartition.
class PopulatedBackend : public fuzz::InProcessBackend {
 public:
  PopulatedBackend()
      : fuzz::InProcessBackend(*minidb::DialectProfile::ByName("pglite")) {
    database().set_fault_hook(nullptr);
    auto r = database().ExecuteScript(
        "CREATE TABLE t0 (a INT, b INT);"
        "INSERT INTO t0 VALUES (1, 0);"
        "INSERT INTO t0 VALUES (2, 5);"
        "INSERT INTO t0 VALUES (3, NULL);"
        "INSERT INTO t0 VALUES (4, NULL);"
        "INSERT INTO t0 VALUES (5, -7);");
    EXPECT_TRUE(r.ok());
    if (r.ok()) EXPECT_EQ(r->errors, 0);
  }
};

/// Parses a single statement.
sql::StmtPtr One(const std::string& sql) {
  auto tc = fuzz::TestCase::FromSql(sql);
  EXPECT_TRUE(tc.ok());
  EXPECT_EQ(tc->size(), 1u);
  return std::move((*tc->mutable_statements())[0]);
}

/// A fuzzed campaign with `spec` oracles armed against the clean engine.
fuzz::CampaignResult RunWithOracles(const std::string& profile_name,
                                    const std::string& spec, uint64_t seed) {
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName(profile_name);
  EXPECT_NE(profile, nullptr) << profile_name;
  core::LegoOptions options;
  options.rng_seed = seed;
  core::LegoFuzzer fuzzer(*profile, options);
  fuzz::ExecutionHarness harness(*profile);
  std::string error;
  std::unique_ptr<OracleSuite> suite = OracleSuite::FromSpec(spec, &error);
  EXPECT_NE(suite, nullptr) << error;
  harness.set_logic_oracle(suite.get());
  fuzz::CampaignOptions campaign;
  campaign.max_executions = kCasesPerProfile;
  campaign.snapshot_every = kCasesPerProfile;
  return fuzz::RunCampaign(&fuzzer, &harness, campaign);
}

TEST(OracleConformanceTest, ZeroFalsePositivesOnCleanEngine) {
  // 500 fuzzer-generated cases per (profile, oracle): a clean engine must
  // never be flagged. Injected synthetic crashes still happen on some
  // profiles — those go through the crash oracle and must not bleed into
  // logic findings.
  for (const char* profile : kProfiles) {
    for (const char* spec : kOracleSpecs) {
      fuzz::CampaignResult result = RunWithOracles(profile, spec, 11);
      EXPECT_EQ(result.logic_bugs_total, 0)
          << profile << "/" << spec << ": "
          << (result.captured_logic_bugs.empty()
                  ? std::string("?")
                  : result.captured_logic_bugs[0].detail);
      EXPECT_EQ(result.logic_fingerprints.size(), 0u);
    }
  }
}

TEST(OracleConformanceTest, FullSuiteRerunIsByteIdentical) {
  fuzz::CampaignResult a = RunWithOracles("pglite", "tlp,norec,clause", 29);
  fuzz::CampaignResult b = RunWithOracles("pglite", "tlp,norec,clause", 29);
  EXPECT_EQ(fuzz::ResultDigest(a), fuzz::ResultDigest(b));
  EXPECT_EQ(a.logic_bugs_total, b.logic_bugs_total);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.statements_executed, b.statements_executed);
}

TEST(OracleConformanceTest, TlpCatchesPlantedEvalBug) {
  PopulatedBackend backend;
  TlpOracle oracle;
  PlantedNotNullBug plant;
  sql::StmtPtr stmt = One("SELECT b FROM t0;");
  fuzz::LogicBugInfo info;
  ASSERT_TRUE(oracle.Check(&backend, *stmt, &info));
  EXPECT_EQ(info.check, "tlp");
}

TEST(OracleConformanceTest, ClauseCatchesPlantedEvalBug) {
  // The WHERE slot partitions on the query's own predicate; its NOT-p leg
  // runs straight into the planted NOT(NULL)=TRUE defect.
  PopulatedBackend backend;
  ClauseOracle oracle;
  PlantedNotNullBug plant;
  sql::StmtPtr stmt = One("SELECT b FROM t0 WHERE b < 3;");
  fuzz::LogicBugInfo info;
  ASSERT_TRUE(oracle.Check(&backend, *stmt, &info));
  EXPECT_EQ(info.check, "clause");
  EXPECT_NE(info.detail.find("where slot"), std::string::npos) << info.detail;

  // Deterministic: same query, same verdict and fingerprint.
  fuzz::LogicBugInfo again;
  ASSERT_TRUE(oracle.Check(&backend, *stmt, &again));
  EXPECT_EQ(again.fingerprint, info.fingerprint);
  EXPECT_EQ(again.detail, info.detail);
}

TEST(OracleConformanceTest, NoRecIsDocumentedBlindToEvalBug) {
  // NoREC compares WHERE-filtered counts against the same predicate moved
  // into the projection. Both sides run through one Evaluator, so a pure
  // expression-evaluation defect cancels out — asserted here so the blind
  // spot stays documented rather than silently assumed. Coverage of this
  // defect class comes from TLP and the clause oracle (above).
  PopulatedBackend backend;
  NoRecOracle oracle;
  PlantedNotNullBug plant;
  fuzz::LogicBugInfo info;
  for (const char* q : {
           "SELECT b FROM t0;",
           "SELECT b FROM t0 WHERE b < 3;",
           "SELECT b FROM t0 WHERE NOT (b < 3);",
       }) {
    sql::StmtPtr stmt = One(q);
    EXPECT_FALSE(oracle.Check(&backend, *stmt, &info)) << q;
  }
}

TEST(OracleConformanceTest, SuiteFirstFindingWins) {
  PopulatedBackend backend;
  std::string error;
  std::unique_ptr<OracleSuite> suite =
      OracleSuite::FromSpec("tlp,norec,clause", &error);
  ASSERT_NE(suite, nullptr) << error;
  PlantedNotNullBug plant;
  sql::StmtPtr stmt = One("SELECT b FROM t0;");
  fuzz::LogicBugInfo info;
  ASSERT_TRUE(suite->Check(&backend, *stmt, &info));
  EXPECT_EQ(info.check, "tlp");  // listed first, checked first
}

TEST(OracleConformanceTest, SuiteSpecParsing) {
  std::string error;
  EXPECT_EQ(OracleSuite::FromSpec("", &error), nullptr);
  EXPECT_EQ(OracleSuite::FromSpec("tlp,unknown", &error), nullptr);
  EXPECT_NE(error.find("unknown"), std::string::npos);
  std::unique_ptr<OracleSuite> suite =
      OracleSuite::FromSpec("clause,tlp,clause", &error);
  ASSERT_NE(suite, nullptr);
  EXPECT_EQ(suite->MemberNames(),
            (std::vector<std::string>{"clause", "tlp"}));
}

TEST(OracleConformanceTest, CampaignWithPlantFlagsAtLeastOnce) {
  // The CI planted-defect job runs this same configuration end-to-end via
  // the CLI; keep the in-process pin so budget/seed drift is caught here
  // first.
  PlantedNotNullBug plant;
  fuzz::CampaignResult result = RunWithOracles("pglite", "tlp,clause", 7);
  EXPECT_GE(result.logic_bugs_total, 1)
      << "planted eval defect not flagged by any oracle";
}

}  // namespace
}  // namespace lego::triage
