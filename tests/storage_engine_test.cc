// Storage-engine crash/recovery tests over the in-memory Env: committed
// work survives SimulateCrash, uncommitted and rolled-back work stays
// invisible, checkpoints rotate generations, mem and paged execution reach
// identical digests, and the planted skip-fsync defect observably loses
// acknowledged commits.

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "minidb/database.h"
#include "minidb/env.h"
#include "minidb/storage_engine.h"
#include "minidb/storage_serde.h"
#include "sql/parser.h"

namespace lego::minidb {
namespace {

class StorageEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    profile_ = DialectProfile::ByName("pglite");
    ASSERT_NE(profile_, nullptr);
    MakeEngine(/*skip_fsync=*/false);
    db_ = std::make_unique<Database>(profile_);
    ASSERT_TRUE(engine_->ResetFresh(db_.get()).ok());
  }

  void MakeEngine(bool skip_fsync) {
    StorageEngine::Options opts;
    opts.env = &env_;
    opts.dir = "db";
    opts.pool_frames = 8;
    opts.skip_fsync = skip_fsync;
    engine_ = std::make_unique<StorageEngine>(opts);
  }

  // Runs a script through the engine's statement bracket, the way the
  // backends drive it.
  void Exec(const std::string& sql) {
    auto stmts = sql::Parser::ParseScript(sql + ";");
    ASSERT_TRUE(stmts.ok()) << sql;
    for (const sql::StmtPtr& stmt : stmts.value()) {
      engine_->BeginStatement(db_.get());
      Status st = db_->Execute(*stmt).status();
      ASSERT_TRUE(engine_->EndStatement(db_.get(), *stmt, st.ok()).ok());
    }
  }

  // Crash, then recover into a fresh Database (fresh engine too — the old
  // one's open handles are gone with the "process").
  uint64_t CrashAndRecoverDigest() {
    env_.SimulateCrash();
    MakeEngine(false);
    db_ = std::make_unique<Database>(profile_);
    Status st = engine_->OpenOrRecover(db_.get());
    EXPECT_TRUE(st.ok()) << st.ToString();
    return StateDigest(db_->catalog());
  }

  const DialectProfile* profile_ = nullptr;
  MemEnv env_;
  std::unique_ptr<StorageEngine> engine_;
  std::unique_ptr<Database> db_;
};

TEST_F(StorageEngineTest, CommittedStatementsSurviveCrash) {
  Exec("CREATE TABLE t (a INT, b TEXT)");
  Exec("INSERT INTO t VALUES (1, 'x')");
  Exec("INSERT INTO t VALUES (2, 'y')");
  Exec("UPDATE t SET b = 'z' WHERE a = 2");
  const uint64_t before = StateDigest(db_->catalog());
  EXPECT_EQ(CrashAndRecoverDigest(), before);
}

TEST_F(StorageEngineTest, OpenTransactionVanishesAtCrash) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (1)");
  const uint64_t committed = StateDigest(db_->catalog());
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (2)");
  Exec("CREATE TABLE u (b INT)");
  // No COMMIT: the no-steal buffer never reached the WAL.
  EXPECT_EQ(CrashAndRecoverDigest(), committed);
}

TEST_F(StorageEngineTest, CommittedTransactionSurvivesRollbackDoesNot) {
  Exec("CREATE TABLE t (a INT)");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1)");
  Exec("COMMIT");
  const uint64_t after_commit = StateDigest(db_->catalog());
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (2)");
  Exec("ROLLBACK");
  EXPECT_EQ(StateDigest(db_->catalog()), after_commit);
  EXPECT_EQ(CrashAndRecoverDigest(), after_commit);
}

TEST_F(StorageEngineTest, SavepointPartialRollbackRecovers) {
  Exec("CREATE TABLE t (a INT)");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1)");
  Exec("SAVEPOINT sp");
  Exec("INSERT INTO t VALUES (2)");
  Exec("ROLLBACK TO sp");
  Exec("COMMIT");
  const uint64_t before = StateDigest(db_->catalog());
  EXPECT_EQ(CrashAndRecoverDigest(), before);
}

TEST_F(StorageEngineTest, CheckpointThenMoreWalThenCrash) {
  Exec("CREATE TABLE t (a INT, b TEXT)");
  for (int i = 0; i < 20; ++i) {
    Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 'row')");
  }
  Exec("CHECKPOINT");
  EXPECT_EQ(engine_->stats().checkpoints, 1u);
  Exec("DELETE FROM t WHERE a < 5");
  Exec("INSERT INTO t VALUES (99, 'post-checkpoint')");
  const uint64_t before = StateDigest(db_->catalog());
  EXPECT_EQ(CrashAndRecoverDigest(), before);
}

TEST_F(StorageEngineTest, LogicalStatementsReplay) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (1)");
  Exec("CREATE INDEX idx ON t (a)");
  Exec("CREATE VIEW v AS SELECT a FROM t");
  Exec("CREATE SEQUENCE s");
  Exec("SELECT NEXTVAL('s')");
  Exec("ALTER TABLE t ADD COLUMN b TEXT");
  Exec("INSERT INTO t VALUES (2, 'x')");
  const uint64_t before = StateDigest(db_->catalog());
  EXPECT_EQ(CrashAndRecoverDigest(), before);
}

TEST_F(StorageEngineTest, MemAndPagedDigestsMatch) {
  const char* script[] = {
      "CREATE TABLE t (a INT, b TEXT)",
      "INSERT INTO t VALUES (1, 'x')",
      "BEGIN",
      "INSERT INTO t VALUES (2, 'y')",
      "COMMIT",
      "UPDATE t SET b = 'q' WHERE a = 1",
      "DELETE FROM t WHERE a = 2",
      "CREATE INDEX idx ON t (a)",
  };
  for (const char* sql : script) Exec(sql);

  // The same script on a plain in-memory Database (no engine observing)
  // must land on the same digest: --storage=mem is bit-identical because
  // the engine only observes, never steers.
  Database mem_db(profile_);
  for (const char* sql : script) {
    auto stmts = sql::Parser::ParseScript(std::string(sql) + ";");
    ASSERT_TRUE(stmts.ok());
    for (const sql::StmtPtr& stmt : stmts.value()) {
      (void)mem_db.Execute(*stmt);
    }
  }
  EXPECT_EQ(StateDigest(db_->catalog()), StateDigest(mem_db.catalog()));
}

TEST_F(StorageEngineTest, PlantedSkipFsyncLosesAcknowledgedCommits) {
  Exec("CREATE TABLE t (a INT)");
  Exec("CHECKPOINT");  // durable baseline via the snapshot path
  MakeEngine(/*skip_fsync=*/true);
  // Re-adopt the directory with the defective engine, then "acknowledge"
  // an insert whose commit never fsynced.
  db_ = std::make_unique<Database>(profile_);
  ASSERT_TRUE(engine_->OpenOrRecover(db_.get()).ok());
  const uint64_t baseline = StateDigest(db_->catalog());
  Exec("INSERT INTO t VALUES (1)");
  const uint64_t acked = StateDigest(db_->catalog());
  ASSERT_NE(acked, baseline);
  // The crash eats the buffered batch: recovered state equals the baseline,
  // not the acknowledged state — exactly what DUR-LOST-COMMIT reports.
  EXPECT_EQ(CrashAndRecoverDigest(), baseline);
}

TEST_F(StorageEngineTest, DegradesInsteadOfFailingWhenSyncDies) {
  Exec("CREATE TABLE t (a INT)");
  env_.FailNextSyncs(1);
  Exec("INSERT INTO t VALUES (1)");
  EXPECT_TRUE(engine_->degraded());
  // Execution continues in memory after degradation.
  Exec("INSERT INTO t VALUES (2)");
  EXPECT_TRUE(db_->catalog().HasTable("t"));
}

TEST_F(StorageEngineTest, DoubleRecoveryIsIdempotent) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (1)");
  Exec("INSERT INTO t VALUES (2)");
  const uint64_t first = CrashAndRecoverDigest();
  // Recover again from the repaired directory without an intervening crash.
  MakeEngine(false);
  db_ = std::make_unique<Database>(profile_);
  ASSERT_TRUE(engine_->OpenOrRecover(db_.get()).ok());
  EXPECT_EQ(StateDigest(db_->catalog()), first);
}

TEST_F(StorageEngineTest, RecoverIntoMatchesOpenOrRecover) {
  Exec("CREATE TABLE t (a INT, b TEXT)");
  Exec("INSERT INTO t VALUES (1, 'x')");
  env_.SimulateCrash();
  // The parent-side pure-read checker must see the same state the engine
  // itself would recover to.
  Database probe(profile_);
  WalLoadStats wal_stats;
  ASSERT_TRUE(StorageEngine::RecoverInto(&env_, "db", &probe, &wal_stats).ok());
  const uint64_t probe_digest = StateDigest(probe.catalog());
  MakeEngine(false);
  db_ = std::make_unique<Database>(profile_);
  ASSERT_TRUE(engine_->OpenOrRecover(db_.get()).ok());
  EXPECT_EQ(StateDigest(db_->catalog()), probe_digest);
}

}  // namespace
}  // namespace lego::minidb
