// Forked-backend end-to-end: a *real* engine defect (planted abort() /
// infinite loop inside minidb) must kill only the child — the campaign
// completes its budget, records the death as a unique triaged bug, and
// ddmin minimizes its reproducer. Plus the serial in-process golden run:
// the backend seam must leave historical campaign numbers bit-identical.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fuzz/backend.h"
#include "fuzz/campaign.h"
#include "fuzz/fuzzer.h"
#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "lego/lego_fuzzer.h"
#include "baselines/squirrel_like.h"
#include "minidb/database.h"
#include "minidb/profile.h"
#include "triage/triage.h"

namespace lego::fuzz {
namespace {

/// RAII around the planted real-defect switches so a failing assertion
/// can't leak an armed abort() into later tests.
class PlantedAbort {
 public:
  PlantedAbort() { minidb::testing::SetPlantedAbortForTesting(true); }
  ~PlantedAbort() { minidb::testing::SetPlantedAbortForTesting(false); }
};

class PlantedHang {
 public:
  PlantedHang() { minidb::testing::SetPlantedHangForTesting(true); }
  ~PlantedHang() { minidb::testing::SetPlantedHangForTesting(false); }
};

/// Deterministic generation-only fuzzer cycling through fixed scripts —
/// minimal, cloneable, and oblivious to feedback, so campaign outcomes
/// depend only on (scripts, budget, workers).
class ScriptFuzzer : public Fuzzer {
 public:
  explicit ScriptFuzzer(std::vector<std::string> scripts)
      : scripts_(std::move(scripts)) {}

  std::string name() const override { return "script"; }
  void Prepare(ExecutionHarness* harness) override { (void)harness; }

  TestCase Next() override {
    auto tc = TestCase::FromSql(scripts_[next_ % scripts_.size()]);
    ++next_;
    EXPECT_TRUE(tc.ok());
    return std::move(*tc);
  }

  void OnResult(const TestCase& tc, const ExecResult& result) override {
    (void)tc;
    (void)result;
  }

  std::unique_ptr<Fuzzer> CloneForWorker(int worker_id) const override {
    (void)worker_id;  // stateless generator: every worker cycles the same
    return std::make_unique<ScriptFuzzer>(scripts_);
  }

 private:
  std::vector<std::string> scripts_;
  size_t next_ = 0;
};

TEST(ForkedBackendTest, PlantedAbortSurvivesFourWorkerCampaign) {
  PlantedAbort plant;  // armed before any backend spawns: children inherit

  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");
  ASSERT_NE(profile, nullptr);

  // Two benign scripts and one whose DROP TABLE aborts the child for real.
  ScriptFuzzer fuzzer({
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t;",
      "CREATE TABLE u (b INT); INSERT INTO u VALUES (2); "
      "UPDATE u SET b = 3; SELECT b FROM u;",
      "CREATE TABLE v (c INT); INSERT INTO v VALUES (4); DROP TABLE v;",
  });

  BackendOptions backend;
  backend.kind = BackendKind::kForked;
  ExecutionHarness harness(*profile, backend);

  CampaignOptions options;
  options.max_executions = 48;
  options.num_workers = 4;
  options.snapshot_every = 0;

  CampaignResult result = RunCampaign(&fuzzer, &harness, options);

  // The fuzzer process survived (we are here) and spent its whole budget —
  // every third case killed a child, none killed the campaign.
  EXPECT_EQ(result.executions, 48);
  EXPECT_EQ(result.crashes_total, 48 / 3);
  ASSERT_EQ(result.crash_hashes.size(), 1u);
  EXPECT_EQ(result.bug_ids.count("REAL-SIGABRT"), 1u);
  EXPECT_EQ(result.bugs_by_component.at("minidb"), 1);

  // Triage replays under the same forked backend and minimizes the repro
  // down to the lone aborting statement.
  const std::string repro_dir = ::testing::TempDir() + "forked_abort_repros";
  std::filesystem::remove_all(repro_dir);
  triage::TriageOptions triage_options;
  triage_options.backend = backend;
  triage_options.repro_dir = repro_dir;
  triage::TriageReport report =
      triage::TriageCampaign(result, *profile, "", triage_options);

  ASSERT_EQ(report.bugs.size(), 1u);
  const triage::TriagedBug& bug = report.bugs[0];
  EXPECT_EQ(bug.signature.bug_id, "REAL-SIGABRT");
  EXPECT_EQ(bug.signature.type_fingerprint, "DROP TABLE");
  EXPECT_EQ(bug.reduced_statements, 1);
  EXPECT_EQ(bug.original_statements, 3);
  ASSERT_FALSE(bug.artifact_path.empty());
  std::ifstream artifact(bug.artifact_path);
  ASSERT_TRUE(artifact.good());
  std::string text((std::istreambuf_iterator<char>(artifact)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("REAL-SIGABRT"), std::string::npos);
  EXPECT_NE(text.find("DROP TABLE"), std::string::npos);
}

TEST(ForkedBackendTest, WatchdogTurnsPlantedHangIntoTriagedBug) {
  PlantedHang plant;

  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");
  ASSERT_NE(profile, nullptr);

  ScriptFuzzer fuzzer({
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t;",
      "CREATE TABLE u (b INT); INSERT INTO u VALUES (2); VACUUM;",
  });

  BackendOptions backend;
  backend.kind = BackendKind::kForked;
  backend.max_stmt_ms = 200;
  ExecutionHarness harness(*profile, backend);

  CampaignOptions options;
  options.max_executions = 6;
  options.num_workers = 1;
  options.snapshot_every = 0;

  CampaignResult result = RunCampaign(&fuzzer, &harness, options);

  EXPECT_EQ(result.executions, 6);
  EXPECT_EQ(result.crashes_total, 3);  // every VACUUM case hit the watchdog
  ASSERT_EQ(result.crash_hashes.size(), 1u);
  EXPECT_EQ(result.bug_ids.count("HANG"), 1u);
  ASSERT_EQ(result.captured_crashes.size(), 1u);
  EXPECT_EQ(result.captured_crashes[0].kind, "HANG");
  EXPECT_EQ(result.captured_crashes[0].component, "watchdog");

  // Hangs dedup and reduce through the same signature machinery as crashes,
  // landing in their own hang|type-fingerprint bucket.
  triage::TriageOptions triage_options;
  triage_options.backend = backend;
  triage::TriageReport report =
      triage::TriageCampaign(result, *profile, "", triage_options);
  ASSERT_EQ(report.bugs.size(), 1u);
  EXPECT_EQ(report.bugs[0].signature.Key(), "HANG|VACUUM");
  EXPECT_EQ(report.bugs[0].reduced_statements, 1);
}

TEST(ForkedBackendTest, HangingStatementYieldsHangOutcome) {
  PlantedHang plant;
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");

  BackendOptions backend;
  backend.kind = BackendKind::kForked;
  backend.max_stmt_ms = 150;
  ExecutionHarness harness(*profile, backend);

  auto tc = TestCase::FromSql("CREATE TABLE t (a INT); VACUUM; SELECT 1;");
  ASSERT_TRUE(tc.ok());
  ExecResult r = harness.Run(*tc);
  EXPECT_TRUE(r.crashed);
  EXPECT_TRUE(r.hang);
  EXPECT_EQ(r.executed, 1);  // CREATE ran; VACUUM hung; SELECT never ran
  EXPECT_EQ(r.crash.bug_id, "HANG");

  // The backend respawns on the next run: same harness stays usable.
  auto tc2 = TestCase::FromSql("CREATE TABLE t (a INT); SELECT a FROM t;");
  ASSERT_TRUE(tc2.ok());
  ExecResult r2 = harness.Run(*tc2);
  EXPECT_FALSE(r2.crashed);
  EXPECT_EQ(r2.executed, 2);
}

// The seam's ground truth: a serial in-process campaign must reproduce
// these exact numbers run over run. Coverage probes key on (file, line),
// so edits inside instrumented engine files legitimately re-key the
// trajectory — re-capture the constants when that happens; any drift
// *without* such an edit means observable fuzzing behavior changed.
TEST(GoldenCampaignTest, SerialInProcessLegoPglite) {
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");
  core::LegoOptions lego_options;
  lego_options.rng_seed = 7;
  core::LegoFuzzer fuzzer(*profile, lego_options);
  ExecutionHarness harness(*profile);
  CampaignOptions options;
  options.max_executions = 2000;
  options.snapshot_every = 200;

  CampaignResult result = RunCampaign(&fuzzer, &harness, options);
  EXPECT_EQ(result.edges, 484u);
  EXPECT_EQ(result.affinities.size(), 119u);
  EXPECT_EQ(result.statements_executed, 4833);
  EXPECT_EQ(result.statement_errors, 3890);
  EXPECT_EQ(result.crashes_total, 0);
}

TEST(GoldenCampaignTest, SerialInProcessSquirrelMarialite) {
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("marialite");
  baselines::SquirrelLikeFuzzer fuzzer(*profile, /*seed=*/3);
  ExecutionHarness harness(*profile);
  CampaignOptions options;
  options.max_executions = 1500;
  options.snapshot_every = 150;

  CampaignResult result = RunCampaign(&fuzzer, &harness, options);
  EXPECT_EQ(result.edges, 264u);
  EXPECT_EQ(result.affinities.size(), 18u);
  EXPECT_EQ(result.statements_executed, 6541);
  EXPECT_EQ(result.statement_errors, 1003);
  EXPECT_EQ(result.crashes_total, 118);
  EXPECT_EQ(result.bug_ids,
            (std::set<std::string>{"MA-DML-01", "MA-DML-03", "MA-OPT-01",
                                   "MA-OPT-02", "MA-OPT-06", "MA-OPT-07",
                                   "MA-STOR-03", "MA-STOR-04"}));
}

}  // namespace
}  // namespace lego::fuzz
