#include "sql/ast.h"

#include <gtest/gtest.h>

#include "sql/ast_walk.h"
#include "sql/parser.h"

namespace lego::sql {
namespace {

// Clone independence, checked across every statement shape: mutating the
// clone must never leak into the original (the skeleton library and the
// mutators rely on this).
class CloneTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CloneTest, CloneIsDeepAndEqual) {
  auto parsed = Parser::ParseStatement(GetParam());
  ASSERT_TRUE(parsed.ok()) << GetParam();
  StmtPtr original = std::move(*parsed);
  StmtPtr clone = original->Clone();
  EXPECT_NE(original.get(), clone.get());
  EXPECT_EQ(original->type(), clone->type());
  EXPECT_EQ(ToSql(*original), ToSql(*clone));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CloneTest,
    ::testing::Values(
        "CREATE TABLE t (a INT PRIMARY KEY, b TEXT DEFAULT 'x' NOT NULL)",
        "CREATE VIEW v AS SELECT a, COUNT(*) FROM t GROUP BY a",
        "CREATE TRIGGER tg AFTER INSERT ON t FOR EACH ROW "
        "UPDATE t SET a = 1",
        "CREATE RULE r AS ON INSERT TO t DO INSTEAD NOTIFY ch",
        "INSERT INTO t VALUES (1, 'a'), (2, NULL)",
        "INSERT INTO t SELECT * FROM u WHERE x IN (SELECT y FROM w)",
        "UPDATE t SET a = CASE WHEN b THEN 1 ELSE 2 END WHERE c LIKE 'x%'",
        "DELETE FROM t WHERE EXISTS (SELECT 1 FROM u)",
        "SELECT DISTINCT a.x, LEAD(b.y) OVER (PARTITION BY a.x ORDER BY b.y) "
        "FROM a LEFT JOIN b ON a.k = b.k UNION ALL SELECT 1, 2 "
        "ORDER BY 1 LIMIT 3 OFFSET 1",
        "WITH w (c1) AS (SELECT 1), v AS (INSERT INTO t VALUES (2)) "
        "DELETE FROM t WHERE a = 3",
        "COPY (SELECT a FROM t) TO STDOUT CSV HEADER",
        "SELECT a FROM (SELECT a FROM t WHERE a BETWEEN 1 AND 2) AS s"));

TEST(CloneIndependenceTest, MutatingCloneLeavesOriginal) {
  auto original = Parser::ParseStatement("INSERT INTO t VALUES (1)");
  ASSERT_TRUE(original.ok());
  StmtPtr clone = (*original)->Clone();
  static_cast<InsertStmt*>(clone.get())->table = "changed";
  EXPECT_EQ(static_cast<InsertStmt*>(original->get())->table, "t");
}

TEST(PrinterTest, RealLiteralsStayFloats) {
  std::string text = ToSql(*Literal::Real(2.0));
  auto reparsed = Parser::ParseExpression(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ((*reparsed)->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const Literal&>(**reparsed).tag(),
            Literal::Tag::kReal);
}

TEST(PrinterTest, TextLiteralsRoundTripQuotes) {
  std::string text = ToSql(*Literal::Text("it's"));
  auto reparsed = Parser::ParseExpression(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(static_cast<const Literal&>(**reparsed).text_value(), "it's");
}

TEST(WalkTest, WalkExprsVisitsAllNodes) {
  auto expr = Parser::ParseExpression(
      "CASE WHEN a BETWEEN 1 AND 2 THEN ABS(b) ELSE c || 'x' END");
  ASSERT_TRUE(expr.ok());
  int nodes = 0;
  int column_refs = 0;
  WalkExprs(**expr, [&](const Expr& e) {
    ++nodes;
    if (e.kind() == ExprKind::kColumnRef) ++column_refs;
  }, /*into_subqueries=*/false);
  EXPECT_EQ(column_refs, 3);  // a, b, c
  EXPECT_GE(nodes, 8);
}

TEST(WalkTest, SubqueryDescentIsOptional) {
  auto expr = Parser::ParseExpression("x IN (SELECT y FROM t WHERE z = 1)");
  ASSERT_TRUE(expr.ok());
  int shallow = 0;
  WalkExprs(**expr, [&](const Expr& e) {
    if (e.kind() == ExprKind::kColumnRef) ++shallow;
  }, false);
  EXPECT_EQ(shallow, 1);  // only x
  int deep = 0;
  WalkExprs(**expr, [&](const Expr& e) {
    if (e.kind() == ExprKind::kColumnRef) ++deep;
  }, true);
  EXPECT_EQ(deep, 3);  // x, y, z
}

TEST(WalkTest, WalkStatementExprsCoversClauses) {
  auto stmt = Parser::ParseStatement(
      "SELECT a + 1 FROM t WHERE b = 2 GROUP BY c HAVING COUNT(*) > 3 "
      "ORDER BY d LIMIT 5 OFFSET 6");
  ASSERT_TRUE(stmt.ok());
  int literals = 0;
  WalkStatementExprs(**stmt, [&](const Expr& e) {
    if (e.kind() == ExprKind::kLiteral) ++literals;
  }, true);
  EXPECT_EQ(literals, 5);  // 1, 2, 3, 5, 6 (COUNT's star is not a literal)
}

TEST(WalkTest, WalkTableRefsFindsAllBaseTables) {
  auto stmt = Parser::ParseStatement(
      "SELECT * FROM a JOIN b ON a.k = b.k, (SELECT x FROM c) AS s");
  ASSERT_TRUE(stmt.ok());
  std::vector<std::string> names;
  WalkTableRefs(**stmt, [&](const TableRef& ref) {
    if (ref.kind() == TableRefKind::kBaseTable) {
      names.push_back(static_cast<const BaseTableRef&>(ref).name());
    }
  }, /*into_subqueries=*/true);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(WalkTest, WalkSelectsReachesNestedStatements) {
  auto stmt = Parser::ParseStatement(
      "WITH w AS (SELECT 1) INSERT INTO t SELECT * FROM w");
  ASSERT_TRUE(stmt.ok());
  int selects = 0;
  WalkSelects(**stmt, [&](const SelectStmt&) { ++selects; });
  EXPECT_EQ(selects, 2);  // the CTE body and the INSERT source
}

TEST(StatementTypeTagTest, InsertVsReplaceTag) {
  auto insert = Parser::ParseStatement("INSERT INTO t VALUES (1)");
  auto replace = Parser::ParseStatement("REPLACE INTO t VALUES (1)");
  EXPECT_EQ((*insert)->type(), StatementType::kInsert);
  EXPECT_EQ((*replace)->type(), StatementType::kReplace);
}

TEST(StatementTypeTagTest, PragmaVsSetTag) {
  auto pragma = Parser::ParseStatement("PRAGMA x = 1");
  auto set = Parser::ParseStatement("SET x = 1");
  EXPECT_EQ((*pragma)->type(), StatementType::kPragma);
  EXPECT_EQ((*set)->type(), StatementType::kSet);
}

}  // namespace
}  // namespace lego::sql
