#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/campaign.h"
#include "fuzz/checkpoint.h"
#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "lego/lego_fuzzer.h"
#include "minidb/profile.h"
#include "triage/oracle_suite.h"
#include "triage/triage.h"

namespace lego::fuzz {
namespace {

std::unique_ptr<core::LegoFuzzer> MakeLego(uint64_t seed) {
  core::LegoOptions options;
  options.rng_seed = seed;
  return std::make_unique<core::LegoFuzzer>(minidb::DialectProfile::PgLite(),
                                            options);
}

BackendOptions ConcurrentOptions(uint64_t seed) {
  BackendOptions options;
  options.kind = BackendKind::kConcurrent;
  options.sessions = 2;
  options.concurrency_seed = seed;
  return options;
}

/// RMW-heavy seeds so the fuzzer reaches contended multi-session shapes
/// within a small execution budget.
std::vector<TestCase> RmwSeeds() {
  std::vector<TestCase> seeds;
  for (const char* sql_text : {
           "CREATE TABLE t (a INT, b INT);"
           "INSERT INTO t VALUES (1, 10);"
           "INSERT INTO t VALUES (2, 20);"
           "UPDATE t SET b = b + 1 WHERE a = 1;"
           "UPDATE t SET b = b + 1 WHERE a = 1;"
           "SELECT b FROM t;",
           "CREATE TABLE u (x INT);"
           "INSERT INTO u VALUES (5);"
           "BEGIN; UPDATE u SET x = x + 1; COMMIT;"
           "UPDATE u SET x = x * 2;"
           "SELECT x FROM u;",
       }) {
    auto tc = TestCase::FromSql(sql_text);
    EXPECT_TRUE(tc.ok()) << tc.status().ToString();
    seeds.push_back(std::move(*tc));
  }
  return seeds;
}

std::string ScratchDir(const std::string& name) {
  auto dir =
      std::filesystem::temp_directory_path() / ("lego_concurrent_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

/// End-to-end: a 4-worker campaign over a planted isolation defect must
/// capture the anomaly, and triage must reduce it to a multi-session .sql
/// reproducer carrying the right ISO bug id.
void RunPlantedEndToEnd(bool lost_update, const std::string& expect_id) {
  BackendOptions backend = ConcurrentOptions(11);
  backend.planted_lost_update = lost_update;
  backend.planted_dirty_read = !lost_update;

  auto fuzzer = MakeLego(11);
  ExecutionHarness harness(minidb::DialectProfile::PgLite(), backend);
  std::string suite_error;
  auto suite = triage::OracleSuite::FromSpec("iso", &suite_error);
  ASSERT_NE(suite, nullptr) << suite_error;
  harness.set_logic_oracle(suite.get());

  CampaignOptions options;
  options.max_executions = 1200;
  options.num_workers = 4;
  options.sync_every = 64;
  std::vector<TestCase> seeds = RmwSeeds();
  options.import_seeds = &seeds;

  CampaignResult result = RunCampaign(fuzzer.get(), &harness, options);
  ASSERT_GT(result.logic_bugs_total, 0)
      << "campaign never tripped the planted " << expect_id;

  const std::string repro_dir = ScratchDir(expect_id);
  triage::TriageOptions triage_options;
  triage_options.reduce = true;
  triage_options.repro_dir = repro_dir;
  triage_options.backend = backend;
  triage::TriageReport report = triage::TriageCampaign(
      result, minidb::DialectProfile::PgLite(), harness.setup_script(),
      triage_options);

  bool found = false;
  for (const triage::TriagedBug& bug : report.bugs) {
    if (bug.signature.bug_id.rfind(expect_id, 0) != 0) continue;
    found = true;
    EXPECT_TRUE(bug.is_logic);
    EXPECT_GT(bug.logic.sessions, 1);
    EXPECT_LE(bug.reduced_statements, bug.original_statements);
    ASSERT_FALSE(bug.artifact_path.empty());
    const std::string artifact = ReadFile(bug.artifact_path);
    // The artifact is the actual multi-session reproducer: split script
    // with session markers plus the interleaving seed that replays it.
    EXPECT_NE(artifact.find("-- session 1"), std::string::npos) << artifact;
    EXPECT_NE(artifact.find("-- interleave-seed:"), std::string::npos);
    EXPECT_NE(artifact.find("-- sessions:"), std::string::npos);
  }
  EXPECT_TRUE(found) << "no " << expect_id << " among "
                     << report.bugs.size() << " triaged bugs";
  std::filesystem::remove_all(repro_dir);
}

TEST(ConcurrentCampaignTest, PlantedLostUpdateTriagesToMultiSessionRepro) {
  RunPlantedEndToEnd(/*lost_update=*/true, "ISO-LOST-UPDATE");
}

TEST(ConcurrentCampaignTest, PlantedDirtyReadTriagesToMultiSessionRepro) {
  RunPlantedEndToEnd(/*lost_update=*/false, "ISO-DIRTY-READ");
}

TEST(ConcurrentCampaignTest, CleanEngineFlagsNoAnomalies) {
  auto fuzzer = MakeLego(3);
  ExecutionHarness harness(minidb::DialectProfile::PgLite(),
                           ConcurrentOptions(3));
  std::string suite_error;
  auto suite = triage::OracleSuite::FromSpec("iso", &suite_error);
  ASSERT_NE(suite, nullptr) << suite_error;
  harness.set_logic_oracle(suite.get());

  CampaignOptions options;
  options.max_executions = 500;
  std::vector<TestCase> seeds = RmwSeeds();
  options.import_seeds = &seeds;
  CampaignResult result = RunCampaign(fuzzer.get(), &harness, options);
  // Strict 2PL + token-serialized epochs: no interleaving of a correct lock
  // discipline may exhibit an isolation anomaly.
  EXPECT_EQ(result.logic_bugs_total, 0);
}

TEST(ConcurrentCampaignTest, CleanEngineOnPagedStorageFlagsNoAnomalies) {
  // Sessions share pager-backed heaps behind page latches; the lock
  // discipline (and therefore the iso oracle's verdict) must be unaffected
  // by rows living in pool frames instead of private heap vectors.
  const std::string dir = ScratchDir("paged_iso");
  BackendOptions backend = ConcurrentOptions(3);
  backend.storage = StorageKind::kPaged;
  backend.db_dir = dir;
  backend.pool_frames = 8;

  auto fuzzer = MakeLego(3);
  ExecutionHarness harness(minidb::DialectProfile::PgLite(), backend);
  std::string suite_error;
  auto suite = triage::OracleSuite::FromSpec("iso", &suite_error);
  ASSERT_NE(suite, nullptr) << suite_error;
  harness.set_logic_oracle(suite.get());

  CampaignOptions options;
  options.max_executions = 500;
  std::vector<TestCase> seeds = RmwSeeds();
  options.import_seeds = &seeds;
  CampaignResult result = RunCampaign(fuzzer.get(), &harness, options);
  EXPECT_EQ(result.logic_bugs_total, 0);
  EXPECT_GT(result.storage.commits, 0u);
  std::filesystem::remove_all(dir);
}

TEST(ConcurrentCampaignTest, PagedInterleavingsReplayDeterministically) {
  // Trace-digest determinism on shared paged storage: the same seed must
  // produce byte-identical campaign results across reruns even though page
  // latches and pool eviction now sit under the interleavings.
  const std::string dir = ScratchDir("paged_det");
  auto run = [&]() {
    BackendOptions backend = ConcurrentOptions(9);
    backend.storage = StorageKind::kPaged;
    backend.db_dir = dir;
    backend.pool_frames = 8;
    auto fuzzer = MakeLego(9);
    ExecutionHarness harness(minidb::DialectProfile::PgLite(), backend);
    CampaignOptions options;
    options.max_executions = 300;
    std::vector<TestCase> seeds = RmwSeeds();
    options.import_seeds = &seeds;
    return RunCampaign(fuzzer.get(), &harness, options);
  };
  CampaignResult first = run();
  CampaignResult second = run();
  EXPECT_EQ(ResultDigest(first), ResultDigest(second));
  EXPECT_EQ(first.statements_executed, second.statements_executed);
  EXPECT_EQ(first.edges, second.edges);
  std::filesystem::remove_all(dir);
}

TEST(ConcurrentCampaignTest, ResumeIsBitIdenticalToUninterrupted) {
  // Interruption emulated by budget (same load path a SIGKILLed process
  // takes on restart): interleaving seeds derive from the persisted
  // execution counter, so the resumed half must replay identically.
  const std::string dir = ScratchDir("resume");
  CampaignOptions base;
  base.snapshot_every = 100;

  auto run = [&](const CampaignOptions& options) {
    auto fuzzer = MakeLego(5);
    ExecutionHarness harness(minidb::DialectProfile::PgLite(),
                             ConcurrentOptions(5));
    return RunCampaign(fuzzer.get(), &harness, options);
  };

  CampaignOptions uninterrupted = base;
  uninterrupted.max_executions = 600;
  CampaignResult full = run(uninterrupted);
  ASSERT_TRUE(full.state_status.ok()) << full.state_status.ToString();

  CampaignOptions first_half = base;
  first_half.max_executions = 300;
  first_half.state_dir = dir;
  CampaignResult partial = run(first_half);
  ASSERT_TRUE(partial.state_status.ok()) << partial.state_status.ToString();

  CampaignOptions second_half = base;
  second_half.max_executions = 600;
  second_half.state_dir = dir;
  second_half.resume = true;
  CampaignResult resumed = run(second_half);
  ASSERT_TRUE(resumed.state_status.ok()) << resumed.state_status.ToString();

  EXPECT_EQ(resumed.executions, full.executions);
  EXPECT_EQ(resumed.edges, full.edges);
  EXPECT_EQ(resumed.coverage_curve, full.coverage_curve);
  EXPECT_EQ(ResultDigest(resumed), ResultDigest(full));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lego::fuzz
