// Campaign-level paged-storage conformance: for every backend kind, a
// campaign on paged storage must land on the same ResultDigest as the same
// campaign on mem storage (the pager is invisible to fuzzing outcomes), the
// storage telemetry must report real pool/WAL traffic without entering the
// digest, and parallel campaigns must sweep per-worker scratch directories
// — including ones a previous abnormal exit left behind.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/backend.h"
#include "fuzz/campaign.h"
#include "fuzz/checkpoint.h"
#include "fuzz/fuzzer.h"
#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "minidb/profile.h"

namespace lego::fuzz {
namespace {

/// Deterministic generation-only fuzzer cycling through fixed scripts (no
/// feedback), so campaign outcomes depend only on (scripts, backend).
class ScriptFuzzer : public Fuzzer {
 public:
  explicit ScriptFuzzer(std::vector<std::string> scripts)
      : scripts_(std::move(scripts)) {}

  std::string name() const override { return "script"; }
  void Prepare(ExecutionHarness* harness) override { (void)harness; }

  TestCase Next() override {
    auto tc = TestCase::FromSql(scripts_[next_ % scripts_.size()]);
    ++next_;
    EXPECT_TRUE(tc.ok());
    return std::move(*tc);
  }

  void OnResult(const TestCase& tc, const ExecResult& result) override {
    (void)tc;
    (void)result;
  }

  std::unique_ptr<Fuzzer> CloneForWorker(int worker_id) const override {
    (void)worker_id;
    return std::make_unique<ScriptFuzzer>(scripts_);
  }

 private:
  std::vector<std::string> scripts_;
  size_t next_ = 0;
};

std::vector<std::string> WorkloadScripts() {
  return {
      "CREATE TABLE t (a INT, b TEXT); INSERT INTO t VALUES (1, 'x'); "
      "INSERT INTO t VALUES (2, 'y'); UPDATE t SET b = 'z' WHERE a = 2; "
      "SELECT a FROM t;",
      "CREATE TABLE u (c INT); BEGIN; INSERT INTO u VALUES (3); "
      "INSERT INTO u VALUES (4); COMMIT; DELETE FROM u WHERE c = 3;",
      "CREATE TABLE v (d INT); BEGIN; INSERT INTO v VALUES (5); "
      "ROLLBACK; INSERT INTO v VALUES (6); SELECT d FROM v;",
  };
}

CampaignResult RunWith(const BackendOptions& backend, int executions,
                       int workers = 1) {
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");
  EXPECT_NE(profile, nullptr);
  ExecutionHarness harness(*profile, backend);
  ScriptFuzzer fuzzer(WorkloadScripts());
  CampaignOptions options;
  options.max_executions = executions;
  options.num_workers = workers;
  options.snapshot_every = 0;
  return RunCampaign(&fuzzer, &harness, options);
}

BackendOptions PagedOptions(BackendKind kind, const std::string& dir,
                            size_t pool_frames = 32) {
  std::filesystem::remove_all(dir);
  BackendOptions backend;
  backend.kind = kind;
  backend.storage = StorageKind::kPaged;
  backend.db_dir = dir;
  backend.pool_frames = pool_frames;
  return backend;
}

/// mem and paged campaigns must be observationally identical: same
/// executions, statements, errors, crashes, coverage — the whole digest.
void ExpectStorageParity(BackendKind kind, const std::string& dir) {
  BackendOptions mem;
  mem.kind = kind;
  if (kind == BackendKind::kConcurrent) {
    mem.sessions = 2;
    mem.concurrency_seed = 7;
  }
  BackendOptions paged = PagedOptions(kind, dir);
  if (kind == BackendKind::kConcurrent) {
    paged.sessions = 2;
    paged.concurrency_seed = 7;
  }

  CampaignResult on_mem = RunWith(mem, 9);
  CampaignResult on_paged = RunWith(paged, 9);
  std::filesystem::remove_all(dir);

  EXPECT_EQ(ResultDigest(on_mem), ResultDigest(on_paged))
      << BackendKindName(kind);
  EXPECT_EQ(on_mem.statements_executed, on_paged.statements_executed);
  EXPECT_EQ(on_mem.statement_errors, on_paged.statement_errors);
  EXPECT_EQ(on_mem.edges, on_paged.edges);

  // Telemetry must reflect the storage actually used — and never leak into
  // the digest (asserted above: digests match despite differing stats).
  EXPECT_EQ(on_mem.storage.wal_records, 0u);
  EXPECT_EQ(on_mem.storage.pool_hits + on_mem.storage.pool_misses, 0u);
  EXPECT_GT(on_paged.storage.wal_records, 0u) << BackendKindName(kind);
  EXPECT_GT(on_paged.storage.commits, 0u) << BackendKindName(kind);
}

TEST(PagedCampaignTest, InprocPagedMatchesMem) {
  ExpectStorageParity(BackendKind::kInProcess,
                      ::testing::TempDir() + "paged_parity_inproc_db");
}

TEST(PagedCampaignTest, ForkedPagedMatchesMem) {
  ExpectStorageParity(BackendKind::kForked,
                      ::testing::TempDir() + "paged_parity_forked_db");
}

TEST(PagedCampaignTest, ConcurrentPagedMatchesMem) {
  ExpectStorageParity(BackendKind::kConcurrent,
                      ::testing::TempDir() + "paged_parity_concurrent_db");
}

// A campaign whose dataset exceeds the pool must finish with real eviction
// traffic reported in the telemetry.
TEST(PagedCampaignTest, TinyPoolCampaignReportsEvictions) {
  const std::string dir = ::testing::TempDir() + "paged_tinypool_db";
  BackendOptions backend =
      PagedOptions(BackendKind::kInProcess, dir, /*pool_frames=*/4);

  std::string big_script = "CREATE TABLE big (a INT, b TEXT);";
  const std::string filler(200, 'x');
  for (int i = 0; i < 250; ++i) {
    big_script += " INSERT INTO big VALUES (" + std::to_string(i) + ", '" +
                  filler + "');";
  }
  big_script += " SELECT a FROM big;";

  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");
  ASSERT_NE(profile, nullptr);
  ExecutionHarness harness(*profile, backend);
  ScriptFuzzer fuzzer({big_script});
  CampaignOptions options;
  options.max_executions = 2;
  options.num_workers = 1;
  options.snapshot_every = 0;
  CampaignResult result = RunCampaign(&fuzzer, &harness, options);
  std::filesystem::remove_all(dir);

  EXPECT_EQ(result.executions, 2);
  EXPECT_EQ(result.crashes_total, 0);
  EXPECT_GT(result.storage.pool_evictions, 0u);
  EXPECT_GT(result.storage.pool_hit_rate(), 0.0);
  EXPECT_GT(result.storage.wal_bytes, 0u);
  EXPECT_GT(result.storage.fsyncs, 0u);
}

// Parallel paged campaigns own per-worker scratch directories under db_dir.
// The campaign must remove its own at teardown and heal ones left behind by
// an earlier abnormal exit — including from a wider worker pool.
TEST(PagedCampaignTest, WorkerScratchDirsAreSwept) {
  namespace fsys = std::filesystem;
  const std::string dir = ::testing::TempDir() + "paged_scratch_db";
  fsys::remove_all(dir);
  ASSERT_TRUE(fsys::create_directories(dir + "/w5"));
  ASSERT_TRUE(fsys::create_directories(dir + "/w12"));
  {
    // A stale generation a killed campaign left behind.
    std::ofstream junk(dir + "/w5/wal.1");
    junk << "stale";
  }
  // Non-worker entries must survive the sweeps.
  ASSERT_TRUE(fsys::create_directories(dir + "/keepme"));

  BackendOptions backend;
  backend.kind = BackendKind::kInProcess;
  backend.storage = StorageKind::kPaged;
  backend.db_dir = dir;
  CampaignResult result = RunWith(backend, 8, /*workers=*/2);
  EXPECT_EQ(result.executions, 8);

  EXPECT_FALSE(fsys::exists(dir + "/w5"));
  EXPECT_FALSE(fsys::exists(dir + "/w12"));
  EXPECT_FALSE(fsys::exists(dir + "/w0"));
  EXPECT_FALSE(fsys::exists(dir + "/w1"));
  EXPECT_TRUE(fsys::exists(dir + "/keepme"));
  fsys::remove_all(dir);
}

}  // namespace
}  // namespace lego::fuzz
