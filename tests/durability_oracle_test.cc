// Durability-oracle conformance: seeded kill:N schedules at every storage
// failpoint site drive real child deaths through a paged forked campaign,
// and the oracle must adjudicate every one of them as the-schedule-working
// (zero DUR-* false positives), byte-identically across reruns. The planted
// skip-fsync defect is the positive control: the same machinery must flag
// it and triage must minimize a DUR-* reproducer.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "chaos/failpoint.h"
#include "fuzz/backend.h"
#include "fuzz/campaign.h"
#include "fuzz/checkpoint.h"
#include "fuzz/fuzzer.h"
#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "minidb/profile.h"
#include "triage/triage.h"

namespace lego::fuzz {
namespace {

/// Deterministic generation-only fuzzer cycling through fixed scripts (no
/// feedback), so campaign outcomes depend only on (scripts, schedule).
class ScriptFuzzer : public Fuzzer {
 public:
  explicit ScriptFuzzer(std::vector<std::string> scripts)
      : scripts_(std::move(scripts)) {}

  std::string name() const override { return "script"; }
  void Prepare(ExecutionHarness* harness) override { (void)harness; }

  TestCase Next() override {
    auto tc = TestCase::FromSql(scripts_[next_ % scripts_.size()]);
    ++next_;
    EXPECT_TRUE(tc.ok());
    return std::move(*tc);
  }

  void OnResult(const TestCase& tc, const ExecResult& result) override {
    (void)tc;
    (void)result;
  }

  std::unique_ptr<Fuzzer> CloneForWorker(int worker_id) const override {
    (void)worker_id;
    return std::make_unique<ScriptFuzzer>(scripts_);
  }

 private:
  std::vector<std::string> scripts_;
  size_t next_ = 0;
};

std::vector<std::string> WorkloadScripts() {
  return {
      "CREATE TABLE t (a INT, b TEXT); INSERT INTO t VALUES (1, 'x'); "
      "INSERT INTO t VALUES (2, 'y'); UPDATE t SET b = 'z' WHERE a = 2; "
      "SELECT a FROM t;",
      "CREATE TABLE u (c INT); BEGIN; INSERT INTO u VALUES (3); "
      "INSERT INTO u VALUES (4); COMMIT; DELETE FROM u WHERE c = 3;",
      "CREATE TABLE v (d INT); INSERT INTO v VALUES (5); CHECKPOINT; "
      "INSERT INTO v VALUES (6); SELECT d FROM v;",
  };
}

/// RAII: no armed schedule may leak into later tests.
class ChaosGuard {
 public:
  ~ChaosGuard() { chaos::DisarmAll(); }
};

size_t CountDurBugs(const CampaignResult& result) {
  size_t n = 0;
  for (const std::string& id : result.bug_ids) {
    if (id.rfind("DUR-", 0) == 0) ++n;
  }
  return n;
}

CampaignResult RunSchedule(const std::string& spec, const std::string& dir,
                           bool planted_skip_fsync, int executions) {
  chaos::DisarmAll();
  if (!spec.empty()) {
    Status armed = chaos::ArmSpec(spec, /*seed=*/11);
    EXPECT_TRUE(armed.ok()) << armed.ToString();
  }
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");
  EXPECT_NE(profile, nullptr);

  std::filesystem::remove_all(dir);
  BackendOptions backend;
  backend.kind = BackendKind::kForked;
  backend.storage = StorageKind::kPaged;
  backend.db_dir = dir;
  backend.durability_check = true;
  backend.chaos_note = spec;
  backend.planted_skip_fsync = planted_skip_fsync;
  ExecutionHarness harness(*profile, backend);

  ScriptFuzzer fuzzer(WorkloadScripts());
  CampaignOptions options;
  options.max_executions = executions;
  options.num_workers = 1;
  options.snapshot_every = 0;
  CampaignResult result = RunCampaign(&fuzzer, &harness, options);
  chaos::DisarmAll();
  std::filesystem::remove_all(dir);
  return result;
}

TEST(DurabilityOracleTest, KillScheduleSweepHasZeroFalsePositives) {
  ChaosGuard guard;
  // Every storage site the chaos grammar registers, at early and late hit
  // ordinals; wal.recover is excluded from kill (it also fires in the
  // parent's verification read) and covered by the inconclusive test below.
  const std::vector<std::string> schedules = {
      "env.write=kill:2",   "env.write=kill:9",  "env.sync=kill:1",
      "env.sync=kill:5",    "wal.append=kill:3", "wal.append=kill:14",
      "pager.flush=kill:1",
  };
  const std::string dir = ::testing::TempDir() + "dur_sweep_db";
  for (const std::string& spec : schedules) {
    CampaignResult result = RunSchedule(spec, dir, false, 9);
    EXPECT_EQ(result.executions, 9) << spec;
    // The schedule kills children mid-commit over and over; a correct
    // engine + oracle pair adjudicates every death as injected.
    EXPECT_EQ(CountDurBugs(result), 0u)
        << spec << " produced a durability false positive";
  }
}

TEST(DurabilityOracleTest, SweepRerunsAreByteIdentical) {
  ChaosGuard guard;
  const std::string dir = ::testing::TempDir() + "dur_rerun_db";
  CampaignResult first = RunSchedule("env.sync=kill:4", dir, false, 9);
  CampaignResult second = RunSchedule("env.sync=kill:4", dir, false, 9);
  EXPECT_EQ(ResultDigest(first), ResultDigest(second));
  EXPECT_EQ(first.statements_executed, second.statements_executed);
  EXPECT_EQ(first.statement_errors, second.statement_errors);
}

TEST(DurabilityOracleTest, ArmedRecoveryFaultIsInconclusiveNotFalsePositive) {
  ChaosGuard guard;
  // wal.recover=always makes the parent's own verification read fail for
  // every adjudicated death; those deaths must pass through as ordinary
  // REAL-* crashes, never as DUR-RECOVERY-FAIL.
  chaos::DisarmAll();
  ASSERT_TRUE(chaos::ArmSpec("wal.recover=always", 11).ok());
  ASSERT_TRUE(chaos::ArmSpec("wal.append=kill:6", 11).ok());

  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");
  ASSERT_NE(profile, nullptr);
  const std::string dir = ::testing::TempDir() + "dur_inconclusive_db";
  std::filesystem::remove_all(dir);
  BackendOptions backend;
  backend.kind = BackendKind::kForked;
  backend.storage = StorageKind::kPaged;
  backend.db_dir = dir;
  backend.durability_check = true;
  ExecutionHarness harness(*profile, backend);
  ScriptFuzzer fuzzer(WorkloadScripts());
  CampaignOptions options;
  options.max_executions = 6;
  options.num_workers = 1;
  options.snapshot_every = 0;
  CampaignResult result = RunCampaign(&fuzzer, &harness, options);
  chaos::DisarmAll();
  std::filesystem::remove_all(dir);

  EXPECT_EQ(CountDurBugs(result), 0u);
}

TEST(DurabilityOracleTest, PlantedSkipFsyncIsCaughtAndTriaged) {
  ChaosGuard guard;
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");
  ASSERT_NE(profile, nullptr);

  chaos::DisarmAll();
  // Hit 8 lands inside the first script every time — after three
  // acknowledged (never-synced) commits — so the triage replay of a single
  // captured case reproduces the death from a fresh child.
  ASSERT_TRUE(chaos::ArmSpec("wal.append=kill:8", 11).ok());
  const std::string dir = ::testing::TempDir() + "dur_planted_db";
  std::filesystem::remove_all(dir);
  BackendOptions backend;
  backend.kind = BackendKind::kForked;
  backend.storage = StorageKind::kPaged;
  backend.db_dir = dir;
  backend.durability_check = true;
  backend.planted_skip_fsync = true;
  backend.chaos_note = "wal.append=kill:8";
  ExecutionHarness harness(*profile, backend);
  ScriptFuzzer fuzzer(WorkloadScripts());
  CampaignOptions options;
  options.max_executions = 9;
  options.num_workers = 1;
  options.snapshot_every = 0;
  CampaignResult result = RunCampaign(&fuzzer, &harness, options);

  // Commits were acknowledged without fsync, then the schedule SIGKILLed
  // the child: acknowledged effects are genuinely gone and the oracle must
  // say so.
  ASSERT_GE(CountDurBugs(result), 1u);

  // The finding triages like any other crash: replayed, minimized, and
  // written out with the kill schedule in its artifact.
  const std::string repro_dir = ::testing::TempDir() + "dur_planted_repros";
  std::filesystem::remove_all(repro_dir);
  triage::TriageOptions triage_options;
  triage_options.backend = backend;
  triage_options.repro_dir = repro_dir;
  triage::TriageReport report =
      triage::TriageCampaign(result, *profile, "", triage_options);
  chaos::DisarmAll();

  bool saw_dur = false;
  for (const triage::TriagedBug& bug : report.bugs) {
    if (bug.signature.Key().find("DUR-") != std::string::npos) {
      saw_dur = true;
      EXPECT_FALSE(bug.artifact_path.empty());
    }
  }
  EXPECT_TRUE(saw_dur);
  std::filesystem::remove_all(repro_dir);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lego::fuzz
