#include <gtest/gtest.h>

#include "lego/generator.h"
#include "minidb/database.h"
#include "sql/parser.h"
#include "util/random.h"

namespace lego::minidb {
namespace {

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  ResultSet Exec(const std::string& sql_text) {
    auto stmt = sql::Parser::ParseStatement(sql_text);
    EXPECT_TRUE(stmt.ok()) << sql_text << ": " << stmt.status().ToString();
    auto result = db_.Execute(**stmt);
    EXPECT_TRUE(result.ok()) << sql_text << ": "
                             << result.status().ToString();
    return result.ok() ? std::move(*result) : ResultSet{};
  }

  Status ExecErr(const std::string& sql_text) {
    auto stmt = sql::Parser::ParseStatement(sql_text);
    EXPECT_TRUE(stmt.ok()) << sql_text;
    auto result = db_.Execute(**stmt);
    EXPECT_FALSE(result.ok()) << sql_text << " unexpectedly succeeded";
    return result.ok() ? Status::OK() : result.status();
  }

  Database db_;
};

TEST_F(ExecutorEdgeTest, WindowRankDenseRankNtile) {
  Exec("CREATE TABLE w (v INT)");
  Exec("INSERT INTO w VALUES (10), (10), (20), (30)");
  ResultSet rs = Exec(
      "SELECT v, RANK() OVER (ORDER BY v), DENSE_RANK() OVER (ORDER BY v), "
      "NTILE(2) OVER (ORDER BY v) FROM w ORDER BY v, 2");
  ASSERT_EQ(rs.rows.size(), 4u);
  // Two ties at v=10: RANK 1,1 then 3; DENSE_RANK 1,1 then 2.
  EXPECT_EQ(rs.rows[0][1].AsInt(), 1);
  EXPECT_EQ(rs.rows[1][1].AsInt(), 1);
  EXPECT_EQ(rs.rows[2][1].AsInt(), 3);
  EXPECT_EQ(rs.rows[2][2].AsInt(), 2);
  EXPECT_EQ(rs.rows[3][1].AsInt(), 4);
  // NTILE(2) over 4 rows: buckets 1,1,2,2.
  EXPECT_EQ(rs.rows[0][3].AsInt(), 1);
  EXPECT_EQ(rs.rows[3][3].AsInt(), 2);
}

TEST_F(ExecutorEdgeTest, LagWithDefaultAndAggregateOverWindow) {
  Exec("CREATE TABLE w (v INT)");
  Exec("INSERT INTO w VALUES (1), (2), (3)");
  ResultSet lag = Exec(
      "SELECT v, LAG(v, 1, -99) OVER (ORDER BY v) FROM w ORDER BY v");
  EXPECT_EQ(lag.rows[0][1].AsInt(), -99);  // default fills the gap
  EXPECT_EQ(lag.rows[1][1].AsInt(), 1);
  ResultSet sum = Exec("SELECT v, SUM(v) OVER (ORDER BY v) FROM w LIMIT 1");
  EXPECT_EQ(sum.rows[0][1].AsInt(), 6);  // whole-partition aggregate
}

TEST_F(ExecutorEdgeTest, DistinctAggregatesAndGroupConcat) {
  Exec("CREATE TABLE g (k INT, v INT)");
  Exec("INSERT INTO g VALUES (1, 5), (1, 5), (1, 7)");
  ResultSet rs = Exec(
      "SELECT COUNT(v), COUNT(DISTINCT v), SUM(DISTINCT v), "
      "GROUP_CONCAT(v) FROM g");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 3);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 2);
  EXPECT_EQ(rs.rows[0][2].AsInt(), 12);
  EXPECT_EQ(rs.rows[0][3].text_value(), "5,5,7");
}

TEST_F(ExecutorEdgeTest, GroupByOrdinalMatchesExplicit) {
  Exec("CREATE TABLE g (k INT, v INT)");
  Exec("INSERT INTO g VALUES (1, 10), (2, 20), (1, 30)");
  ResultSet by_name = Exec("SELECT k, SUM(v) FROM g GROUP BY k ORDER BY k");
  ResultSet by_ordinal = Exec("SELECT k, SUM(v) FROM g GROUP BY 1 ORDER BY k");
  ASSERT_EQ(by_name.rows.size(), by_ordinal.rows.size());
  for (size_t i = 0; i < by_name.rows.size(); ++i) {
    EXPECT_EQ(by_name.rows[i][1].AsInt(), by_ordinal.rows[i][1].AsInt());
  }
  EXPECT_EQ(ExecErr("SELECT k FROM g GROUP BY 7").code(),
            StatusCode::kSemanticError);
}

TEST_F(ExecutorEdgeTest, LeftHashJoinPadsNulls) {
  Exec("CREATE TABLE l (k INT)");
  Exec("CREATE TABLE r (k INT)");
  for (int i = 0; i < 8; ++i) {
    Exec("INSERT INTO l VALUES (" + std::to_string(i) + ")");
    Exec("INSERT INTO r VALUES (" + std::to_string(i + 4) + ")");
  }
  ResultSet rs = Exec(
      "SELECT l.k, r.k FROM l LEFT JOIN r ON l.k = r.k ORDER BY l.k");
  ASSERT_EQ(rs.rows.size(), 8u);
  EXPECT_TRUE(rs.rows[0][1].is_null());   // k=0 unmatched
  EXPECT_FALSE(rs.rows[7][1].is_null());  // k=7 matched
  EXPECT_TRUE(db_.session().feature_trace.back().test(
      static_cast<size_t>(ExecFeature::kHashJoinUsed)));
}

TEST_F(ExecutorEdgeTest, InsertDefaultValuesForm) {
  Exec("CREATE TABLE d (a INT DEFAULT 3, b TEXT DEFAULT 'x')");
  Exec("INSERT INTO d DEFAULT VALUES");
  ResultSet rs = Exec("SELECT a, b FROM d");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 3);
  EXPECT_EQ(rs.rows[0][1].text_value(), "x");
}

TEST_F(ExecutorEdgeTest, InsertWidthErrors) {
  Exec("CREATE TABLE t (a INT, b INT)");
  EXPECT_EQ(ExecErr("INSERT INTO t VALUES (1, 2, 3)").code(),
            StatusCode::kSemanticError);
  EXPECT_EQ(ExecErr("INSERT INTO t (a) VALUES (1, 2)").code(),
            StatusCode::kSemanticError);
  EXPECT_EQ(ExecErr("INSERT INTO t (a, a) VALUES (1, 2)").code(),
            StatusCode::kSemanticError);
  EXPECT_EQ(ExecErr("INSERT INTO t (zz) VALUES (1)").code(),
            StatusCode::kSemanticError);
}

TEST_F(ExecutorEdgeTest, ValuesWidthMismatchErrors) {
  EXPECT_EQ(ExecErr("VALUES (1, 2), (3)").code(),
            StatusCode::kSemanticError);
}

TEST_F(ExecutorEdgeTest, SelectStarQualifiedAndUnknownQualifier) {
  Exec("CREATE TABLE a (x INT)");
  Exec("CREATE TABLE b (y INT)");
  Exec("INSERT INTO a VALUES (1)");
  Exec("INSERT INTO b VALUES (2)");
  ResultSet rs = Exec("SELECT b.* FROM a, b");
  ASSERT_EQ(rs.column_names.size(), 1u);
  EXPECT_EQ(rs.column_names[0], "y");
  EXPECT_EQ(ExecErr("SELECT zz.* FROM a").code(),
            StatusCode::kSemanticError);
}

TEST_F(ExecutorEdgeTest, SubqueryInFromUsesAlias) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1), (2), (3)");
  ResultSet rs = Exec(
      "SELECT s.x FROM (SELECT x FROM t WHERE x > 1) AS s WHERE s.x < 3");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 2);
}

TEST_F(ExecutorEdgeTest, ScalarSubqueryCardinalityError) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1), (2)");
  EXPECT_EQ(ExecErr("SELECT (SELECT x FROM t)").code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorEdgeTest, CteColumnListRenames) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (7)");
  ResultSet rs = Exec("WITH w (renamed) AS (SELECT x FROM t) "
                      "SELECT renamed FROM w");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 7);
}

TEST_F(ExecutorEdgeTest, BeforeTriggerFiresBeforeInsert) {
  Exec("CREATE TABLE t (x INT)");
  Exec("CREATE TABLE log (n INT)");
  Exec("CREATE TRIGGER tg BEFORE INSERT ON t FOR EACH ROW "
       "INSERT INTO log VALUES (1)");
  Exec("INSERT INTO t VALUES (5)");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM log").rows[0][0].AsInt(), 1);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].AsInt(), 1);
}

TEST_F(ExecutorEdgeTest, StatementLevelTriggerFiresOncePerStatement) {
  Exec("CREATE TABLE t (x INT)");
  Exec("CREATE TABLE log (n INT)");
  // No FOR EACH ROW: fires once per affecting statement.
  Exec("CREATE TRIGGER tg AFTER DELETE ON t INSERT INTO log VALUES (1)");
  Exec("INSERT INTO t VALUES (1), (2), (3)");
  Exec("DELETE FROM t WHERE x < 3");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM log").rows[0][0].AsInt(), 1);
  // Deleting zero rows does not fire it.
  Exec("DELETE FROM t WHERE x = 99");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM log").rows[0][0].AsInt(), 1);
}

TEST_F(ExecutorEdgeTest, UpdateRuleRewrites) {
  Exec("CREATE TABLE t (x INT)");
  Exec("CREATE TABLE log (x INT)");
  Exec("INSERT INTO t VALUES (1)");
  Exec("CREATE RULE r AS ON UPDATE TO t DO INSTEAD "
       "INSERT INTO log VALUES (1)");
  Exec("UPDATE t SET x = 9");
  EXPECT_EQ(Exec("SELECT x FROM t").rows[0][0].AsInt(), 1);  // untouched
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM log").rows[0][0].AsInt(), 1);
  Exec("DROP RULE r");
  Exec("UPDATE t SET x = 9");
  EXPECT_EQ(Exec("SELECT x FROM t").rows[0][0].AsInt(), 9);
}

TEST_F(ExecutorEdgeTest, CopyQueryFormTabSeparated) {
  Exec("CREATE TABLE t (a INT, b TEXT)");
  Exec("INSERT INTO t VALUES (1, 'x')");
  ResultSet rs = Exec("COPY (SELECT a, b FROM t) TO STDOUT");
  ASSERT_EQ(rs.notes.size(), 1u);
  EXPECT_EQ(rs.notes[0], "1\tx");
  EXPECT_EQ(ExecErr("COPY t FROM STDIN").code(), StatusCode::kUnsupported);
}

TEST_F(ExecutorEdgeTest, LimitOffsetEdgeValues) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1), (2), (3)");
  EXPECT_EQ(Exec("SELECT x FROM t LIMIT 0").rows.size(), 0u);
  EXPECT_EQ(Exec("SELECT x FROM t LIMIT 99").rows.size(), 3u);
  EXPECT_EQ(Exec("SELECT x FROM t ORDER BY x LIMIT 2 OFFSET 2").rows.size(),
            1u);
  EXPECT_EQ(Exec("SELECT x FROM t OFFSET 99").rows.size(), 0u);
  EXPECT_EQ(ExecErr("SELECT x FROM t LIMIT -1").code(),
            StatusCode::kExecutionError);
  // Computed limit expressions are allowed.
  EXPECT_EQ(Exec("SELECT x FROM t LIMIT 1 + 1").rows.size(), 2u);
}

TEST_F(ExecutorEdgeTest, OrderByNullsSortFirst) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (2), (NULL), (1)");
  ResultSet asc = Exec("SELECT x FROM t ORDER BY x");
  EXPECT_TRUE(asc.rows[0][0].is_null());
  ResultSet desc = Exec("SELECT x FROM t ORDER BY x DESC");
  EXPECT_TRUE(desc.rows[2][0].is_null());
}

TEST_F(ExecutorEdgeTest, UnionColumnCountMismatchErrors) {
  Exec("CREATE TABLE t (x INT, y INT)");
  EXPECT_EQ(ExecErr("SELECT x FROM t UNION SELECT x, y FROM t").code(),
            StatusCode::kSemanticError);
}

TEST_F(ExecutorEdgeTest, ShowUnknownVariableYieldsNull) {
  ResultSet rs = Exec("SHOW nothing_here");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
  Exec("SET dialect_probe = 1");
  EXPECT_EQ(Exec("SHOW dialect_probe").rows[0][0].AsInt(), 1);
}

TEST_F(ExecutorEdgeTest, AlterSystemSetReadableAsSystemVar) {
  Exec("ALTER SYSTEM SET checkpoint_interval = 16");
  auto stmt =
      sql::Parser::ParseStatement("SELECT @@SESSION.\"system.checkpoint_interval\"");
  auto result = db_.Execute(**stmt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt(), 16);
}

TEST_F(ExecutorEdgeTest, SequencesDropAndMissing) {
  Exec("CREATE SEQUENCE s");
  EXPECT_EQ(ExecErr("SELECT CURRVAL('s')").code(),
            StatusCode::kExecutionError);  // not yet advanced
  Exec("DROP SEQUENCE s");
  EXPECT_EQ(ExecErr("SELECT NEXTVAL('s')").code(), StatusCode::kNotFound);
  EXPECT_EQ(ExecErr("CREATE SEQUENCE z INCREMENT 0").code(),
            StatusCode::kSemanticError);
}

TEST_F(ExecutorEdgeTest, CreateIndexOnPopulatedTableEnforcesUnique) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1), (1)");
  EXPECT_EQ(ExecErr("CREATE UNIQUE INDEX ux ON t (x)").code(),
            StatusCode::kConstraintViolation);
  Exec("CREATE INDEX nx ON t (x)");  // non-unique is fine
  EXPECT_EQ(Exec("SELECT x FROM t WHERE x = 1").rows.size(), 2u);
}

TEST_F(ExecutorEdgeTest, MultiplePrimaryKeysRejected) {
  EXPECT_EQ(
      ExecErr("CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)").code(),
      StatusCode::kSemanticError);
  EXPECT_EQ(ExecErr("CREATE TABLE t (a INT, a INT)").code(),
            StatusCode::kSemanticError);
}

TEST_F(ExecutorEdgeTest, NullsNeverConflictInUniqueIndex) {
  Exec("CREATE TABLE t (x INT UNIQUE)");
  Exec("INSERT INTO t VALUES (NULL)");
  Exec("INSERT INTO t VALUES (NULL)");  // SQL: NULLs don't collide
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].AsInt(), 2);
}

TEST_F(ExecutorEdgeTest, TypeCoercionOnInsert) {
  Exec("CREATE TABLE t (a INT, b TEXT, c BOOL)");
  Exec("INSERT INTO t VALUES ('42', 7, 1)");
  ResultSet rs = Exec("SELECT TYPEOF(a), TYPEOF(b), TYPEOF(c) FROM t");
  EXPECT_EQ(rs.rows[0][0].text_value(), "INT");
  EXPECT_EQ(rs.rows[0][1].text_value(), "TEXT");
  EXPECT_EQ(rs.rows[0][2].text_value(), "BOOL");
}

/// Flattens an execution outcome — status, columns, rows, notes, affected
/// count — into one comparable string.
std::string RenderOutcome(const StatusOr<ResultSet>& result) {
  if (!result.ok()) return "ERR:" + result.status().ToString();
  std::string out;
  for (const auto& name : result->column_names) {
    out += name;
    out += '|';
  }
  out += '\n';
  for (const Row& row : result->rows) {
    for (const Value& v : row) {
      out += v.ToText();
      out += '|';
    }
    out += '\n';
  }
  for (const auto& note : result->notes) {
    out += note;
    out += '\n';
  }
  out += "affected=" + std::to_string(result->affected_rows);
  return out;
}

// Differential oracle for the parallel campaign runner's core assumption:
// executions are independent, so two fresh Database instances fed the same
// deterministic statement batch must agree on every statement's outcome and
// end with identical catalog state. Hidden shared state (process globals,
// cross-instance caches) or nondeterminism (iteration over pointer-keyed
// containers, uninitialized reads) would show up as divergence here.
TEST(ExecutorDifferentialTest, FreshInstancesAgreeOnDeterministicBatch) {
  const DialectProfile& profile = DialectProfile::PgLite();

  // One deterministic batch of DDL + DML + queries from the shared
  // statement generator.
  Rng rng(2026);
  core::StatementGenerator generator(&profile, &rng);
  core::SchemaContext ctx;
  std::vector<sql::StmtPtr> batch;
  auto emit = [&](sql::StatementType type) {
    auto stmt = generator.Generate(type, &ctx);
    ctx.Apply(*stmt);
    batch.push_back(std::move(stmt));
  };
  emit(sql::StatementType::kCreateTable);
  emit(sql::StatementType::kCreateTable);
  const std::vector<sql::StatementType> mix = {
      sql::StatementType::kInsert,      sql::StatementType::kInsert,
      sql::StatementType::kSelect,      sql::StatementType::kUpdate,
      sql::StatementType::kCreateIndex, sql::StatementType::kInsert,
      sql::StatementType::kSelect,      sql::StatementType::kDelete,
      sql::StatementType::kCreateView,  sql::StatementType::kSelect,
  };
  for (int round = 0; round < 8; ++round) {
    for (sql::StatementType type : mix) emit(type);
  }

  Database first(&profile);
  Database second(&profile);
  for (const sql::StmtPtr& stmt : batch) {
    auto a = first.Execute(*stmt);
    auto b = second.Execute(*stmt);
    ASSERT_EQ(RenderOutcome(a), RenderOutcome(b))
        << "instances diverged on: " << sql::ToSql(*stmt);
  }

  // Catalog state must match too: same tables, same contents.
  ASSERT_EQ(first.catalog().TableNames(), second.catalog().TableNames());
  for (const std::string& table : first.catalog().TableNames()) {
    auto scan = sql::Parser::ParseStatement("SELECT * FROM " + table);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(RenderOutcome(first.Execute(**scan)),
              RenderOutcome(second.Execute(**scan)))
        << "table " << table << " diverged";
  }
}

}  // namespace
}  // namespace lego::minidb
