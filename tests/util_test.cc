#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/hash.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace lego {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::SyntaxError("x").code(), StatusCode::kSyntaxError);
  EXPECT_EQ(Status::SemanticError("x").code(), StatusCode::kSemanticError);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::ExecutionError("x").code(), StatusCode::kExecutionError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::PermissionDenied("x").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::TransactionError("x").code(),
            StatusCode::kTransactionError);
  EXPECT_EQ(Status::Crash("x").code(), StatusCode::kCrash);
  EXPECT_EQ(Status::Internal("boom").ToString(), "Internal: boom");
  EXPECT_TRUE(Status::Crash("x").IsCrash());
  EXPECT_FALSE(Status::NotFound("x").IsCrash());
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  StatusOr<int> bad(Status::NotFound("gone"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MacrosPropagate) {
  auto inner = [](bool fail) -> StatusOr<int> {
    if (fail) return Status::InvalidArgument("nope");
    return 7;
  };
  auto outer = [&](bool fail) -> StatusOr<int> {
    LEGO_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbabilityRoughly) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25);
  EXPECT_GT(hits, 2000);
  EXPECT_LT(hits, 3000);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, IdentifiersAreValid) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    std::string id = rng.NextIdentifier(8);
    ASSERT_FALSE(id.empty());
    EXPECT_LE(id.size(), 8u);
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(id[0])));
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(HashTest, Fnv1aIsStableAndDistinct) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
  static_assert(Fnv1a64("x") != Fnv1a64("y"), "constexpr evaluation");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilTest, CaseConversions) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("aBc1"), "ABC1");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringUtilTest, QuoteSqlStringEscapesQuotes) {
  EXPECT_EQ(QuoteSqlString("abc"), "'abc'");
  EXPECT_EQ(QuoteSqlString("it's"), "'it''s'");
  EXPECT_EQ(QuoteSqlString(""), "''");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

}  // namespace
}  // namespace lego
