#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/statement_type.h"

namespace lego::sql {
namespace {

StmtPtr MustParse(const std::string& text) {
  auto result = Parser::ParseStatement(text);
  EXPECT_TRUE(result.ok()) << text << " -> " << result.status().ToString();
  return result.ok() ? std::move(*result) : nullptr;
}

TEST(ParserTest, ParsesCreateTable) {
  StmtPtr stmt = MustParse(
      "CREATE TABLE t1 (a INT PRIMARY KEY, b VARCHAR(100) NOT NULL, "
      "c REAL DEFAULT 1.5, d BOOL UNIQUE)");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->type(), StatementType::kCreateTable);
  const auto& ct = static_cast<const CreateTableStmt&>(*stmt);
  ASSERT_EQ(ct.columns.size(), 4u);
  EXPECT_TRUE(ct.columns[0].primary_key);
  EXPECT_EQ(ct.columns[1].type, SqlType::kText);
  EXPECT_TRUE(ct.columns[1].not_null);
  EXPECT_NE(ct.columns[2].default_value, nullptr);
  EXPECT_TRUE(ct.columns[3].unique);
}

TEST(ParserTest, ParsesTemporaryAndIfNotExists) {
  StmtPtr stmt = MustParse("CREATE TEMPORARY TABLE IF NOT EXISTS tt (x INT)");
  const auto& ct = static_cast<const CreateTableStmt&>(*stmt);
  EXPECT_TRUE(ct.temporary);
  EXPECT_TRUE(ct.if_not_exists);
}

TEST(ParserTest, ParsesMySqlColumnAttributes) {
  // ZEROFILL/UNSIGNED/YEAR come from the paper's CVE-2021-35643 test case.
  StmtPtr stmt = MustParse("CREATE TABLE v0 (v1 YEAR ZEROFILL ZEROFILL)");
  const auto& ct = static_cast<const CreateTableStmt&>(*stmt);
  EXPECT_EQ(ct.columns[0].type, SqlType::kInt);
}

TEST(ParserTest, ParsesSelectWithAllClauses) {
  StmtPtr stmt = MustParse(
      "SELECT DISTINCT a, SUM(b) AS total FROM t1 JOIN t2 ON t1.k = t2.k "
      "WHERE a > 3 AND b IS NOT NULL GROUP BY a HAVING SUM(b) > 0 "
      "ORDER BY a DESC LIMIT 10 OFFSET 2");
  ASSERT_EQ(stmt->type(), StatementType::kSelect);
  const auto& sel = static_cast<const SelectStmt&>(*stmt);
  EXPECT_TRUE(sel.core.distinct);
  EXPECT_EQ(sel.core.items.size(), 2u);
  EXPECT_EQ(sel.core.items[1].alias, "total");
  ASSERT_NE(sel.core.from, nullptr);
  EXPECT_EQ(sel.core.from->kind(), TableRefKind::kJoin);
  EXPECT_NE(sel.core.where, nullptr);
  EXPECT_EQ(sel.core.group_by.size(), 1u);
  EXPECT_NE(sel.core.having, nullptr);
  EXPECT_EQ(sel.order_by.size(), 1u);
  EXPECT_TRUE(sel.order_by[0].desc);
  EXPECT_NE(sel.limit, nullptr);
  EXPECT_NE(sel.offset, nullptr);
}

TEST(ParserTest, ParsesCompoundSelect) {
  StmtPtr stmt = MustParse(
      "SELECT 32 EXCEPT SELECT v3 + 16 FROM v0 UNION ALL SELECT 1");
  const auto& sel = static_cast<const SelectStmt&>(*stmt);
  ASSERT_EQ(sel.compounds.size(), 2u);
  EXPECT_EQ(sel.compounds[0].first, SetOpKind::kExcept);
  EXPECT_EQ(sel.compounds[1].first, SetOpKind::kUnionAll);
}

TEST(ParserTest, ParsesWindowFunction) {
  StmtPtr stmt = MustParse(
      "SELECT LEAD(v1) OVER (PARTITION BY v2 ORDER BY v1 DESC) FROM t");
  const auto& sel = static_cast<const SelectStmt&>(*stmt);
  const auto& fn =
      static_cast<const FunctionCall&>(*sel.core.items[0].expr);
  ASSERT_NE(fn.window(), nullptr);
  EXPECT_EQ(fn.window()->partition_by.size(), 1u);
  EXPECT_EQ(fn.window()->order_by.size(), 1u);
  EXPECT_TRUE(fn.window()->order_by[0].second);
}

TEST(ParserTest, ParsesSubqueries) {
  StmtPtr stmt = MustParse(
      "SELECT a FROM t WHERE a IN (SELECT b FROM u) AND "
      "EXISTS (SELECT 1 FROM v) AND a = (SELECT MAX(c) FROM w)");
  EXPECT_EQ(stmt->type(), StatementType::kSelect);
}

TEST(ParserTest, ParsesInsertVariants) {
  StmtPtr plain = MustParse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  const auto& ins = static_cast<const InsertStmt&>(*plain);
  EXPECT_EQ(ins.columns.size(), 2u);
  EXPECT_EQ(ins.rows.size(), 2u);

  StmtPtr ignore = MustParse(
      "INSERT LOW_PRIORITY IGNORE INTO v0 VALUES (NULL), (22471185.000000)");
  EXPECT_TRUE(static_cast<const InsertStmt&>(*ignore).or_ignore);

  StmtPtr select_src = MustParse("INSERT INTO t SELECT * FROM u");
  EXPECT_NE(static_cast<const InsertStmt&>(*select_src).select, nullptr);

  StmtPtr replace = MustParse("REPLACE INTO t VALUES (1)");
  EXPECT_EQ(replace->type(), StatementType::kReplace);
}

TEST(ParserTest, ParsesTriggerWithBody) {
  StmtPtr stmt = MustParse(
      "CREATE TRIGGER v0 AFTER UPDATE ON v0 FOR EACH ROW "
      "INSERT INTO v0 SELECT * FROM v2 GROUP BY 89, 34");
  const auto& tg = static_cast<const CreateTriggerStmt&>(*stmt);
  EXPECT_EQ(tg.timing, TriggerTiming::kAfter);
  EXPECT_EQ(tg.event, TriggerEvent::kUpdate);
  EXPECT_TRUE(tg.for_each_row);
  ASSERT_NE(tg.body, nullptr);
  EXPECT_EQ(tg.body->type(), StatementType::kInsert);
}

TEST(ParserTest, ParsesRuleWithNotifyAction) {
  // The paper's Fig. 7 line 2.
  StmtPtr stmt = MustParse(
      "CREATE OR REPLACE RULE v1 AS ON INSERT TO v0 DO INSTEAD "
      "NOTIFY COMPRESSION");
  const auto& rule = static_cast<const CreateRuleStmt&>(*stmt);
  EXPECT_TRUE(rule.or_replace);
  EXPECT_TRUE(rule.instead);
  ASSERT_NE(rule.action, nullptr);
  EXPECT_EQ(rule.action->type(), StatementType::kNotify);
}

TEST(ParserTest, ParsesRuleDoNothing) {
  StmtPtr stmt =
      MustParse("CREATE RULE r AS ON DELETE TO t DO INSTEAD NOTHING");
  EXPECT_EQ(static_cast<const CreateRuleStmt&>(*stmt).action, nullptr);
}

TEST(ParserTest, ParsesCopyForms) {
  StmtPtr table_form = MustParse("COPY t TO STDOUT CSV HEADER");
  const auto& copy = static_cast<const CopyStmt&>(*table_form);
  EXPECT_TRUE(copy.csv);
  EXPECT_TRUE(copy.header);

  // The paper's Fig. 7 line 3.
  StmtPtr query_form = MustParse(
      "COPY (SELECT 32 EXCEPT SELECT v3 + 16 FROM v0) TO STDOUT CSV HEADER");
  EXPECT_NE(static_cast<const CopyStmt&>(*query_form).query, nullptr);
}

TEST(ParserTest, ParsesWithStatement) {
  // The paper's Fig. 7 line 4 (triple negation included).
  StmtPtr stmt = MustParse(
      "WITH v2 AS (INSERT INTO v0 VALUES (0)) "
      "DELETE FROM v0 WHERE v3 = - - - 48");
  const auto& with = static_cast<const WithStmt&>(*stmt);
  ASSERT_EQ(with.ctes.size(), 1u);
  EXPECT_EQ(with.ctes[0].statement->type(), StatementType::kInsert);
  EXPECT_EQ(with.body->type(), StatementType::kDelete);
}

TEST(ParserTest, ParsesTransactionControl) {
  EXPECT_EQ(MustParse("BEGIN")->type(), StatementType::kBegin);
  EXPECT_EQ(MustParse("START TRANSACTION")->type(), StatementType::kBegin);
  EXPECT_EQ(MustParse("COMMIT")->type(), StatementType::kCommit);
  EXPECT_EQ(MustParse("ROLLBACK")->type(), StatementType::kRollback);
  EXPECT_EQ(MustParse("ROLLBACK TO SAVEPOINT sp")->type(),
            StatementType::kRollbackTo);
  EXPECT_EQ(MustParse("SAVEPOINT sp")->type(), StatementType::kSavepoint);
  EXPECT_EQ(MustParse("RELEASE SAVEPOINT sp")->type(),
            StatementType::kRelease);
}

TEST(ParserTest, ParsesSessionStatements) {
  // The paper's Fig. 3 line 1.
  StmtPtr set = MustParse("SET @@SESSION.explicit_for_timestamp = 0");
  const auto& pragma = static_cast<const PragmaStmt&>(*set);
  EXPECT_TRUE(pragma.is_set);
  EXPECT_TRUE(pragma.session_scope);
  EXPECT_EQ(pragma.name, "explicit_for_timestamp");

  EXPECT_EQ(MustParse("PRAGMA foreign_keys = 1")->type(),
            StatementType::kPragma);
  EXPECT_EQ(MustParse("SHOW TABLES")->type(), StatementType::kShow);
  EXPECT_EQ(MustParse("EXPLAIN SELECT 1")->type(), StatementType::kExplain);
  EXPECT_EQ(MustParse("ANALYZE t")->type(), StatementType::kAnalyze);
  EXPECT_EQ(MustParse("VACUUM")->type(), StatementType::kVacuum);
  EXPECT_EQ(MustParse("REINDEX ix")->type(), StatementType::kReindex);
  EXPECT_EQ(MustParse("CHECKPOINT")->type(), StatementType::kCheckpoint);
  EXPECT_EQ(MustParse("NOTIFY ch, 'payload'")->type(),
            StatementType::kNotify);
  EXPECT_EQ(MustParse("LISTEN ch")->type(), StatementType::kListen);
  EXPECT_EQ(MustParse("UNLISTEN ch")->type(), StatementType::kUnlisten);
  EXPECT_EQ(MustParse("COMMENT ON TABLE t IS 'hello'")->type(),
            StatementType::kComment);
  EXPECT_EQ(MustParse("DISCARD ALL")->type(), StatementType::kDiscard);
  // The paper's Fig. 3 line 11.
  EXPECT_EQ(MustParse("ALTER SYSTEM MAJOR FREEZE")->type(),
            StatementType::kAlterSystem);
}

TEST(ParserTest, ParsesDclStatements) {
  EXPECT_EQ(MustParse("GRANT SELECT ON t TO u")->type(),
            StatementType::kGrant);
  EXPECT_EQ(MustParse("GRANT ALL PRIVILEGES ON TABLE t TO u")->type(),
            StatementType::kGrant);
  EXPECT_EQ(MustParse("REVOKE INSERT ON t FROM u")->type(),
            StatementType::kRevoke);
  EXPECT_EQ(MustParse("CREATE USER alice")->type(),
            StatementType::kCreateUser);
  EXPECT_EQ(MustParse("DROP USER IF EXISTS alice")->type(),
            StatementType::kDropUser);
}

TEST(ParserTest, ParsesAlterTableVariants) {
  EXPECT_EQ(MustParse("ALTER TABLE t ADD COLUMN x INT")->type(),
            StatementType::kAlterTable);
  EXPECT_EQ(MustParse("ALTER TABLE t DROP COLUMN x")->type(),
            StatementType::kAlterTable);
  EXPECT_EQ(MustParse("ALTER TABLE t RENAME COLUMN a TO b")->type(),
            StatementType::kAlterTable);
  EXPECT_EQ(MustParse("ALTER TABLE t RENAME TO u")->type(),
            StatementType::kAlterTable);
}

TEST(ParserTest, ParsesExpressionsPrecedence) {
  auto expr = Parser::ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(ToSql(**expr), "(1 + (2 * 3))");

  expr = Parser::ParseExpression("NOT a = 1 OR b < 2 AND c IS NULL");
  ASSERT_TRUE(expr.ok());
}

TEST(ParserTest, ParsesStringEscapes) {
  auto expr = Parser::ParseExpression("'it''s'");
  ASSERT_TRUE(expr.ok());
  const auto& lit = static_cast<const Literal&>(**expr);
  EXPECT_EQ(lit.text_value(), "it's");
}

TEST(ParserTest, RejectsBrokenInput) {
  EXPECT_FALSE(Parser::ParseStatement("SELEC 1").ok());
  EXPECT_FALSE(Parser::ParseStatement("SELECT FROM WHERE").ok());
  EXPECT_FALSE(Parser::ParseStatement("CREATE TABLE t").ok());
  EXPECT_FALSE(Parser::ParseStatement("INSERT INTO t VALUES (1").ok());
  EXPECT_FALSE(Parser::ParseStatement("SELECT 'unterminated").ok());
  EXPECT_FALSE(Parser::ParseStatement("").ok());
}

TEST(ParserTest, ParsesScriptWithComments) {
  auto script = Parser::ParseScript(
      "-- line comment\n"
      "SELECT 1; /* block\ncomment */ SELECT 2;\n");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 2u);
}

TEST(ParserTest, PaperCaseStudyScriptParses) {
  // Fig. 7 in full.
  auto script = Parser::ParseScript(
      "CREATE TABLE v0 (v4 INT, v3 INT UNIQUE, v2 INT, v1 INT UNIQUE);\n"
      "CREATE OR REPLACE RULE v1 AS ON INSERT TO v0 DO INSTEAD "
      "NOTIFY COMPRESSION;\n"
      "COPY (SELECT 32 EXCEPT SELECT v3 + 16 FROM v0) TO STDOUT CSV HEADER;\n"
      "WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 "
      "WHERE v3 = - - - 48;\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->size(), 4u);
  EXPECT_EQ((*script)[0]->type(), StatementType::kCreateTable);
  EXPECT_EQ((*script)[1]->type(), StatementType::kCreateRule);
  EXPECT_EQ((*script)[2]->type(), StatementType::kCopy);
  EXPECT_EQ((*script)[3]->type(), StatementType::kWith);
}

// Round-trip property: parse -> print -> parse -> print is a fixpoint.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintParsePrintIsFixpoint) {
  auto first = Parser::ParseStatement(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam() << ": "
                          << first.status().ToString();
  std::string printed = ToSql(**first);
  auto second = Parser::ParseStatement(printed);
  ASSERT_TRUE(second.ok()) << printed << ": " << second.status().ToString();
  EXPECT_EQ(printed, ToSql(**second));
  EXPECT_EQ((*first)->type(), (*second)->type());
}

INSTANTIATE_TEST_SUITE_P(
    AllStatementShapes, RoundTripTest,
    ::testing::Values(
        "CREATE TABLE t (a INT PRIMARY KEY, b TEXT DEFAULT 'x')",
        "CREATE TEMPORARY TABLE t (a INT)",
        "CREATE UNIQUE INDEX ix ON t (a, b)",
        "CREATE VIEW v AS SELECT a FROM t WHERE a > 1",
        "CREATE TRIGGER tg BEFORE DELETE ON t FOR EACH ROW NOTIFY ch",
        "CREATE SEQUENCE sq START 5 INCREMENT 2",
        "CREATE RULE r AS ON UPDATE TO t DO INSTEAD DELETE FROM u",
        "CREATE USER bob",
        "DROP TABLE IF EXISTS t",
        "DROP INDEX ix",
        "DROP VIEW v",
        "DROP TRIGGER tg",
        "DROP SEQUENCE sq",
        "DROP RULE r",
        "DROP USER bob",
        "ALTER TABLE t ADD COLUMN c REAL",
        "ALTER TABLE t RENAME TO u",
        "TRUNCATE TABLE t",
        "INSERT INTO t (a) VALUES (1), (NULL)",
        "INSERT IGNORE INTO t VALUES (TRUE)",
        "REPLACE INTO t VALUES (1, 'x')",
        "INSERT INTO t SELECT * FROM u WHERE a < 5",
        "UPDATE t SET a = a + 1 WHERE b LIKE '%x%'",
        "DELETE FROM t WHERE a BETWEEN 1 AND 10",
        "COPY t TO STDOUT",
        "SELECT * FROM t",
        "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1",
        "SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 3 OFFSET 1",
        "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t",
        "SELECT ROW_NUMBER() OVER (ORDER BY a) FROM t",
        "SELECT a FROM t UNION SELECT b FROM u",
        "SELECT t.a FROM t LEFT JOIN u ON t.k = u.k",
        "SELECT a FROM (SELECT a FROM t) AS sub",
        "VALUES (1, 'a'), (2, 'b')",
        "WITH w AS (SELECT 1) SELECT * FROM w",
        "GRANT UPDATE ON t TO u",
        "REVOKE ALL ON t FROM u",
        "BEGIN",
        "COMMIT",
        "ROLLBACK",
        "SAVEPOINT sp",
        "RELEASE SAVEPOINT sp",
        "ROLLBACK TO sp",
        "PRAGMA cache_size = 10",
        "SET @@SESSION.sort_buffer = 2",
        "SHOW TABLES",
        "EXPLAIN ANALYZE SELECT 1",
        "ANALYZE t",
        "VACUUM t",
        "REINDEX ix",
        "CHECKPOINT",
        "NOTIFY ch, 'hello'",
        "LISTEN ch",
        "UNLISTEN ch",
        "COMMENT ON TABLE t IS 'doc'",
        "ALTER SYSTEM SET checkpoint_interval = 8",
        "ALTER SYSTEM FLUSH",
        "DISCARD TEMP"));

}  // namespace
}  // namespace lego::sql
