#include "faults/bug_engine.h"

#include <gtest/gtest.h>

#include <map>

#include "faults/bug_catalog.h"
#include "minidb/database.h"
#include "sql/parser.h"

namespace lego::faults {
namespace {

TEST(BugCatalogTest, HasExactly102BugsWithPaperDistribution) {
  EXPECT_EQ(BugCatalog().size(), 102u);
  EXPECT_EQ(BugsForProfile("pglite").size(), 6u);
  EXPECT_EQ(BugsForProfile("mylite").size(), 21u);
  EXPECT_EQ(BugsForProfile("marialite").size(), 42u);
  EXPECT_EQ(BugsForProfile("comdlite").size(), 33u);
}

TEST(BugCatalogTest, ComponentDistributionMatchesTableOne) {
  std::map<std::string, std::map<std::string, int>> by_component;
  for (const BugDef& bug : BugCatalog()) {
    ++by_component[bug.profile][bug.component];
  }
  EXPECT_EQ(by_component["pglite"]["Optimizer"], 4);
  EXPECT_EQ(by_component["mylite"]["Optimizer"], 12);
  EXPECT_EQ(by_component["marialite"]["Storage"], 13);
  EXPECT_EQ(by_component["marialite"]["Item"], 10);
  EXPECT_EQ(by_component["comdlite"]["Bdb"], 6);
  EXPECT_EQ(by_component["comdlite"]["Sqlite"], 7);
}

TEST(BugCatalogTest, AllIdsUniqueAndSequencesNonEmpty) {
  std::set<std::string> ids;
  std::set<uint64_t> hashes;
  for (const BugDef& bug : BugCatalog()) {
    EXPECT_TRUE(ids.insert(bug.id).second) << "duplicate id " << bug.id;
    hashes.insert(bug.StackHash());
    EXPECT_GE(bug.sequence.size(), 2u) << bug.id;
    EXPECT_LE(bug.sequence.size(), 4u) << bug.id;
  }
  // Stack hashes dedup crashes: they must be collision-free here.
  EXPECT_EQ(hashes.size(), BugCatalog().size());
}

TEST(BugCatalogTest, EverySequenceUsesProfileSupportedTypes) {
  for (const BugDef& bug : BugCatalog()) {
    const auto* profile = minidb::DialectProfile::ByName(bug.profile);
    ASSERT_NE(profile, nullptr) << bug.id;
    for (sql::StatementType t : bug.sequence) {
      EXPECT_TRUE(profile->Supports(t))
          << bug.id << " requires unsupported type "
          << sql::StatementTypeName(t);
    }
  }
}

TEST(BugEngineTest, EveryCatalogBugIsMatchable) {
  // Unit-level reachability: for each of the 102 bugs, a trace equal to its
  // trigger sequence with all features set must fire, and an empty trace
  // must not.
  for (const BugDef& bug : BugCatalog()) {
    std::vector<minidb::FeatureSet> features(bug.sequence.size());
    for (auto& f : features) f.set();
    EXPECT_TRUE(BugEngine::Matches(bug, bug.sequence, features, 0)) << bug.id;
    EXPECT_FALSE(BugEngine::Matches(bug, {}, {}, 0)) << bug.id;
  }
}

TEST(BugEngineTest, MatchesContiguousSubsequenceOnly) {
  BugDef bug;
  bug.sequence = {sql::StatementType::kInsert,
                  sql::StatementType::kCreateTrigger,
                  sql::StatementType::kSelect};
  std::vector<sql::StatementType> trace = {
      sql::StatementType::kCreateTable, sql::StatementType::kInsert,
      sql::StatementType::kCreateTrigger, sql::StatementType::kSelect};
  std::vector<minidb::FeatureSet> features(trace.size());
  EXPECT_TRUE(BugEngine::Matches(bug, trace, features, 0));

  // Gap breaks the match.
  std::vector<sql::StatementType> gapped = {
      sql::StatementType::kInsert, sql::StatementType::kCommit,
      sql::StatementType::kCreateTrigger, sql::StatementType::kSelect};
  std::vector<minidb::FeatureSet> gapped_features(gapped.size());
  EXPECT_FALSE(BugEngine::Matches(bug, gapped, gapped_features, 0));
}

TEST(BugEngineTest, FeatureRequirementGatesTheMatch) {
  BugDef bug;
  bug.sequence = {sql::StatementType::kInsert, sql::StatementType::kSelect};
  bug.feature = minidb::ExecFeature::kGroupBy;
  std::vector<sql::StatementType> trace = {sql::StatementType::kInsert,
                                           sql::StatementType::kSelect};
  std::vector<minidb::FeatureSet> features(2);
  EXPECT_FALSE(BugEngine::Matches(bug, trace, features, 0));
  features[1].set(static_cast<size_t>(minidb::ExecFeature::kGroupBy));
  EXPECT_TRUE(BugEngine::Matches(bug, trace, features, 0));
}

TEST(BugEngineTest, MinEndSkipsAlreadyCheckedMatches) {
  BugDef bug;
  bug.sequence = {sql::StatementType::kInsert, sql::StatementType::kSelect};
  std::vector<sql::StatementType> trace = {sql::StatementType::kInsert,
                                           sql::StatementType::kSelect,
                                           sql::StatementType::kCommit};
  std::vector<minidb::FeatureSet> features(3);
  EXPECT_TRUE(BugEngine::Matches(bug, trace, features, 0));
  // A min_end beyond the only match suppresses it.
  EXPECT_FALSE(BugEngine::Matches(bug, trace, features, 2));
}

class CaseStudyTest : public ::testing::Test {
 protected:
  CaseStudyTest()
      : db_(&minidb::DialectProfile::PgLite()), engine_("pglite") {
    db_.set_fault_hook(&engine_);
  }

  minidb::Database db_;
  BugEngine engine_;
};

TEST_F(CaseStudyTest, PaperFig7TriggersTheNotifyWithSegv) {
  // The paper's §V-B PostgreSQL case study: an INSTEAD rule rewrites the
  // INSERT inside the WITH clause into a NOTIFY; the planner then crashes.
  auto result = db_.ExecuteScript(
      "CREATE TABLE v0 (v4 INT, v3 INT UNIQUE, v2 INT, v1 INT UNIQUE);\n"
      "CREATE OR REPLACE RULE v1 AS ON INSERT TO v0 DO INSTEAD "
      "NOTIFY compression;\n"
      "COPY (SELECT 32 EXCEPT SELECT v3 + 16 FROM v0) TO STDOUT CSV "
      "HEADER;\n"
      "WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 "
      "WHERE v3 = - - - 48;\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->crashed);
  ASSERT_TRUE(db_.last_crash().has_value());
  EXPECT_EQ(db_.last_crash()->bug_id, "PG-OPT-01");
  EXPECT_EQ(db_.last_crash()->kind, "SEGV");
  EXPECT_EQ(db_.last_crash()->component, "Optimizer");
}

TEST_F(CaseStudyTest, SameStatementsWithoutRuleDoNotCrash) {
  // Without the rewrite rule the WITH executes normally: the sequence that
  // the bug keys on (NOTIFY fired by rule, then WITH) never occurs.
  auto result = db_.ExecuteScript(
      "CREATE TABLE v0 (v4 INT, v3 INT UNIQUE, v2 INT, v1 INT UNIQUE);\n"
      "COPY (SELECT 32 EXCEPT SELECT v3 + 16 FROM v0) TO STDOUT CSV "
      "HEADER;\n"
      "WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 "
      "WHERE v3 = - - - 48;\n");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->crashed);
  EXPECT_EQ(result->errors, 0);
}

TEST_F(CaseStudyTest, PaperFig3SequenceCrashesMyLite) {
  // Fig. 3's synthesized seed: CREATE TABLE -> INSERT -> CREATE TRIGGER ->
  // SELECT (the CVE-2021-35643 analog in the mylite profile).
  minidb::Database my(&minidb::DialectProfile::MyLite());
  BugEngine engine("mylite");
  my.set_fault_hook(&engine);
  auto result = my.ExecuteScript(
      "CREATE TABLE v0 (v1 INT, v2 TEXT);\n"
      "INSERT INTO v0 VALUES (1, 'name1');\n"
      "CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW "
      "INSERT INTO v0 VALUES (2, 'x');\n"
      "SELECT * FROM v0;\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->crashed);
  EXPECT_EQ(my.last_crash()->bug_id, "MY-AUTH-02");
}

TEST_F(CaseStudyTest, PermutedSequenceDoesNotCrash) {
  // Same statements, different order: trigger created before the insert.
  minidb::Database my(&minidb::DialectProfile::MyLite());
  BugEngine engine("mylite");
  my.set_fault_hook(&engine);
  auto result = my.ExecuteScript(
      "CREATE TABLE v0 (v1 INT, v2 TEXT);\n"
      "CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW "
      "INSERT INTO v0 VALUES (2, 'x');\n"
      "INSERT INTO v0 VALUES (1, 'name1');\n"
      "SELECT * FROM v0;\n");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->crashed);
}

}  // namespace
}  // namespace lego::faults
