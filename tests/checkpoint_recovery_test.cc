// Self-healing checkpoint recovery: resume must survive torn or
// checksum-failing checkpoint directories (falling back to the newest
// usable one with a warning), a corrupt LATEST pointer, and chaos-injected
// mid-run checkpoint write failures — in every case continuing to the
// bit-identical result an uninterrupted campaign produces.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chaos/failpoint.h"
#include "fuzz/campaign.h"
#include "fuzz/checkpoint.h"
#include "fuzz/harness.h"
#include "lego/lego_fuzzer.h"
#include "minidb/profile.h"

namespace lego::fuzz {
namespace {

namespace fsys = std::filesystem;

std::unique_ptr<core::LegoFuzzer> MakeLego(uint64_t seed) {
  core::LegoOptions options;
  options.rng_seed = seed;
  return std::make_unique<core::LegoFuzzer>(minidb::DialectProfile::PgLite(),
                                            options);
}

/// Fresh scratch directory per test.
std::string StateDir(const std::string& name) {
  auto dir = fsys::temp_directory_path() / ("lego_recovery_" + name);
  fsys::remove_all(dir);
  return dir.string();
}

CampaignResult RunOne(const CampaignOptions& options, uint64_t seed) {
  auto fuzzer = MakeLego(seed);
  ExecutionHarness harness(minidb::DialectProfile::PgLite());
  return RunCampaign(fuzzer.get(), &harness, options);
}

/// The standard parallel fixture: 4 workers checkpointing every 64
/// executions, interrupted at 256 and compared against 512 uninterrupted.
CampaignOptions ParallelBase() {
  CampaignOptions base;
  base.num_workers = 4;
  base.sync_every = 16;
  base.snapshot_every = 128;
  base.checkpoint_every = 64;
  return base;
}

void TruncateFile(const std::string& path, size_t keep) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), keep);
  bytes.resize(keep);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void FlipLastByte(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(bytes.empty());
  bytes.back() = static_cast<char>(bytes.back() ^ 0x5a);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Plants a decoy "newer" checkpoint dir (a copy of ckpt_final), lets the
/// caller damage it, then points LATEST at it — the on-disk shape a crash
/// mid-checkpoint plus a stale pointer would leave.
std::string PlantDecoyCheckpoint(const std::string& state_dir) {
  const fsys::path src = fsys::path(state_dir) / "ckpt_final";
  const fsys::path dst = fsys::path(state_dir) / "ckpt_r9";
  fsys::copy(src, dst, fsys::copy_options::recursive);
  EXPECT_TRUE(WriteLatestPointer(state_dir, "ckpt_r9").ok());
  return dst.string();
}

/// Interrupt at 256, damage the newest checkpoint via `damage`, resume to
/// 512, and require the bit-identical uninterrupted digest plus at least
/// one recorded fallback.
void RunTornCheckpointCase(const std::string& dir_name,
                           const std::function<void(const std::string&)>&
                               damage) {
  const std::string dir = StateDir(dir_name);

  CampaignOptions uninterrupted = ParallelBase();
  uninterrupted.max_executions = 512;
  CampaignResult full = RunOne(uninterrupted, 11);
  ASSERT_TRUE(full.state_status.ok()) << full.state_status.ToString();

  CampaignOptions partial = ParallelBase();
  partial.max_executions = 256;
  partial.state_dir = dir;
  CampaignResult first = RunOne(partial, 11);
  ASSERT_TRUE(first.state_status.ok()) << first.state_status.ToString();

  damage(dir);

  CampaignOptions rest = ParallelBase();
  rest.max_executions = 512;
  rest.state_dir = dir;
  rest.resume = true;
  CampaignResult resumed = RunOne(rest, 11);
  ASSERT_TRUE(resumed.state_status.ok()) << resumed.state_status.ToString();
  EXPECT_GE(resumed.checkpoint_fallbacks, 1);
  EXPECT_EQ(resumed.executions, full.executions);
  EXPECT_EQ(resumed.edges, full.edges);
  EXPECT_EQ(resumed.coverage_curve, full.coverage_curve);
  EXPECT_EQ(ResultDigest(resumed), ResultDigest(full));
  fsys::remove_all(dir);
}

TEST(CheckpointRecoveryTest, TruncatedManifestFallsBackToPreviousCheckpoint) {
  RunTornCheckpointCase("torn_manifest", [](const std::string& dir) {
    const std::string decoy = PlantDecoyCheckpoint(dir);
    TruncateFile(ManifestPath(decoy), 40);  // torn mid-write
  });
}

TEST(CheckpointRecoveryTest, ChecksumFlipFallsBackToPreviousCheckpoint) {
  RunTornCheckpointCase("bad_checksum", [](const std::string& dir) {
    const std::string decoy = PlantDecoyCheckpoint(dir);
    FlipLastByte(ManifestPath(decoy));  // bit rot: checksum mismatch
  });
}

TEST(CheckpointRecoveryTest, MissingWorkerFileFallsBackToPreviousCheckpoint) {
  RunTornCheckpointCase("missing_worker", [](const std::string& dir) {
    const std::string decoy = PlantDecoyCheckpoint(dir);
    fsys::remove(WorkerStatePath(decoy, 2));  // one worker file lost
  });
}

TEST(CheckpointRecoveryTest, CorruptLatestPointerScansForCheckpoints) {
  RunTornCheckpointCase("bad_latest", [](const std::string& dir) {
    std::ofstream f(fsys::path(dir) / "LATEST",
                    std::ios::binary | std::ios::trunc);
    f << "garbage, not an enveloped pointer";
  });
}

TEST(CheckpointRecoveryTest, NothingUsableFailsCleanly) {
  const std::string dir = StateDir("all_torn");
  CampaignOptions partial = ParallelBase();
  partial.max_executions = 256;
  partial.state_dir = dir;
  ASSERT_TRUE(RunOne(partial, 11).state_status.ok());

  // Destroy every candidate: the pointer and the lone checkpoint manifest.
  {
    std::ofstream f(fsys::path(dir) / "LATEST",
                    std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  TruncateFile(ManifestPath((fsys::path(dir) / "ckpt_final").string()), 10);

  CampaignOptions rest = ParallelBase();
  rest.max_executions = 512;
  rest.state_dir = dir;
  rest.resume = true;
  CampaignResult resumed = RunOne(rest, 11);
  EXPECT_FALSE(resumed.state_status.ok());
  EXPECT_EQ(resumed.executions, 0);  // refused, not silently restarted
  fsys::remove_all(dir);
}

TEST(CheckpointRecoveryTest, SerialMidRunCheckpointFailureIsTolerated) {
  chaos::DisarmAll();
  CampaignOptions plain;
  plain.max_executions = 400;
  plain.snapshot_every = 100;
  CampaignResult full = RunOne(plain, 3);

  const std::string dir = StateDir("serial_chaos");
  CampaignOptions governed = plain;
  governed.state_dir = dir;
  governed.checkpoint_every = 100;
  // First atomic-write rename is injected to fail: the first mid-run
  // checkpoint is lost, the campaign must warn-and-continue.
  ASSERT_TRUE(chaos::ArmSpec("persist.rename=nth:1", 5).ok());
  CampaignResult result = RunOne(governed, 3);
  chaos::DisarmAll();

  ASSERT_TRUE(result.state_status.ok()) << result.state_status.ToString();
  EXPECT_EQ(result.checkpoints_failed, 1);
  EXPECT_EQ(ResultDigest(result), ResultDigest(full));

  // The surviving state is resumable: raising the budget continues from
  // the final save exactly as if no checkpoint had ever failed.
  CampaignOptions more = plain;
  more.max_executions = 600;
  more.state_dir = dir;
  more.checkpoint_every = 100;
  more.resume = true;
  CampaignResult resumed = RunOne(more, 3);
  ASSERT_TRUE(resumed.state_status.ok()) << resumed.state_status.ToString();

  CampaignOptions plain_long = plain;
  plain_long.max_executions = 600;
  CampaignResult full_long = RunOne(plain_long, 3);
  EXPECT_EQ(ResultDigest(resumed), ResultDigest(full_long));
  fsys::remove_all(dir);
}

}  // namespace
}  // namespace lego::fuzz
