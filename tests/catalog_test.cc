#include "minidb/catalog.h"

#include <gtest/gtest.h>

namespace lego::minidb {
namespace {

TableInfo MakeTable(const std::string& name) {
  TableInfo t;
  t.name = name;
  t.schema.columns.push_back({.name = "a", .type = ValueType::kInt});
  t.schema.columns.push_back({.name = "b", .type = ValueType::kText});
  return t;
}

TEST(CatalogTest, TableLifecycle) {
  Catalog catalog;
  EXPECT_TRUE(catalog.CreateTable(MakeTable("t")).ok());
  EXPECT_TRUE(catalog.HasTable("t"));
  EXPECT_EQ(catalog.CreateTable(MakeTable("t")).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(catalog.GetTable("t").ok());
  EXPECT_EQ(catalog.GetTable("missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(catalog.DropTable("t").ok());
  EXPECT_EQ(catalog.DropTable("t").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, SchemaFindColumn) {
  TableInfo t = MakeTable("t");
  EXPECT_EQ(t.schema.FindColumn("a"), 0);
  EXPECT_EQ(t.schema.FindColumn("b"), 1);
  EXPECT_EQ(t.schema.FindColumn("c"), -1);
}

TEST(CatalogTest, DropTableCascades) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(MakeTable("t")).ok());
  IndexInfo ix;
  ix.name = "ix";
  ix.table = "t";
  ix.columns = {"a"};
  ASSERT_TRUE(catalog.CreateIndex(std::move(ix)).ok());
  TriggerInfo tg;
  tg.name = "tg";
  tg.table = "t";
  ASSERT_TRUE(catalog.CreateTrigger(std::move(tg)).ok());
  RuleInfo rule;
  rule.name = "r";
  rule.table = "t";
  ASSERT_TRUE(catalog.CreateRule(std::move(rule), false).ok());

  ASSERT_TRUE(catalog.DropTable("t").ok());
  EXPECT_FALSE(catalog.HasIndex("ix"));
  EXPECT_FALSE(catalog.HasTrigger("tg"));
  EXPECT_FALSE(catalog.HasRule("r"));
}

TEST(CatalogTest, RenameTableUpdatesDependents) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(MakeTable("t")).ok());
  IndexInfo ix;
  ix.name = "ix";
  ix.table = "t";
  ix.columns = {"a"};
  ASSERT_TRUE(catalog.CreateIndex(std::move(ix)).ok());
  ASSERT_TRUE(catalog.RenameTable("t", "u").ok());
  EXPECT_FALSE(catalog.HasTable("t"));
  EXPECT_TRUE(catalog.HasTable("u"));
  EXPECT_EQ((*catalog.GetIndex("ix"))->table, "u");
  EXPECT_EQ(catalog.IndexesOf("u").size(), 1u);
  // Rename onto an existing name is rejected.
  ASSERT_TRUE(catalog.CreateTable(MakeTable("v")).ok());
  EXPECT_EQ(catalog.RenameTable("u", "v").code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, ViewNamespaceSharedWithTables) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(MakeTable("t")).ok());
  ViewInfo view;
  view.name = "t";
  EXPECT_EQ(catalog.CreateView(std::move(view), false).code(),
            StatusCode::kAlreadyExists);
  ViewInfo v2;
  v2.name = "v";
  ASSERT_TRUE(catalog.CreateView(std::move(v2), false).ok());
  EXPECT_EQ(catalog.CreateTable(MakeTable("v")).code(),
            StatusCode::kAlreadyExists);
  // OR REPLACE replaces.
  ViewInfo v3;
  v3.name = "v";
  EXPECT_TRUE(catalog.CreateView(std::move(v3), true).ok());
}

TEST(CatalogTest, IndexRequiresTable) {
  Catalog catalog;
  IndexInfo ix;
  ix.name = "ix";
  ix.table = "missing";
  EXPECT_EQ(catalog.CreateIndex(std::move(ix)).code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, TriggersForFiltersByEventAndTiming) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(MakeTable("t")).ok());
  for (int i = 0; i < 4; ++i) {
    TriggerInfo tg;
    tg.name = "tg" + std::to_string(i);
    tg.table = "t";
    tg.event = (i % 2 == 0) ? sql::TriggerEvent::kInsert
                            : sql::TriggerEvent::kDelete;
    tg.timing = (i < 2) ? sql::TriggerTiming::kBefore
                        : sql::TriggerTiming::kAfter;
    ASSERT_TRUE(catalog.CreateTrigger(std::move(tg)).ok());
  }
  EXPECT_EQ(catalog
                .TriggersFor("t", sql::TriggerEvent::kInsert,
                             sql::TriggerTiming::kBefore)
                .size(),
            1u);
  EXPECT_EQ(catalog
                .TriggersFor("t", sql::TriggerEvent::kDelete,
                             sql::TriggerTiming::kAfter)
                .size(),
            1u);
  EXPECT_TRUE(catalog
                  .TriggersFor("t", sql::TriggerEvent::kUpdate,
                               sql::TriggerTiming::kAfter)
                  .empty());
}

TEST(CatalogTest, RuleForFindsInsteadRules) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(MakeTable("t")).ok());
  RuleInfo rule;
  rule.name = "r";
  rule.table = "t";
  rule.event = sql::TriggerEvent::kInsert;
  rule.instead = true;
  ASSERT_TRUE(catalog.CreateRule(std::move(rule), false).ok());
  EXPECT_NE(catalog.RuleFor("t", sql::TriggerEvent::kInsert), nullptr);
  EXPECT_EQ(catalog.RuleFor("t", sql::TriggerEvent::kDelete), nullptr);
  EXPECT_EQ(catalog.RuleFor("u", sql::TriggerEvent::kInsert), nullptr);
}

TEST(CatalogTest, SequencesLifecycle) {
  Catalog catalog;
  SequenceInfo sq;
  sq.name = "s";
  ASSERT_TRUE(catalog.CreateSequence(std::move(sq)).ok());
  EXPECT_TRUE(catalog.HasSequence("s"));
  SequenceInfo dup;
  dup.name = "s";
  EXPECT_EQ(catalog.CreateSequence(std::move(dup)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.DropSequence("s").ok());
  EXPECT_EQ(catalog.DropSequence("s").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, UsersAndPrivileges) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(MakeTable("t")).ok());
  ASSERT_TRUE(catalog.CreateUser("alice", false).ok());
  EXPECT_EQ(catalog.CreateUser("alice", false).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.CreateUser("alice", true).ok());  // IF NOT EXISTS

  EXPECT_FALSE(catalog.HasPrivilege("alice", "t", kPrivSelect));
  catalog.Grant("alice", "t", kPrivSelect | kPrivInsert);
  EXPECT_TRUE(catalog.HasPrivilege("alice", "t", kPrivSelect));
  EXPECT_TRUE(catalog.HasPrivilege("alice", "t", kPrivInsert));
  EXPECT_FALSE(catalog.HasPrivilege("alice", "t", kPrivDelete));
  catalog.Revoke("alice", "t", kPrivInsert);
  EXPECT_FALSE(catalog.HasPrivilege("alice", "t", kPrivInsert));
  EXPECT_TRUE(catalog.HasPrivilege("alice", "t", kPrivSelect));

  // root is implicit superuser.
  EXPECT_TRUE(catalog.HasUser("root"));
  EXPECT_TRUE(catalog.HasPrivilege("root", "t", kPrivAll));

  // Dropping the user clears grants.
  ASSERT_TRUE(catalog.DropUser("alice", false).ok());
  EXPECT_FALSE(catalog.HasPrivilege("alice", "t", kPrivSelect));
  EXPECT_EQ(catalog.DropUser("alice", false).code(), StatusCode::kNotFound);
  EXPECT_TRUE(catalog.DropUser("alice", true).ok());
}

TEST(CatalogTest, MaskOfMapsPrivileges) {
  EXPECT_EQ(MaskOf(sql::Privilege::kSelect), kPrivSelect);
  EXPECT_EQ(MaskOf(sql::Privilege::kAll), kPrivAll);
}

TEST(CatalogTest, CopySnapshotIsIndependent) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(MakeTable("t")).ok());
  (*catalog.GetTable("t"))->heap.Insert({Value::Int(1), Value::Text("x")});

  Catalog snapshot = catalog;  // what BEGIN does
  (*catalog.GetTable("t"))->heap.Insert({Value::Int(2), Value::Text("y")});
  ASSERT_TRUE(catalog.DropTable("t").ok());

  // The snapshot still has the original single-row table.
  ASSERT_TRUE(snapshot.HasTable("t"));
  EXPECT_EQ((*snapshot.GetTable("t"))->heap.LiveRowCount(), 1u);
}

TEST(CatalogTest, DropTemporaryTables) {
  Catalog catalog;
  TableInfo tmp = MakeTable("tmp");
  tmp.temporary = true;
  ASSERT_TRUE(catalog.CreateTable(std::move(tmp)).ok());
  ASSERT_TRUE(catalog.CreateTable(MakeTable("keep")).ok());
  catalog.DropTemporaryTables();
  EXPECT_FALSE(catalog.HasTable("tmp"));
  EXPECT_TRUE(catalog.HasTable("keep"));
}

}  // namespace
}  // namespace lego::minidb
