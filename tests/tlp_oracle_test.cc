// TLP metamorphic oracle: a correct engine never trips it; a deliberately
// planted NOT(NULL) evaluation bug (NULL-predicate rows counted in both the
// NOT-phi and phi-IS-NULL partitions) must trip it; ineligible query shapes
// yield no verdict either way. The oracle is driven through the DbBackend
// seam, the same way the harness and triage replay drive it.

#include <gtest/gtest.h>

#include <string>

#include "fuzz/backend_inproc.h"
#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "minidb/database.h"
#include "minidb/eval.h"
#include "triage/tlp_oracle.h"

namespace lego::triage {
namespace {

/// RAII around the eval plant so a failing assertion can't leak the bug
/// into later tests.
class PlantedNotNullBug {
 public:
  PlantedNotNullBug() { minidb::Evaluator::SetNotNullEvalBugForTesting(true); }
  ~PlantedNotNullBug() {
    minidb::Evaluator::SetNotNullEvalBugForTesting(false);
  }
};

/// Backend over a table whose only mentionable column (b) holds NULLs, so
/// any synthesized phi over it has UNKNOWN rows to mispartition. The fault
/// hook is disarmed: these tests exercise the logic oracle on a crash-free
/// engine, as the pre-seam direct-Database tests did.
class PopulatedBackend : public fuzz::InProcessBackend {
 public:
  PopulatedBackend()
      : fuzz::InProcessBackend(*minidb::DialectProfile::ByName("pglite")) {
    database().set_fault_hook(nullptr);
    auto r = database().ExecuteScript(
        "CREATE TABLE t0 (a INT, b INT);"
        "INSERT INTO t0 VALUES (1, 0);"
        "INSERT INTO t0 VALUES (2, 5);"
        "INSERT INTO t0 VALUES (3, NULL);"
        "INSERT INTO t0 VALUES (4, NULL);"
        "INSERT INTO t0 VALUES (5, -7);");
    EXPECT_TRUE(r.ok());
    if (r.ok()) EXPECT_EQ(r->errors, 0);
  }
};

/// Parses a single statement.
sql::StmtPtr One(const std::string& sql) {
  auto tc = fuzz::TestCase::FromSql(sql);
  EXPECT_TRUE(tc.ok());
  EXPECT_EQ(tc->size(), 1u);
  return std::move((*tc->mutable_statements())[0]);
}

TEST(TlpOracleTest, CorrectEngineIsNeverFlagged) {
  PopulatedBackend backend;
  TlpOracle oracle;
  fuzz::LogicBugInfo info;
  for (const char* q :
       {"SELECT a FROM t0 WHERE b < 2;", "SELECT b FROM t0;",
        "SELECT a, b FROM t0 WHERE b > 0;", "SELECT * FROM t0;"}) {
    sql::StmtPtr stmt = One(q);
    EXPECT_FALSE(oracle.Check(&backend, *stmt, &info)) << q;
  }
}

TEST(TlpOracleTest, PlantedNotNullBugIsCaught) {
  PopulatedBackend backend;
  TlpOracle oracle;
  PlantedNotNullBug plant;
  // phi is synthesized over column b (the only column the query mentions);
  // with the plant, the two NULL-b rows satisfy both NOT phi and
  // phi IS NULL, so the partitions sum to more rows than the original.
  sql::StmtPtr stmt = One("SELECT b FROM t0;");
  fuzz::LogicBugInfo info;
  ASSERT_TRUE(oracle.Check(&backend, *stmt, &info));
  EXPECT_EQ(info.check, "tlp");
  EXPECT_NE(info.query.find("FROM t0"), std::string::npos) << info.query;
  EXPECT_NE(info.fingerprint, 0u);
  EXPECT_NE(info.detail.find("mismatch"), std::string::npos);

  // Deterministic: same query, same verdict and fingerprint.
  fuzz::LogicBugInfo again;
  ASSERT_TRUE(oracle.Check(&backend, *stmt, &again));
  EXPECT_EQ(again.fingerprint, info.fingerprint);
  EXPECT_EQ(again.detail, info.detail);
}

TEST(TlpOracleTest, PlantRevertedMeansClean) {
  PopulatedBackend backend;
  TlpOracle oracle;
  fuzz::LogicBugInfo info;
  { PlantedNotNullBug plant; }  // plant and revert
  sql::StmtPtr stmt = One("SELECT b FROM t0;");
  EXPECT_FALSE(oracle.Check(&backend, *stmt, &info));
}

TEST(TlpOracleTest, IneligibleShapesGetNoVerdict) {
  PopulatedBackend backend;
  TlpOracle oracle;
  PlantedNotNullBug plant;  // even with the plant active
  fuzz::LogicBugInfo info;
  for (const char* q : {
           "SELECT COUNT(b) FROM t0;",          // aggregate
           "SELECT DISTINCT b FROM t0;",        // DISTINCT
           "SELECT b FROM t0 GROUP BY b;",      // GROUP BY
           "SELECT b FROM t0 LIMIT 3;",         // LIMIT
           "SELECT b FROM t0 UNION SELECT a FROM t0;",  // compound
           "SELECT 1;",                         // no FROM
       }) {
    sql::StmtPtr stmt = One(q);
    EXPECT_FALSE(oracle.Check(&backend, *stmt, &info)) << q;
  }
}

TEST(TlpOracleTest, LeavesSessionUsable) {
  // The oracle runs extra SELECTs; the session must stay usable and the
  // table contents untouched.
  PopulatedBackend backend;
  TlpOracle oracle;
  fuzz::LogicBugInfo info;
  sql::StmtPtr stmt = One("SELECT b FROM t0;");
  (void)oracle.Check(&backend, *stmt, &info);
  fuzz::StmtOutcome rows =
      backend.Execute(*One("SELECT a FROM t0;"), /*want_rows=*/true);
  ASSERT_EQ(rows.status, fuzz::StmtOutcome::Status::kOk);
  EXPECT_EQ(rows.rows.size(), 5u);
}

}  // namespace
}  // namespace lego::triage
