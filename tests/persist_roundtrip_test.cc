#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/sqlancer_like.h"
#include "baselines/sqlsmith_like.h"
#include "baselines/squirrel_like.h"
#include "fuzz/checkpoint.h"
#include "fuzz/fuzzer.h"
#include "fuzz/harness.h"
#include "lego/lego_fuzzer.h"
#include "minidb/profile.h"
#include "persist/io.h"

namespace lego::persist {
namespace {

/// A representative enveloped payload to corrupt in various ways.
std::string SampleEnvelope() {
  StateWriter w;
  w.BeginChunk(ChunkTag("SMPL"));
  w.WriteU64(42);
  w.WriteString("hello");
  w.BeginChunk(ChunkTag("NEST"));
  w.WriteI64(-7);
  w.EndChunk();
  w.EndChunk();
  return w.EnvelopedBytes();
}

TEST(PersistEnvelopeTest, ValidEnvelopeOpens) {
  auto r = StateReader::FromEnvelope(SampleEnvelope());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->EnterChunk(ChunkTag("SMPL")).ok());
  EXPECT_EQ(r->ReadU64(), 42u);
  EXPECT_EQ(r->ReadString(), "hello");
}

TEST(PersistEnvelopeTest, RejectsBadMagic) {
  std::string bytes = SampleEnvelope();
  bytes[0] ^= 0x5a;
  EXPECT_FALSE(StateReader::FromEnvelope(bytes).ok());
}

TEST(PersistEnvelopeTest, RejectsWrongVersion) {
  std::string bytes = SampleEnvelope();
  bytes[4] = static_cast<char>(kFormatVersion + 1);  // version field
  auto r = StateReader::FromEnvelope(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST(PersistEnvelopeTest, RejectsTruncation) {
  std::string bytes = SampleEnvelope();
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{3}}) {
    EXPECT_FALSE(StateReader::FromEnvelope(bytes.substr(0, cut)).ok())
        << "truncated to " << cut;
  }
}

TEST(PersistEnvelopeTest, RejectsFlippedPayloadByte) {
  // Every single-byte corruption past the header must fail the checksum.
  const std::string good = SampleEnvelope();
  for (size_t i = 16; i < good.size(); ++i) {
    std::string bytes = good;
    bytes[i] ^= 0x01;
    EXPECT_FALSE(StateReader::FromEnvelope(bytes).ok()) << "byte " << i;
  }
}

TEST(PersistEnvelopeTest, MissingFileIsCleanStatus) {
  auto r = StateReader::FromFile("/nonexistent/lego-state-file");
  EXPECT_FALSE(r.ok());
}

TEST(PersistEnvelopeTest, UnreadChunkRemainderIsSkippedOnExit) {
  // A newer writer appends trailing fields; an older reader must be able
  // to ExitChunk past them and keep reading its own data correctly.
  StateWriter w;
  w.BeginChunk(ChunkTag("NEWC"));
  w.WriteU64(1);
  w.WriteString("future field");
  w.WriteDouble(3.25);
  w.EndChunk();
  w.BeginChunk(ChunkTag("OLDC"));
  w.WriteU64(2);
  w.EndChunk();

  StateReader r = StateReader::FromPayload(w.buffer());
  ASSERT_TRUE(r.EnterChunk(ChunkTag("NEWC")).ok());
  EXPECT_EQ(r.ReadU64(), 1u);  // leaves the string + double unread
  ASSERT_TRUE(r.ExitChunk().ok());
  ASSERT_TRUE(r.EnterChunk(ChunkTag("OLDC")).ok());
  EXPECT_EQ(r.ReadU64(), 2u);
  ASSERT_TRUE(r.ExitChunk().ok());
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace lego::persist

namespace lego::fuzz {
namespace {

std::unique_ptr<Fuzzer> MakeFuzzer(const std::string& name, uint64_t seed) {
  const minidb::DialectProfile& profile = minidb::DialectProfile::PgLite();
  if (name == "lego" || name == "lego-") {
    core::LegoOptions options;
    options.sequence_algorithms_enabled = (name == "lego");
    options.rng_seed = seed;
    return std::make_unique<core::LegoFuzzer>(profile, options);
  }
  if (name == "squirrel") {
    return std::make_unique<baselines::SquirrelLikeFuzzer>(profile, seed);
  }
  if (name == "sqlancer") {
    return std::make_unique<baselines::SqlancerLikeFuzzer>(profile, seed);
  }
  return std::make_unique<baselines::SqlsmithLikeFuzzer>(profile, seed);
}

/// Reaches a "random" mid-campaign state: whatever corpus, library, and
/// scheduling bookkeeping `executions` runs produce from this seed.
void FuzzFor(Fuzzer* fuzzer, ExecutionHarness* harness, int executions) {
  fuzzer->Prepare(harness);
  for (int i = 0; i < executions; ++i) {
    TestCase tc = fuzzer->Next();
    ExecResult exec = harness->Run(tc);
    fuzzer->OnResult(tc, exec);
  }
}

std::string SaveBytes(const Fuzzer& fuzzer, const ExecutionHarness& harness) {
  persist::StateWriter w;
  EXPECT_TRUE(fuzzer.SaveState(&w).ok());
  EXPECT_TRUE(harness.SaveState(&w).ok());
  return w.buffer();
}

class FuzzerStateRoundtripTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(FuzzerStateRoundtripTest, SecondSnapshotIsByteIdentical) {
  const std::string name = GetParam();
  const minidb::DialectProfile& profile = minidb::DialectProfile::PgLite();
  for (uint64_t seed : {1u, 23u, 1789u}) {
    auto original = MakeFuzzer(name, seed);
    ExecutionHarness harness(profile);
    FuzzFor(original.get(), &harness, 200);
    const std::string first = SaveBytes(*original, harness);

    auto restored = MakeFuzzer(name, seed);
    ExecutionHarness harness2(profile);
    restored->Prepare(&harness2);
    persist::StateReader r = persist::StateReader::FromPayload(first);
    ASSERT_TRUE(restored->LoadState(&r).ok()) << name << " seed " << seed;
    ASSERT_TRUE(harness2.LoadState(&r).ok());
    EXPECT_EQ(first, SaveBytes(*restored, harness2))
        << name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFuzzers, FuzzerStateRoundtripTest,
                         ::testing::Values("lego", "lego-", "squirrel",
                                           "sqlancer", "sqlsmith"));

TEST(FuzzerStateRoundtripTest, RestoredFuzzerContinuesIdentically) {
  // Beyond byte-identity of the snapshot: the restored fuzzer must produce
  // the same future as the original.
  const minidb::DialectProfile& profile = minidb::DialectProfile::PgLite();
  auto a = MakeFuzzer("lego", 5);
  ExecutionHarness ha(profile);
  FuzzFor(a.get(), &ha, 300);
  persist::StateWriter w;
  ASSERT_TRUE(a->SaveState(&w).ok());
  ASSERT_TRUE(ha.SaveState(&w).ok());

  auto b = MakeFuzzer("lego", 5);
  ExecutionHarness hb(profile);
  b->Prepare(&hb);
  persist::StateReader r = persist::StateReader::FromPayload(w.buffer());
  ASSERT_TRUE(b->LoadState(&r).ok());
  ASSERT_TRUE(hb.LoadState(&r).ok());

  for (int i = 0; i < 100; ++i) {
    TestCase ta = a->Next();
    TestCase tb = b->Next();
    ASSERT_EQ(ta.ToSql(), tb.ToSql()) << "diverged at continuation " << i;
    ExecResult ra = ha.Run(ta);
    ExecResult rb = hb.Run(tb);
    ASSERT_EQ(ra.new_coverage, rb.new_coverage);
    ASSERT_EQ(ra.total_edges, rb.total_edges);
    a->OnResult(ta, ra);
    b->OnResult(tb, rb);
  }
}

TEST(CampaignResultRoundtripTest, SecondSnapshotIsByteIdentical) {
  auto fuzzer = MakeFuzzer("lego", 11);
  ExecutionHarness harness(minidb::DialectProfile::PgLite());
  CampaignOptions options;
  options.max_executions = 800;
  options.snapshot_every = 100;
  CampaignResult result = RunCampaign(fuzzer.get(), &harness, options);
  ASSERT_TRUE(result.state_status.ok());

  persist::StateWriter w1;
  ASSERT_TRUE(SaveCampaignResult(result, &w1).ok());
  persist::StateReader r = persist::StateReader::FromPayload(w1.buffer());
  CampaignResult loaded;
  ASSERT_TRUE(LoadCampaignResult(&r, &loaded).ok());
  persist::StateWriter w2;
  ASSERT_TRUE(SaveCampaignResult(loaded, &w2).ok());
  EXPECT_EQ(w1.buffer(), w2.buffer());
  EXPECT_EQ(ResultDigest(result), ResultDigest(loaded));
}

}  // namespace
}  // namespace lego::fuzz
