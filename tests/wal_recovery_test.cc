// WAL append/replay contract tests: roundtrip of every record kind, the
// steal rule (complete records past the last kCommit are *kept* as undo
// candidates and counted as losers), torn-tail truncation counted but not
// fatal, corrupt-frame detection, and idempotent double recovery — all
// against the in-memory Env whose SimulateCrash/TruncateFileTail make torn
// states constructible.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "minidb/env.h"
#include "minidb/wal.h"

namespace lego::minidb {
namespace {

WalRecord Logical(uint64_t lsn, const std::string& text) {
  WalRecord rec;
  rec.type = WalRecordType::kLogical;
  rec.lsn = lsn;
  rec.text = text;
  rec.user = "admin";
  return rec;
}

WalRecord Put(uint64_t lsn, const std::string& table, uint64_t page,
              uint32_t slot) {
  WalRecord rec;
  rec.type = WalRecordType::kPut;
  rec.lsn = lsn;
  rec.table = table;
  rec.rid.page = page;
  rec.rid.slot = slot;
  return rec;
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(env_.CreateDir("db").ok()); }

  static constexpr const char* kPath = "db/wal.0";
  MemEnv env_;
};

TEST_F(WalRecoveryTest, AppendCommitLoadRoundtrip) {
  WalManager wal(&env_);
  ASSERT_TRUE(wal.Open(kPath, /*truncate=*/true).ok());
  ASSERT_TRUE(wal.Append(Logical(1, "CREATE TABLE t (a INT)")).ok());
  ASSERT_TRUE(wal.Append(Put(2, "t", 0, 0)).ok());
  WalRecord seq;
  seq.type = WalRecordType::kSeqSet;
  seq.lsn = 3;
  seq.text = "s";
  seq.seq_current = 41;
  seq.seq_started = true;
  ASSERT_TRUE(wal.Append(seq).ok());
  WalRecord erase;
  erase.type = WalRecordType::kErase;
  erase.lsn = 4;
  erase.table = "t";
  erase.rid.page = 0;
  erase.rid.slot = 0;
  ASSERT_TRUE(wal.Append(erase).ok());
  ASSERT_TRUE(wal.Commit(5, /*txn_id=*/0, false).ok());

  WalLoadStats stats;
  auto loaded = WalManager::Load(&env_, kPath, &stats);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 5u);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.loser_records, 0u);
  EXPECT_EQ(stats.torn_tail_bytes, 0u);
  const std::vector<WalRecord>& recs = loaded.value();
  EXPECT_EQ(recs[0].type, WalRecordType::kLogical);
  EXPECT_EQ(recs[0].text, "CREATE TABLE t (a INT)");
  EXPECT_EQ(recs[0].user, "admin");
  EXPECT_EQ(recs[1].type, WalRecordType::kPut);
  EXPECT_EQ(recs[1].table, "t");
  EXPECT_EQ(recs[2].type, WalRecordType::kSeqSet);
  EXPECT_EQ(recs[2].seq_current, 41);
  EXPECT_TRUE(recs[2].seq_started);
  EXPECT_EQ(recs[3].type, WalRecordType::kErase);
  EXPECT_EQ(recs[4].type, WalRecordType::kCommit);
}

TEST_F(WalRecoveryTest, MissingFileIsEmptyLog) {
  WalLoadStats stats;
  auto loaded = WalManager::Load(&env_, "db/nope", &stats);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST_F(WalRecoveryTest, RecordsAfterLastCommitAreKeptAsLosers) {
  WalManager wal(&env_);
  ASSERT_TRUE(wal.Open(kPath, true).ok());
  ASSERT_TRUE(wal.Append(Logical(1, "CREATE TABLE t (a INT)")).ok());
  ASSERT_TRUE(wal.Commit(2, /*txn_id=*/0, false).ok());
  // A fully-written but uncommitted batch: under the steal policy Load
  // returns it (the caller's redo/undo passes decide what applies) and
  // counts it as a loser candidate.
  ASSERT_TRUE(wal.Append(Logical(3, "DROP TABLE t")).ok());
  ASSERT_TRUE(wal.Flush().ok());

  WalLoadStats stats;
  auto loaded = WalManager::Load(&env_, kPath, &stats);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value()[1].type, WalRecordType::kCommit);
  EXPECT_EQ(loaded.value().back().type, WalRecordType::kLogical);
  EXPECT_EQ(stats.loser_records, 1u);
}

TEST_F(WalRecoveryTest, UnsyncedBatchDiesWithTheProcess) {
  WalManager wal(&env_);
  ASSERT_TRUE(wal.Open(kPath, true).ok());
  ASSERT_TRUE(wal.Append(Logical(1, "CREATE TABLE t (a INT)")).ok());
  ASSERT_TRUE(wal.Commit(2, /*txn_id=*/0, false).ok());
  ASSERT_TRUE(wal.Append(Logical(3, "CREATE TABLE u (b INT)")).ok());
  ASSERT_TRUE(wal.Commit(4, /*txn_id=*/0, true).ok());  // the planted defect
  env_.SimulateCrash();

  WalLoadStats stats;
  auto loaded = WalManager::Load(&env_, kPath, &stats);
  ASSERT_TRUE(loaded.ok());
  // Only the synced batch survived — exactly the lost-commit signal the
  // durability oracle exists to catch.
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].text, "CREATE TABLE t (a INT)");
}

TEST_F(WalRecoveryTest, TornTailIsCountedNotFatal) {
  WalManager wal(&env_);
  ASSERT_TRUE(wal.Open(kPath, true).ok());
  ASSERT_TRUE(wal.Append(Logical(1, "CREATE TABLE t (a INT)")).ok());
  ASSERT_TRUE(wal.Commit(2, /*txn_id=*/0, false).ok());
  ASSERT_TRUE(wal.Append(Logical(3, "CREATE TABLE u (b INT)")).ok());
  ASSERT_TRUE(wal.Commit(4, /*txn_id=*/0, false).ok());
  // Rip bytes off the end mid-frame: a crash landing inside a chunked
  // write leaves exactly this shape.
  env_.TruncateFileTail(kPath, 7);

  WalLoadStats stats;
  auto loaded = WalManager::Load(&env_, kPath, &stats);
  ASSERT_TRUE(loaded.ok());
  // The torn frame was the second kCommit, so its batch's record survives
  // as a loser candidate.
  EXPECT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(stats.loser_records, 1u);
  EXPECT_GT(stats.torn_tail_bytes, 0u);
}

TEST_F(WalRecoveryTest, CorruptPayloadStopsAtLastGoodCommit) {
  WalManager wal(&env_);
  ASSERT_TRUE(wal.Open(kPath, true).ok());
  ASSERT_TRUE(wal.Append(Logical(1, "CREATE TABLE t (a INT)")).ok());
  ASSERT_TRUE(wal.Commit(2, /*txn_id=*/0, false).ok());
  ASSERT_TRUE(wal.Append(Logical(3, "CREATE TABLE u (b INT)")).ok());
  ASSERT_TRUE(wal.Commit(4, /*txn_id=*/0, false).ok());
  // Flip one payload byte in the final frame (the second kCommit): the
  // frame hash must reject it, so recovery keeps everything before it —
  // including that batch's record, now a loser candidate.
  auto content = env_.ReadFile(kPath);
  ASSERT_TRUE(content.ok());
  std::string bytes = content.value();
  bytes[bytes.size() - 3] ^= 0x40;
  ASSERT_TRUE(env_.WriteFileAtomic(kPath, bytes).ok());

  WalLoadStats stats;
  auto loaded = WalManager::Load(&env_, kPath, &stats);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(stats.loser_records, 1u);
  EXPECT_GT(stats.torn_tail_bytes, 0u);
}

TEST_F(WalRecoveryTest, DoubleRecoveryIsIdempotent) {
  WalManager wal(&env_);
  ASSERT_TRUE(wal.Open(kPath, true).ok());
  ASSERT_TRUE(wal.Append(Logical(1, "CREATE TABLE t (a INT)")).ok());
  ASSERT_TRUE(wal.Append(Put(2, "t", 0, 0)).ok());
  ASSERT_TRUE(wal.Commit(3, /*txn_id=*/0, false).ok());
  ASSERT_TRUE(wal.Append(Logical(4, "INSERT INTO t VALUES (1)")).ok());
  env_.SimulateCrash();

  WalLoadStats first_stats;
  auto first = WalManager::Load(&env_, kPath, &first_stats);
  ASSERT_TRUE(first.ok());
  WalLoadStats second_stats;
  auto second = WalManager::Load(&env_, kPath, &second_stats);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first.value().size(), second.value().size());
  for (size_t i = 0; i < first.value().size(); ++i) {
    EXPECT_EQ(first.value()[i].type, second.value()[i].type);
    EXPECT_EQ(first.value()[i].lsn, second.value()[i].lsn);
    EXPECT_EQ(first.value()[i].text, second.value()[i].text);
  }
  EXPECT_EQ(first_stats.records, second_stats.records);
  EXPECT_EQ(first_stats.torn_tail_bytes, second_stats.torn_tail_bytes);
}

TEST_F(WalRecoveryTest, SyncedBytesTracksDurablePrefix) {
  WalManager wal(&env_);
  ASSERT_TRUE(wal.Open(kPath, true).ok());
  ASSERT_TRUE(wal.Append(Logical(1, "CREATE TABLE t (a INT)")).ok());
  EXPECT_EQ(wal.synced_bytes(), 0u);
  ASSERT_TRUE(wal.Commit(2, /*txn_id=*/0, false).ok());
  EXPECT_GT(wal.synced_bytes(), 0u);
  EXPECT_EQ(wal.appended_records(), 2u);
}

}  // namespace
}  // namespace lego::minidb
