// Buffer-pool contract tests: pin/unpin nesting, clock eviction with a
// dataset larger than the frame budget, dirty write-back ordering, and the
// all-pinned failure mode — all over the in-memory Env so write-back
// behavior is observable without touching the real filesystem.

#include <cstring>
#include <string>

#include "gtest/gtest.h"
#include "minidb/buffer_pool.h"
#include "minidb/env.h"

namespace lego::minidb {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.CreateDir("db").ok());
    auto file = env_.OpenPagedFile("db/pages", /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    file_ = std::move(file).ValueOrDie();
  }

  // Pins the page, stamps a recognizable byte pattern, unpins dirty.
  void WriteStamp(BufferPool* pool, uint64_t page_id, char stamp) {
    auto frame = pool->Pin(page_id);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    std::memset(frame.value(), stamp, kPageSize);
    pool->Unpin(page_id, /*dirty=*/true);
  }

  char ReadStamp(BufferPool* pool, uint64_t page_id) {
    auto frame = pool->Pin(page_id);
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    if (!frame.ok()) return '\0';
    char got = frame.value()[0];
    pool->Unpin(page_id, /*dirty=*/false);
    return got;
  }

  MemEnv env_;
  std::unique_ptr<PagedFile> file_;
};

TEST_F(BufferPoolTest, PinLoadsAndCachesPage) {
  BufferPool pool(file_.get(), 4);
  WriteStamp(&pool, 0, 'a');
  EXPECT_EQ(ReadStamp(&pool, 0), 'a');
  // Second access of a resident page is a hit, not a reload.
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST_F(BufferPoolTest, PinsNest) {
  BufferPool pool(file_.get(), 2);
  auto a = pool.Pin(7);
  ASSERT_TRUE(a.ok());
  auto b = pool.Pin(7);
  ASSERT_TRUE(b.ok());
  // Nested pin returns the same frame memory.
  EXPECT_EQ(a.value(), b.value());
  pool.Unpin(7, false);
  // Still pinned once: the frame must survive pressure from other pages.
  ASSERT_TRUE(pool.Pin(1).ok());
  pool.Unpin(1, false);
  pool.Unpin(7, false);
}

TEST_F(BufferPoolTest, EvictionCyclesDatasetLargerThanPool) {
  constexpr size_t kFrames = 4;
  constexpr uint64_t kPages = 16;
  BufferPool pool(file_.get(), kFrames);
  for (uint64_t p = 0; p < kPages; ++p) {
    WriteStamp(&pool, p, static_cast<char>('A' + p));
  }
  EXPECT_GE(pool.stats().evictions, kPages - kFrames);
  // Every page must read back its own stamp even though only 4 fit at once
  // — evicted dirty pages were written back, then reloaded correctly.
  for (uint64_t p = 0; p < kPages; ++p) {
    EXPECT_EQ(ReadStamp(&pool, p), static_cast<char>('A' + p)) << "page " << p;
  }
  EXPECT_GE(pool.stats().writebacks, kPages - kFrames);
}

TEST_F(BufferPoolTest, DirtyPageReachesFileOnlyAtEvictionOrFlush) {
  BufferPool pool(file_.get(), 2);
  WriteStamp(&pool, 0, 'x');
  // No-force: the file has not seen the page yet.
  char buf[kPageSize];
  ASSERT_TRUE(file_->ReadPage(0, buf).ok());
  EXPECT_EQ(buf[0], '\0');
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(file_->ReadPage(0, buf).ok());
  EXPECT_EQ(buf[0], 'x');
}

TEST_F(BufferPoolTest, FlushAllClearsDirtyOnce) {
  BufferPool pool(file_.get(), 2);
  WriteStamp(&pool, 3, 'q');
  ASSERT_TRUE(pool.FlushAll().ok());
  const uint64_t after_first = pool.stats().writebacks;
  // Clean frames are not rewritten by a second flush.
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.stats().writebacks, after_first);
}

TEST_F(BufferPoolTest, AllFramesPinnedFailsInternal) {
  BufferPool pool(file_.get(), 2);
  ASSERT_TRUE(pool.Pin(0).ok());
  ASSERT_TRUE(pool.Pin(1).ok());
  auto third = pool.Pin(2);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kInternal);
  pool.Unpin(0, false);
  // With one frame free the pin succeeds again.
  EXPECT_TRUE(pool.Pin(2).ok());
  pool.Unpin(2, false);
  pool.Unpin(1, false);
}

TEST_F(BufferPoolTest, WriteBackFailureSurfacesOnFlush) {
  BufferPool pool(file_.get(), 2);
  WriteStamp(&pool, 0, 'z');
  env_.FailNextWrites(1);
  Status flushed = pool.FlushAll();
  EXPECT_FALSE(flushed.ok());
  // The fault is one-shot: a retry succeeds and the page lands.
  ASSERT_TRUE(pool.FlushAll().ok());
  char buf[kPageSize];
  ASSERT_TRUE(file_->ReadPage(0, buf).ok());
  EXPECT_EQ(buf[0], 'z');
}

}  // namespace
}  // namespace lego::minidb
