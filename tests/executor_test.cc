#include "minidb/executor.h"

#include <gtest/gtest.h>

#include "minidb/database.h"
#include "sql/parser.h"

namespace lego::minidb {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ResultSet Exec(const std::string& sql_text) {
    auto stmt = sql::Parser::ParseStatement(sql_text);
    EXPECT_TRUE(stmt.ok()) << sql_text << ": " << stmt.status().ToString();
    auto result = db_.Execute(**stmt);
    EXPECT_TRUE(result.ok()) << sql_text << ": "
                             << result.status().ToString();
    return result.ok() ? std::move(*result) : ResultSet{};
  }

  Status ExecErr(const std::string& sql_text) {
    auto stmt = sql::Parser::ParseStatement(sql_text);
    EXPECT_TRUE(stmt.ok()) << sql_text << ": " << stmt.status().ToString();
    auto result = db_.Execute(**stmt);
    EXPECT_FALSE(result.ok()) << sql_text << " unexpectedly succeeded";
    return result.ok() ? Status::OK() : result.status();
  }

  Database db_;
};

TEST_F(ExecutorTest, CreateInsertSelect) {
  Exec("CREATE TABLE t1 (v1 INT, v2 INT)");
  Exec("INSERT INTO t1 VALUES (1, 1)");
  Exec("INSERT INTO t1 VALUES (2, 1)");
  ResultSet rs = Exec("SELECT * FROM t1 ORDER BY v1");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 1);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 2);
  EXPECT_EQ(rs.column_names, (std::vector<std::string>{"v1", "v2"}));
}

TEST_F(ExecutorTest, PaperFig2OrderSensitivity) {
  // Q1: select after insert -> sorted data; Q2 shape: select before insert
  // -> empty result. Same statements, different type sequence.
  Exec("CREATE TABLE q (a INT, b TEXT)");
  ResultSet empty = Exec("SELECT * FROM q ORDER BY a DESC");
  EXPECT_TRUE(empty.rows.empty());
  Exec("INSERT INTO q VALUES (1, 'name1')");
  Exec("INSERT INTO q VALUES (3, 'name1')");
  ResultSet sorted = Exec("SELECT * FROM q ORDER BY a DESC");
  ASSERT_EQ(sorted.rows.size(), 2u);
  EXPECT_EQ(sorted.rows[0][0].AsInt(), 3);
}

TEST_F(ExecutorTest, WhereFiltersWithThreeValuedLogic) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (1), (NULL), (3)");
  // NULL comparison is unknown, so the NULL row is filtered out.
  EXPECT_EQ(Exec("SELECT a FROM t WHERE a > 0").rows.size(), 2u);
  EXPECT_EQ(Exec("SELECT a FROM t WHERE a IS NULL").rows.size(), 1u);
  EXPECT_EQ(Exec("SELECT a FROM t WHERE NOT (a > 0)").rows.size(), 0u);
}

TEST_F(ExecutorTest, Expressions) {
  Exec("CREATE TABLE t (a INT, s TEXT)");
  Exec("INSERT INTO t VALUES (7, 'Hello')");
  ResultSet rs = Exec(
      "SELECT a + 1, a * 2, a / 2, a % 3, -a, ABS(-5), LENGTH(s), "
      "UPPER(s), LOWER(s), SUBSTR(s, 2, 3), s || '!', "
      "CASE WHEN a > 5 THEN 'big' ELSE 'small' END, "
      "COALESCE(NULL, 9), CAST(a AS TEXT), TYPEOF(s) FROM t");
  ASSERT_EQ(rs.rows.size(), 1u);
  const Row& r = rs.rows[0];
  EXPECT_EQ(r[0].AsInt(), 8);
  EXPECT_EQ(r[1].AsInt(), 14);
  EXPECT_EQ(r[2].AsInt(), 3);
  EXPECT_EQ(r[3].AsInt(), 1);
  EXPECT_EQ(r[4].AsInt(), -7);
  EXPECT_EQ(r[5].AsInt(), 5);
  EXPECT_EQ(r[6].AsInt(), 5);
  EXPECT_EQ(r[7].text_value(), "HELLO");
  EXPECT_EQ(r[8].text_value(), "hello");
  EXPECT_EQ(r[9].text_value(), "ell");
  EXPECT_EQ(r[10].text_value(), "Hello!");
  EXPECT_EQ(r[11].text_value(), "big");
  EXPECT_EQ(r[12].AsInt(), 9);
  EXPECT_EQ(r[13].text_value(), "7");
  EXPECT_EQ(r[14].text_value(), "TEXT");
}

TEST_F(ExecutorTest, DivisionByZeroIsExecutionError) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (1)");
  EXPECT_EQ(ExecErr("SELECT a / 0 FROM t").code(),
            StatusCode::kExecutionError);
  EXPECT_EQ(ExecErr("SELECT a % 0 FROM t").code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorTest, GroupByHavingAggregates) {
  Exec("CREATE TABLE g (k INT, v INT)");
  Exec("INSERT INTO g VALUES (1, 10), (1, 20), (2, 5), (2, NULL)");
  ResultSet rs = Exec(
      "SELECT k, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) "
      "FROM g GROUP BY k ORDER BY k");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 2);  // COUNT(*)
  EXPECT_EQ(rs.rows[0][3].AsInt(), 30); // SUM
  EXPECT_EQ(rs.rows[1][2].AsInt(), 1);  // COUNT(v) skips NULL
  EXPECT_EQ(rs.rows[1][3].AsInt(), 5);

  ResultSet having = Exec(
      "SELECT k FROM g GROUP BY k HAVING SUM(v) > 10");
  ASSERT_EQ(having.rows.size(), 1u);
  EXPECT_EQ(having.rows[0][0].AsInt(), 1);
}

TEST_F(ExecutorTest, AggregateWithoutGroupByOverEmptyTable) {
  Exec("CREATE TABLE e (x INT)");
  ResultSet rs = Exec("SELECT COUNT(*), SUM(x) FROM e");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(ExecutorTest, DistinctAndSetOperations) {
  Exec("CREATE TABLE s (x INT)");
  Exec("INSERT INTO s VALUES (1), (1), (2), (3)");
  EXPECT_EQ(Exec("SELECT DISTINCT x FROM s").rows.size(), 3u);
  EXPECT_EQ(Exec("SELECT x FROM s UNION SELECT x FROM s").rows.size(), 3u);
  EXPECT_EQ(Exec("SELECT x FROM s UNION ALL SELECT x FROM s").rows.size(),
            8u);
  EXPECT_EQ(
      Exec("SELECT x FROM s EXCEPT SELECT x FROM s WHERE x = 1").rows.size(),
      2u);
  EXPECT_EQ(
      Exec("SELECT x FROM s INTERSECT SELECT x FROM s WHERE x > 1")
          .rows.size(),
      2u);
}

TEST_F(ExecutorTest, JoinsInnerLeftCross) {
  Exec("CREATE TABLE a (k INT, v INT)");
  Exec("CREATE TABLE b (k INT, w INT)");
  Exec("INSERT INTO a VALUES (1, 10), (2, 20)");
  Exec("INSERT INTO b VALUES (1, 100)");
  EXPECT_EQ(Exec("SELECT * FROM a JOIN b ON a.k = b.k").rows.size(), 1u);
  ResultSet left = Exec("SELECT * FROM a LEFT JOIN b ON a.k = b.k "
                        "ORDER BY a.k");
  ASSERT_EQ(left.rows.size(), 2u);
  EXPECT_TRUE(left.rows[1][3].is_null());  // unmatched right side padded
  EXPECT_EQ(Exec("SELECT * FROM a CROSS JOIN b").rows.size(), 2u);
  EXPECT_EQ(Exec("SELECT * FROM a, b").rows.size(), 2u);
}

TEST_F(ExecutorTest, HashJoinKicksInForLargeInputs) {
  Exec("CREATE TABLE big1 (k INT)");
  Exec("CREATE TABLE big2 (k INT)");
  for (int i = 0; i < 10; ++i) {
    Exec("INSERT INTO big1 VALUES (" + std::to_string(i) + ")");
    Exec("INSERT INTO big2 VALUES (" + std::to_string(i) + ")");
  }
  ResultSet rs = Exec("SELECT * FROM big1 JOIN big2 ON big1.k = big2.k");
  EXPECT_EQ(rs.rows.size(), 10u);
  // The hash-join feature must have been recorded on the last statement.
  EXPECT_TRUE(db_.session().feature_trace.back().test(
      static_cast<size_t>(ExecFeature::kHashJoinUsed)));
}

TEST_F(ExecutorTest, IndexScansServeEqualityAndRange) {
  Exec("CREATE TABLE ix (a INT, b INT)");
  Exec("CREATE INDEX ixa ON ix (a)");
  for (int i = 0; i < 20; ++i) {
    Exec("INSERT INTO ix VALUES (" + std::to_string(i) + ", 0)");
  }
  ResultSet eq = Exec("SELECT a FROM ix WHERE a = 7");
  ASSERT_EQ(eq.rows.size(), 1u);
  EXPECT_EQ(eq.rows[0][0].AsInt(), 7);
  EXPECT_TRUE(db_.session().feature_trace.back().test(
      static_cast<size_t>(ExecFeature::kIndexScanUsed)));
  EXPECT_EQ(Exec("SELECT a FROM ix WHERE a >= 15").rows.size(), 5u);
}

TEST_F(ExecutorTest, SubqueriesScalarInExists) {
  Exec("CREATE TABLE o (x INT)");
  Exec("CREATE TABLE i (y INT)");
  Exec("INSERT INTO o VALUES (1), (2), (3)");
  Exec("INSERT INTO i VALUES (2)");
  EXPECT_EQ(Exec("SELECT x FROM o WHERE x IN (SELECT y FROM i)").rows.size(),
            1u);
  EXPECT_EQ(
      Exec("SELECT x FROM o WHERE EXISTS (SELECT 1 FROM i)").rows.size(),
      3u);
  ResultSet scalar = Exec("SELECT (SELECT MAX(y) FROM i) FROM o WHERE x = 1");
  EXPECT_EQ(scalar.rows[0][0].AsInt(), 2);
  // Correlated subquery.
  EXPECT_EQ(
      Exec("SELECT x FROM o WHERE EXISTS (SELECT 1 FROM i WHERE y = x)")
          .rows.size(),
      1u);
}

TEST_F(ExecutorTest, WindowFunctions) {
  Exec("CREATE TABLE w (g INT, v INT)");
  Exec("INSERT INTO w VALUES (1, 30), (1, 10), (2, 20)");
  ResultSet rs = Exec(
      "SELECT v, ROW_NUMBER() OVER (PARTITION BY g ORDER BY v) FROM w "
      "ORDER BY v");
  ASSERT_EQ(rs.rows.size(), 3u);
  // v=10 is first in its partition, v=20 first in its own, v=30 second.
  EXPECT_EQ(rs.rows[0][1].AsInt(), 1);
  EXPECT_EQ(rs.rows[1][1].AsInt(), 1);
  EXPECT_EQ(rs.rows[2][1].AsInt(), 2);

  ResultSet lead = Exec(
      "SELECT v, LEAD(v) OVER (ORDER BY v) FROM w ORDER BY v");
  EXPECT_EQ(lead.rows[0][1].AsInt(), 20);
  EXPECT_TRUE(lead.rows[2][1].is_null());
}

TEST_F(ExecutorTest, UpdateDeleteWithConstraints) {
  Exec("CREATE TABLE c (k INT PRIMARY KEY, v INT NOT NULL)");
  Exec("INSERT INTO c VALUES (1, 10), (2, 20)");
  EXPECT_EQ(ExecErr("INSERT INTO c VALUES (1, 30)").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(ExecErr("INSERT INTO c VALUES (3, NULL)").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(ExecErr("UPDATE c SET k = 2 WHERE k = 1").code(),
            StatusCode::kConstraintViolation);
  Exec("UPDATE c SET v = 11 WHERE k = 1");
  EXPECT_EQ(Exec("SELECT v FROM c WHERE k = 1").rows[0][0].AsInt(), 11);
  ResultSet del = Exec("DELETE FROM c WHERE k = 2");
  EXPECT_EQ(del.affected_rows, 1);
  EXPECT_EQ(Exec("SELECT * FROM c").rows.size(), 1u);
}

TEST_F(ExecutorTest, InsertIgnoreAndReplace) {
  Exec("CREATE TABLE r (k INT PRIMARY KEY, v TEXT)");
  Exec("INSERT INTO r VALUES (1, 'a')");
  ResultSet ignored = Exec("INSERT IGNORE INTO r VALUES (1, 'b'), (2, 'c')");
  EXPECT_EQ(ignored.affected_rows, 1);  // only (2, 'c') landed
  Exec("REPLACE INTO r VALUES (1, 'z')");
  EXPECT_EQ(Exec("SELECT v FROM r WHERE k = 1").rows[0][0].text_value(), "z");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM r").rows[0][0].AsInt(), 2);
}

TEST_F(ExecutorTest, DefaultsApplyOnPartialInsert) {
  Exec("CREATE TABLE d (a INT, b TEXT DEFAULT 'dflt', c INT DEFAULT 7)");
  Exec("INSERT INTO d (a) VALUES (1)");
  ResultSet rs = Exec("SELECT b, c FROM d");
  EXPECT_EQ(rs.rows[0][0].text_value(), "dflt");
  EXPECT_EQ(rs.rows[0][1].AsInt(), 7);
}

TEST_F(ExecutorTest, ViewsExpandAndCascadeOnDrop) {
  Exec("CREATE TABLE base (x INT)");
  Exec("INSERT INTO base VALUES (1), (2)");
  Exec("CREATE VIEW v AS SELECT x FROM base WHERE x > 1");
  EXPECT_EQ(Exec("SELECT * FROM v").rows.size(), 1u);
  Exec("CREATE OR REPLACE VIEW v AS SELECT x FROM base");
  EXPECT_EQ(Exec("SELECT * FROM v").rows.size(), 2u);
  Exec("DROP VIEW v");
  EXPECT_EQ(ExecErr("SELECT * FROM v").code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, TriggersFire) {
  Exec("CREATE TABLE audit (n INT)");
  Exec("CREATE TABLE data (x INT)");
  Exec("CREATE TRIGGER tg AFTER INSERT ON data FOR EACH ROW "
       "INSERT INTO audit VALUES (1)");
  Exec("INSERT INTO data VALUES (10), (20)");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM audit").rows[0][0].AsInt(), 2);
  EXPECT_TRUE(db_.session().feature_trace[4].test(
      static_cast<size_t>(ExecFeature::kTriggerFired)));
}

TEST_F(ExecutorTest, TriggerRecursionIsBounded) {
  Exec("CREATE TABLE loop (x INT)");
  Exec("CREATE TRIGGER tg AFTER INSERT ON loop FOR EACH ROW "
       "INSERT INTO loop VALUES (1)");
  // Self-recursive trigger must hit the firing/depth limit, not hang.
  EXPECT_EQ(ExecErr("INSERT INTO loop VALUES (0)").code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorTest, RulesRewriteDml) {
  Exec("CREATE TABLE ruled (x INT)");
  Exec("CREATE TABLE log (x INT)");
  Exec("CREATE RULE r AS ON INSERT TO ruled DO INSTEAD "
       "INSERT INTO log VALUES (99)");
  Exec("INSERT INTO ruled VALUES (1)");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM ruled").rows[0][0].AsInt(), 0);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM log").rows[0][0].AsInt(), 1);
}

TEST_F(ExecutorTest, RuleDoNothingSwallowsDml) {
  Exec("CREATE TABLE quiet (x INT)");
  Exec("CREATE RULE r AS ON DELETE TO quiet DO INSTEAD NOTHING");
  Exec("INSERT INTO quiet VALUES (1)");
  Exec("DELETE FROM quiet");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM quiet").rows[0][0].AsInt(), 1);
}

TEST_F(ExecutorTest, WithCtesSelectAndDml) {
  Exec("CREATE TABLE base (x INT)");
  Exec("INSERT INTO base VALUES (1), (2), (3)");
  ResultSet rs = Exec("WITH w AS (SELECT x FROM base WHERE x > 1) "
                      "SELECT COUNT(*) FROM w");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 2);
  // DML inside WITH executes for its side effect.
  Exec("WITH w AS (INSERT INTO base VALUES (4)) SELECT 1");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM base").rows[0][0].AsInt(), 4);
}

TEST_F(ExecutorTest, TransactionsCommitRollbackSavepoints) {
  Exec("CREATE TABLE t (x INT)");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1)");
  Exec("ROLLBACK");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].AsInt(), 0);

  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1)");
  Exec("SAVEPOINT sp1");
  Exec("INSERT INTO t VALUES (2)");
  Exec("ROLLBACK TO sp1");
  Exec("COMMIT");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].AsInt(), 1);

  EXPECT_EQ(ExecErr("COMMIT").code(), StatusCode::kTransactionError);
  EXPECT_EQ(ExecErr("SAVEPOINT sp").code(), StatusCode::kTransactionError);
  Exec("BEGIN");
  EXPECT_EQ(ExecErr("BEGIN").code(), StatusCode::kTransactionError);
  Exec("ROLLBACK");
}

TEST_F(ExecutorTest, DdlInsideTransactionRollsBack) {
  Exec("BEGIN");
  Exec("CREATE TABLE temp_t (x INT)");
  Exec("ROLLBACK");
  EXPECT_EQ(ExecErr("SELECT * FROM temp_t").code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, PrivilegesEnforcedForNonRoot) {
  Exec("CREATE TABLE secret (x INT)");
  Exec("INSERT INTO secret VALUES (42)");
  Exec("CREATE USER alice");
  Exec("GRANT SELECT ON secret TO alice");
  Exec("SET role = 'alice'");
  EXPECT_EQ(Exec("SELECT x FROM secret").rows.size(), 1u);
  EXPECT_EQ(ExecErr("INSERT INTO secret VALUES (1)").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(ExecErr("DELETE FROM secret").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(ExecErr("GRANT ALL ON secret TO alice").code(),
            StatusCode::kPermissionDenied);
  Exec("SET role = 'root'");
  Exec("REVOKE SELECT ON secret FROM alice");
  Exec("SET role = 'alice'");
  EXPECT_EQ(ExecErr("SELECT x FROM secret").code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ExecutorTest, AlterTableAllActions) {
  Exec("CREATE TABLE a (x INT)");
  Exec("INSERT INTO a VALUES (1)");
  Exec("ALTER TABLE a ADD COLUMN y TEXT DEFAULT 'd'");
  EXPECT_EQ(Exec("SELECT y FROM a").rows[0][0].text_value(), "d");
  Exec("ALTER TABLE a RENAME COLUMN y TO z");
  EXPECT_EQ(Exec("SELECT z FROM a").rows.size(), 1u);
  Exec("ALTER TABLE a DROP COLUMN z");
  EXPECT_EQ(ExecErr("SELECT z FROM a").code(), StatusCode::kSemanticError);
  Exec("ALTER TABLE a RENAME TO b");
  EXPECT_EQ(Exec("SELECT x FROM b").rows.size(), 1u);
  EXPECT_EQ(ExecErr("SELECT * FROM a").code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, SequencesNextvalCurrval) {
  Exec("CREATE SEQUENCE sq START 5 INCREMENT 2");
  EXPECT_EQ(Exec("SELECT NEXTVAL('sq')").rows[0][0].AsInt(), 5);
  EXPECT_EQ(Exec("SELECT NEXTVAL('sq')").rows[0][0].AsInt(), 7);
  EXPECT_EQ(Exec("SELECT CURRVAL('sq')").rows[0][0].AsInt(), 7);
}

TEST_F(ExecutorTest, MaintenanceStatements) {
  Exec("CREATE TABLE m (x INT)");
  Exec("CREATE INDEX mx ON m (x)");
  for (int i = 0; i < 10; ++i) {
    Exec("INSERT INTO m VALUES (" + std::to_string(i) + ")");
  }
  Exec("DELETE FROM m WHERE x < 5");
  Exec("ANALYZE m");
  EXPECT_EQ((*db_.catalog().GetTable("m"))->analyzed_row_count, 5);
  Exec("VACUUM m");
  EXPECT_EQ(Exec("SELECT x FROM m WHERE x = 7").rows.size(), 1u);
  Exec("REINDEX mx");
  EXPECT_EQ(Exec("SELECT x FROM m WHERE x = 7").rows.size(), 1u);
  Exec("CHECKPOINT");
}

TEST_F(ExecutorTest, CopyProducesRows) {
  Exec("CREATE TABLE cp (a INT, b TEXT)");
  Exec("INSERT INTO cp VALUES (1, 'x'), (2, 'y')");
  ResultSet rs = Exec("COPY cp TO STDOUT CSV HEADER");
  ASSERT_EQ(rs.notes.size(), 3u);
  EXPECT_EQ(rs.notes[0], "a,b");
  EXPECT_EQ(rs.notes[1], "1,x");
}

TEST_F(ExecutorTest, ExplainDescribesPlan) {
  Exec("CREATE TABLE e (a INT)");
  Exec("CREATE INDEX ea ON e (a)");
  ResultSet rs = Exec("EXPLAIN SELECT a FROM e WHERE a = 1 ORDER BY a");
  std::string joined;
  for (const auto& n : rs.notes) joined += n + "\n";
  EXPECT_NE(joined.find("Sort"), std::string::npos);
  EXPECT_NE(joined.find("IndexScan"), std::string::npos);
}

TEST_F(ExecutorTest, NotifyListenShowPragma) {
  Exec("LISTEN ch");
  ResultSet rs = Exec("NOTIFY ch, 'hello'");
  ASSERT_EQ(rs.notes.size(), 1u);
  EXPECT_EQ(db_.session().notifications.back(), "ch:hello");
  Exec("UNLISTEN ch");
  Exec("PRAGMA cache_size = 32");
  EXPECT_EQ(Exec("PRAGMA cache_size").rows[0][0].AsInt(), 32);
  Exec("CREATE TABLE s1 (x INT)");
  ResultSet tables = Exec("SHOW TABLES");
  ASSERT_EQ(tables.rows.size(), 1u);
  EXPECT_EQ(tables.rows[0][0].text_value(), "s1");
}

TEST_F(ExecutorTest, DialectProfileRejectsUnsupportedTypes) {
  Database comd(&DialectProfile::ComdLite());
  auto stmt = sql::Parser::ParseStatement("NOTIFY ch");
  ASSERT_TRUE(stmt.ok());
  auto result = comd.Execute(**stmt);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);

  auto rule = sql::Parser::ParseStatement(
      "CREATE RULE r AS ON INSERT TO t DO INSTEAD NOTHING");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(comd.Execute(**rule).status().code(), StatusCode::kUnsupported);
}

TEST_F(ExecutorTest, TypeTraceRecordsExecutionOrder) {
  Exec("CREATE TABLE t (x INT)");
  Exec("INSERT INTO t VALUES (1)");
  Exec("SELECT * FROM t");
  const auto& trace = db_.session().type_trace;
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], sql::StatementType::kCreateTable);
  EXPECT_EQ(trace[1], sql::StatementType::kInsert);
  EXPECT_EQ(trace[2], sql::StatementType::kSelect);
}

TEST_F(ExecutorTest, FailedStatementsAreNotTraced) {
  ExecErr("SELECT * FROM missing");
  EXPECT_TRUE(db_.session().type_trace.empty());
}

TEST_F(ExecutorTest, RuleDefinitionTracesActionType) {
  Exec("CREATE TABLE t (x INT)");
  Exec("CREATE RULE r AS ON INSERT TO t DO INSTEAD NOTIFY ch");
  const auto& trace = db_.session().type_trace;
  // CREATE TABLE, NOTIFY (action registered), CREATE RULE.
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[1], sql::StatementType::kNotify);
  EXPECT_EQ(trace[2], sql::StatementType::kCreateRule);
}

TEST_F(ExecutorTest, ScriptExecutionCountsErrorsAndContinues) {
  auto result = db_.ExecuteScript(
      "CREATE TABLE t (x INT);"
      "INSERT INTO t VALUES (1);"
      "SELECT * FROM missing;"  // error, but the script continues
      "SELECT * FROM t;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->executed, 3);
  EXPECT_EQ(result->errors, 1);
  EXPECT_FALSE(result->crashed);
}

TEST_F(ExecutorTest, OrderByOrdinalAndLimit) {
  Exec("CREATE TABLE o (a INT, b INT)");
  Exec("INSERT INTO o VALUES (3, 1), (1, 2), (2, 3)");
  ResultSet rs = Exec("SELECT a, b FROM o ORDER BY 1 LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 1);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 2);
  EXPECT_EQ(ExecErr("SELECT a FROM o ORDER BY 9").code(),
            StatusCode::kSemanticError);
}

TEST_F(ExecutorTest, ValuesStatement) {
  ResultSet rs = Exec("VALUES (1, 'a'), (2, 'b')");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.column_names[0], "column1");
}

TEST_F(ExecutorTest, TemporaryTablesDiscarded) {
  Exec("CREATE TEMPORARY TABLE tmp (x INT)");
  Exec("CREATE TABLE keep (x INT)");
  Exec("DISCARD TEMP");
  EXPECT_EQ(ExecErr("SELECT * FROM tmp").code(), StatusCode::kNotFound);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM keep").rows[0][0].AsInt(), 0);
}

}  // namespace
}  // namespace lego::minidb
