#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "fuzz/campaign.h"
#include "fuzz/checkpoint.h"
#include "fuzz/harness.h"
#include "lego/lego_fuzzer.h"
#include "minidb/profile.h"

namespace lego::fuzz {
namespace {

std::unique_ptr<core::LegoFuzzer> MakeLego(uint64_t seed) {
  core::LegoOptions options;
  options.rng_seed = seed;
  return std::make_unique<core::LegoFuzzer>(minidb::DialectProfile::PgLite(),
                                            options);
}

/// Fresh scratch directory per test.
std::string StateDir(const std::string& name) {
  auto dir = std::filesystem::temp_directory_path() / ("lego_resume_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

CampaignResult RunOne(const CampaignOptions& options, uint64_t seed) {
  auto fuzzer = MakeLego(seed);
  ExecutionHarness harness(minidb::DialectProfile::PgLite());
  return RunCampaign(fuzzer.get(), &harness, options);
}

/// Interruption is emulated deterministically by budget: checkpoint a run
/// stopped at `partial` executions, then resume it to `full`. The
/// fingerprint deliberately excludes max_executions, so this is a
/// supported resume — and it exercises exactly the load path a killed
/// process would take.
TEST(CampaignResumeTest, SerialResumeIsBitIdenticalToUninterrupted) {
  const std::string dir = StateDir("serial");
  CampaignOptions base;
  base.snapshot_every = 100;

  CampaignOptions uninterrupted = base;
  uninterrupted.max_executions = 900;
  CampaignResult full = RunOne(uninterrupted, 7);
  ASSERT_TRUE(full.state_status.ok()) << full.state_status.ToString();

  CampaignOptions first_half = base;
  first_half.max_executions = 450;
  first_half.state_dir = dir;
  CampaignResult partial = RunOne(first_half, 7);
  ASSERT_TRUE(partial.state_status.ok()) << partial.state_status.ToString();
  EXPECT_EQ(partial.executions, 450);

  CampaignOptions second_half = base;
  second_half.max_executions = 900;
  second_half.state_dir = dir;
  second_half.resume = true;
  CampaignResult resumed = RunOne(second_half, 7);
  ASSERT_TRUE(resumed.state_status.ok()) << resumed.state_status.ToString();

  EXPECT_EQ(resumed.executions, full.executions);
  EXPECT_EQ(resumed.edges, full.edges);
  EXPECT_EQ(resumed.coverage_curve, full.coverage_curve);
  EXPECT_EQ(resumed.crash_hashes, full.crash_hashes);
  EXPECT_EQ(resumed.bug_ids, full.bug_ids);
  EXPECT_EQ(resumed.affinities, full.affinities);
  EXPECT_EQ(ResultDigest(resumed), ResultDigest(full));
  std::filesystem::remove_all(dir);
}

TEST(CampaignResumeTest, SerialMidRunCheckpointsResumeIdentically) {
  // Checkpoint cadence on: the resumed run must also write/refresh state
  // without perturbing the fuzzing schedule.
  const std::string dir = StateDir("serial_ckpt");
  CampaignOptions base;
  base.snapshot_every = 100;
  base.checkpoint_every = 100;

  CampaignOptions uninterrupted = base;
  uninterrupted.max_executions = 600;
  CampaignResult full = RunOne(uninterrupted, 3);

  CampaignOptions first = base;
  first.max_executions = 200;
  first.state_dir = dir;
  ASSERT_TRUE(RunOne(first, 3).state_status.ok());

  CampaignOptions rest = base;
  rest.max_executions = 600;
  rest.state_dir = dir;
  rest.resume = true;
  CampaignResult resumed = RunOne(rest, 3);
  ASSERT_TRUE(resumed.state_status.ok()) << resumed.state_status.ToString();
  EXPECT_EQ(ResultDigest(resumed), ResultDigest(full));
  std::filesystem::remove_all(dir);
}

TEST(CampaignResumeTest, ResumeOfCompleteCampaignReturnsStoredResult) {
  const std::string dir = StateDir("complete");
  CampaignOptions options;
  options.max_executions = 300;
  options.snapshot_every = 100;
  options.state_dir = dir;
  CampaignResult first = RunOne(options, 9);
  ASSERT_TRUE(first.state_status.ok());

  options.resume = true;
  CampaignResult again = RunOne(options, 9);
  ASSERT_TRUE(again.state_status.ok()) << again.state_status.ToString();
  EXPECT_EQ(again.executions, 300);
  EXPECT_EQ(ResultDigest(again), ResultDigest(first));
  std::filesystem::remove_all(dir);
}

TEST(CampaignResumeTest, MismatchedConfigurationIsRejected) {
  const std::string dir = StateDir("mismatch");
  CampaignOptions options;
  options.max_executions = 200;
  options.snapshot_every = 100;
  options.state_dir = dir;
  ASSERT_TRUE(RunOne(options, 1).state_status.ok());

  // Different snapshot cadence — same fuzzer/profile, still refused.
  CampaignOptions other = options;
  other.snapshot_every = 50;
  other.resume = true;
  CampaignResult rejected = RunOne(other, 1);
  EXPECT_FALSE(rejected.state_status.ok());
  EXPECT_EQ(rejected.executions, 0);

  // Different fuzzer under the same state dir, also refused.
  core::LegoOptions ablation;
  ablation.sequence_algorithms_enabled = false;
  ablation.rng_seed = 1;
  core::LegoFuzzer lego_minus(minidb::DialectProfile::PgLite(), ablation);
  ExecutionHarness harness(minidb::DialectProfile::PgLite());
  CampaignOptions resume_options = options;
  resume_options.resume = true;
  CampaignResult wrong = RunCampaign(&lego_minus, &harness, resume_options);
  EXPECT_FALSE(wrong.state_status.ok());
  EXPECT_EQ(wrong.executions, 0);
  std::filesystem::remove_all(dir);
}

TEST(CampaignResumeTest, MissingStateDirFailsResumeCleanly) {
  CampaignOptions options;
  options.max_executions = 100;
  options.state_dir = StateDir("missing");  // removed, never created
  options.resume = true;
  CampaignResult result = RunOne(options, 1);
  EXPECT_FALSE(result.state_status.ok());
  EXPECT_EQ(result.executions, 0);
}

TEST(CampaignResumeTest, ParallelResumeIsBitIdenticalToUninterrupted) {
  const std::string dir = StateDir("parallel");
  CampaignOptions base;
  base.num_workers = 4;
  base.sync_every = 16;  // one round = 64 executions total
  base.snapshot_every = 128;

  CampaignOptions uninterrupted = base;
  uninterrupted.max_executions = 512;
  CampaignResult full = RunOne(uninterrupted, 7);
  ASSERT_TRUE(full.state_status.ok()) << full.state_status.ToString();

  CampaignOptions first = base;
  first.max_executions = 256;  // round-aligned partial budget
  first.state_dir = dir;
  first.checkpoint_every = 64;
  CampaignResult partial = RunOne(first, 7);
  ASSERT_TRUE(partial.state_status.ok()) << partial.state_status.ToString();

  CampaignOptions rest = base;
  rest.max_executions = 512;
  rest.state_dir = dir;
  rest.checkpoint_every = 64;
  rest.resume = true;
  CampaignResult resumed = RunOne(rest, 7);
  ASSERT_TRUE(resumed.state_status.ok()) << resumed.state_status.ToString();

  EXPECT_EQ(resumed.executions, full.executions);
  EXPECT_EQ(resumed.edges, full.edges);
  EXPECT_EQ(resumed.coverage_curve, full.coverage_curve);
  EXPECT_EQ(ResultDigest(resumed), ResultDigest(full));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lego::fuzz
