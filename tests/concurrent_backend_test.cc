#include "fuzz/backend_concurrent.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "concurrency/history_checker.h"
#include "fuzz/harness.h"
#include "fuzz/multi_case.h"
#include "fuzz/testcase.h"
#include "minidb/profile.h"
#include "util/hash.h"

namespace lego::fuzz {
namespace {

TestCase Parse(const char* sql_text) {
  auto tc = TestCase::FromSql(sql_text);
  EXPECT_TRUE(tc.ok()) << tc.status().ToString();
  return std::move(*tc);
}

/// Hand-built two-session case: setup creates the table, each session gets
/// its own script (no seeded splitting — the test controls contention).
MultiSessionCase TwoSessions(const char* setup, const char* s0,
                             const char* s1) {
  MultiSessionCase mc;
  mc.setup = Parse(setup);
  mc.sessions.push_back(Parse(s0));
  mc.sessions.push_back(Parse(s1));
  return mc;
}

BackendOptions ConcurrentOptions() {
  BackendOptions options;
  options.kind = BackendKind::kConcurrent;
  options.sessions = 2;
  return options;
}

constexpr const char* kSetup =
    "CREATE TABLE t (a INT, b INT);"
    "INSERT INTO t VALUES (1, 10);"
    "INSERT INTO t VALUES (2, 20);";

TEST(ConcurrentBackendTest, CleanRmwCaseHasNoAnomalies) {
  ConcurrentBackend backend(minidb::DialectProfile::PgLite(),
                            ConcurrentOptions());
  MultiSessionCase mc = TwoSessions(
      kSetup,
      "UPDATE t SET b = b + 1 WHERE a = 1; SELECT b FROM t;",
      "UPDATE t SET b = b + 1 WHERE a = 1; SELECT a FROM t;");
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    backend.Reset();
    auto result = backend.RunCase(mc, seed);
    EXPECT_FALSE(result.stats.crashed);
    EXPECT_EQ(result.setup_errors, 0);
    auto anomaly = concurrency::CheckHistory(backend.history());
    EXPECT_FALSE(anomaly.has_value())
        << "seed " << seed << ": " << anomaly->id << " — " << anomaly->detail
        << "\n" << backend.history().Render();
  }
}

TEST(ConcurrentBackendTest, SameSeedReplaysBitIdentically) {
  ConcurrentBackend backend(minidb::DialectProfile::PgLite(),
                            ConcurrentOptions());
  MultiSessionCase mc = TwoSessions(
      kSetup,
      "BEGIN; UPDATE t SET b = b + 1 WHERE a = 1; SELECT b FROM t; COMMIT;",
      "BEGIN; UPDATE t SET b = b * 2 WHERE a = 1; DELETE FROM t WHERE a = 2;"
      " COMMIT;");
  backend.Reset();
  auto first = backend.RunCase(mc, 42);
  ASSERT_FALSE(first.stats.crashed);
  for (int rerun = 0; rerun < 50; ++rerun) {
    backend.Reset();
    auto again = backend.RunCase(mc, 42);
    ASSERT_EQ(again.stats.trace_digest, first.stats.trace_digest)
        << "rerun " << rerun;
    ASSERT_EQ(again.stats.history_digest, first.stats.history_digest)
        << "rerun " << rerun;
    ASSERT_EQ(again.stats.executed, first.stats.executed);
    ASSERT_EQ(again.stats.errors, first.stats.errors);
    ASSERT_EQ(again.stats.epochs, first.stats.epochs);
    ASSERT_EQ(again.stats.switches, first.stats.switches);
  }
}

TEST(ConcurrentBackendTest, DifferentSeedsProduceDistinctInterleavings) {
  ConcurrentBackend backend(minidb::DialectProfile::PgLite(),
                            ConcurrentOptions());
  MultiSessionCase mc = TwoSessions(
      kSetup,
      "UPDATE t SET b = b + 1 WHERE a = 1;"
      "UPDATE t SET b = b + 1 WHERE a = 2; SELECT b FROM t;",
      "UPDATE t SET b = b * 2 WHERE a = 1;"
      "UPDATE t SET b = b * 2 WHERE a = 2; SELECT b FROM t;");
  std::set<uint64_t> traces;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    backend.Reset();
    auto result = backend.RunCase(mc, seed);
    ASSERT_FALSE(result.stats.crashed);
    traces.insert(result.stats.trace_digest);
  }
  // 16 seeds over dozens of schedule points: at least two genuinely
  // different interleavings must appear (in practice nearly all differ).
  EXPECT_GT(traces.size(), 1u);
}

TEST(ConcurrentBackendTest, PlantedLostUpdateIsDetected) {
  BackendOptions options = ConcurrentOptions();
  options.planted_lost_update = true;
  ConcurrentBackend backend(minidb::DialectProfile::PgLite(), options);
  // Classic unprotected RMW: both sessions increment the same row.
  MultiSessionCase mc = TwoSessions(
      kSetup,
      "UPDATE t SET b = b + 1 WHERE a = 1;",
      "UPDATE t SET b = b + 1 WHERE a = 1;");
  bool found = false;
  for (uint64_t seed = 1; seed <= 32 && !found; ++seed) {
    backend.Reset();
    auto result = backend.RunCase(mc, seed);
    ASSERT_FALSE(result.stats.crashed);
    auto anomaly = concurrency::CheckHistory(backend.history());
    if (anomaly.has_value()) {
      EXPECT_EQ(anomaly->id, "iso-lost-update") << anomaly->detail;
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no interleaving in 32 seeds exposed the plant";
}

TEST(ConcurrentBackendTest, PlantedDirtyReadIsDetected) {
  BackendOptions options = ConcurrentOptions();
  options.planted_dirty_read = true;
  ConcurrentBackend backend(minidb::DialectProfile::PgLite(), options);
  // A long writer txn and an autocommit reader of the same row.
  MultiSessionCase mc = TwoSessions(
      kSetup,
      "BEGIN; UPDATE t SET b = 99 WHERE a = 1;"
      " UPDATE t SET b = 98 WHERE a = 2; COMMIT;",
      "SELECT b FROM t; SELECT b FROM t;");
  bool found = false;
  for (uint64_t seed = 1; seed <= 32 && !found; ++seed) {
    backend.Reset();
    auto result = backend.RunCase(mc, seed);
    ASSERT_FALSE(result.stats.crashed);
    auto anomaly = concurrency::CheckHistory(backend.history());
    if (anomaly.has_value()) {
      EXPECT_TRUE(anomaly->id == "iso-dirty-read" ||
                  anomaly->id == "iso-non-repeatable-read")
          << anomaly->id << " — " << anomaly->detail;
      found = anomaly->id == "iso-dirty-read";
    }
  }
  EXPECT_TRUE(found) << "no interleaving in 32 seeds exposed the plant";
}

TEST(ConcurrentBackendTest, UpgradeDeadlockResolvesViaVictimAbort) {
  ConcurrentBackend backend(minidb::DialectProfile::PgLite(),
                            ConcurrentOptions());
  // Scans acquire rows in heap order, so opposed-order UPDATE deadlocks
  // cannot form; the reachable deadlock shape is the S->X upgrade race:
  // both txns S-lock the row via SELECT, then both try to upgrade for the
  // UPDATE. The second upgrader closes the wait-for cycle and must die.
  MultiSessionCase mc = TwoSessions(
      kSetup,
      "BEGIN; SELECT b FROM t; UPDATE t SET b = 1 WHERE a = 1; COMMIT;",
      "BEGIN; SELECT b FROM t; UPDATE t SET b = 2 WHERE a = 1; COMMIT;");
  int deadlocks = 0;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    backend.Reset();
    auto result = backend.RunCase(mc, seed);
    ASSERT_FALSE(result.stats.crashed);
    deadlocks += result.stats.deadlocks;
    // Whatever happened, the post-state must be lock-consistent: verify the
    // history carries no anomaly (the victim's txn rolled back cleanly).
    auto anomaly = concurrency::CheckHistory(backend.history());
    EXPECT_FALSE(anomaly.has_value())
        << "seed " << seed << ": " << anomaly->id << " — " << anomaly->detail;
  }
  EXPECT_GT(deadlocks, 0) << "no seed produced an actual deadlock";
}

TEST(ConcurrentBackendTest, HarnessDerivedSeedsAreCheckpointStable) {
  // The harness derives each case's seed from (campaign seed, execution
  // index); a forced seed overrides it. Replaying the same case with the
  // same forced seed must reproduce digests exactly.
  BackendOptions options = ConcurrentOptions();
  options.concurrency_seed = 7;
  ExecutionHarness harness(minidb::DialectProfile::PgLite(), options);
  TestCase tc = Parse(
      "CREATE TABLE t (a INT, b INT);"
      "INSERT INTO t VALUES (1, 10);"
      "UPDATE t SET b = b + 1 WHERE a = 1;"
      "UPDATE t SET b = b * 2 WHERE a = 1;"
      "SELECT b FROM t;");
  ExecResult first = harness.Run(tc);
  EXPECT_EQ(first.interleave_seed, HashMix(7, 1));

  harness.set_forced_interleave_seed(first.interleave_seed);
  ExecResult replay = harness.Run(tc);
  EXPECT_EQ(replay.interleave_seed, first.interleave_seed);
  EXPECT_EQ(replay.trace_digest, first.trace_digest);
  EXPECT_EQ(replay.history_digest, first.history_digest);
  EXPECT_EQ(replay.executed, first.executed);
  EXPECT_EQ(replay.errors, first.errors);

  harness.set_forced_interleave_seed(std::nullopt);
  ExecResult derived = harness.Run(tc);  // execution 3 -> a different seed
  EXPECT_EQ(derived.interleave_seed, HashMix(7, 3));
}

TEST(ConcurrentBackendTest, SingleSessionFallsBackToSerialPath) {
  // sessions=1 must not route through the scheduler at all: the serial
  // in-process path keeps single-session campaigns bit-identical.
  BackendOptions options = ConcurrentOptions();
  options.sessions = 1;
  ExecutionHarness concurrent(minidb::DialectProfile::PgLite(), options);
  ExecutionHarness inproc(minidb::DialectProfile::PgLite());
  TestCase tc = Parse(
      "CREATE TABLE t (a INT);"
      "INSERT INTO t VALUES (1);"
      "UPDATE t SET a = a + 1;"
      "SELECT a FROM t;");
  ExecResult a = concurrent.Run(tc);
  ExecResult b = inproc.Run(tc);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.total_edges, b.total_edges);
  EXPECT_EQ(a.interleave_seed, 0u);  // serial path: no seed derived
}

}  // namespace
}  // namespace lego::fuzz
