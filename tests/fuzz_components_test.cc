#include <gtest/gtest.h>

#include <set>

#include "fuzz/campaign.h"
#include "fuzz/corpus.h"
#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "minidb/profile.h"

namespace lego::fuzz {
namespace {

TEST(TestCaseTest, FromSqlAndTypeSequence) {
  auto tc = TestCase::FromSql(
      "CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT * FROM t;");
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(tc->size(), 3u);
  EXPECT_EQ(tc->TypeSequence(),
            (std::vector<sql::StatementType>{
                sql::StatementType::kCreateTable, sql::StatementType::kInsert,
                sql::StatementType::kSelect}));
}

TEST(TestCaseTest, FromSqlRejectsBrokenScripts) {
  EXPECT_FALSE(TestCase::FromSql("SELECT FROM;").ok());
  EXPECT_FALSE(TestCase::FromSql("NOT SQL AT ALL").ok());
}

TEST(TestCaseTest, ToSqlRoundTrips) {
  auto tc = TestCase::FromSql("SELECT 1; SELECT 2;");
  ASSERT_TRUE(tc.ok());
  auto again = TestCase::FromSql(tc->ToSql());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 2u);
  EXPECT_EQ(again->ToSql(), tc->ToSql());
}

TEST(TestCaseTest, CloneIsDeep) {
  auto tc = TestCase::FromSql("INSERT INTO t VALUES (1);");
  ASSERT_TRUE(tc.ok());
  TestCase copy = tc->Clone();
  static_cast<sql::InsertStmt*>((*copy.mutable_statements())[0].get())
      ->table = "other";
  EXPECT_NE(copy.ToSql(), tc->ToSql());
}

TEST(CorpusTest, AddAndFavoredSelection) {
  Corpus corpus;
  Rng rng(1);
  EXPECT_EQ(corpus.Select(&rng), nullptr);
  corpus.Add(std::move(*TestCase::FromSql("SELECT 1;")));
  corpus.Add(std::move(*TestCase::FromSql("SELECT 2;")));
  // Fresh seeds are served first, oldest first.
  Seed* first = corpus.Select(&rng);
  Seed* second = corpus.Select(&rng);
  EXPECT_EQ(first->id, 0);
  EXPECT_EQ(second->id, 1);
  EXPECT_FALSE(first->favored);
  // After the favored pass, selection is weighted but always succeeds.
  for (int i = 0; i < 50; ++i) EXPECT_NE(corpus.Select(&rng), nullptr);
}

TEST(CorpusTest, ProductiveSeedsPreferred) {
  Corpus corpus;
  Rng rng(2);
  Seed* dull = corpus.Add(std::move(*TestCase::FromSql("SELECT 1;")));
  Seed* star = corpus.Add(std::move(*TestCase::FromSql("SELECT 2;")));
  corpus.Select(&rng);  // clear favored flags
  corpus.Select(&rng);
  star->discoveries = 50;
  int star_picks = 0;
  for (int i = 0; i < 400; ++i) {
    if (corpus.Select(&rng) == star) ++star_picks;
  }
  EXPECT_GT(star_picks, 200) << "productive seed not preferred";
  (void)dull;
}

TEST(CorpusTest, PointersSurviveGrowth) {
  Corpus corpus;
  Seed* first = corpus.Add(std::move(*TestCase::FromSql("SELECT 1;")));
  std::string before = first->test_case.ToSql();
  for (int i = 0; i < 500; ++i) {
    corpus.Add(std::move(*TestCase::FromSql("SELECT " + std::to_string(i) + ";")));
  }
  // The deque must keep the first pointer valid (the fuzzers hold it across
  // Add calls).
  EXPECT_EQ(first->test_case.ToSql(), before);
  EXPECT_EQ(first->id, 0);
}

TEST(HarnessTest, CrashStopsTheScript) {
  ExecutionHarness harness(minidb::DialectProfile::MyLite());
  // The Fig. 3 sequence triggers MY-AUTH-02; the SELECT after it never runs.
  auto tc = TestCase::FromSql(
      "CREATE TABLE v0 (v1 INT);"
      "INSERT INTO v0 VALUES (1);"
      "CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW "
      "INSERT INTO v0 VALUES (2);"
      "SELECT * FROM v0;"
      "SELECT 1;");
  ASSERT_TRUE(tc.ok());
  ExecResult result = harness.Run(*tc);
  EXPECT_TRUE(result.crashed);
  EXPECT_EQ(result.crash.bug_id, "MY-AUTH-02");
  EXPECT_EQ(result.executed, 3);  // crash consumed the 4th statement
}

TEST(HarnessTest, CrashReproducesAcrossRuns) {
  ExecutionHarness harness(minidb::DialectProfile::MyLite());
  auto tc = TestCase::FromSql(
      "CREATE TABLE v0 (v1 INT);"
      "INSERT INTO v0 VALUES (1);"
      "CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW "
      "INSERT INTO v0 VALUES (2);"
      "SELECT * FROM v0;");
  ASSERT_TRUE(tc.ok());
  ExecResult first = harness.Run(*tc);
  ExecResult second = harness.Run(*tc);
  EXPECT_TRUE(first.crashed);
  EXPECT_TRUE(second.crashed);
  EXPECT_EQ(first.crash.stack_hash, second.crash.stack_hash);
}

TEST(HarnessTest, SetupScriptIsInvisibleToTheOracle) {
  ExecutionHarness harness(minidb::DialectProfile::MyLite());
  // A setup script that would itself trigger MY-AUTH-02 must not count.
  harness.set_setup_script(
      "CREATE TABLE v0 (v1 INT);"
      "INSERT INTO v0 VALUES (1);"
      "CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW "
      "INSERT INTO v0 VALUES (2);"
      "SELECT * FROM v0;");
  auto probe = TestCase::FromSql("SELECT 1;");
  ASSERT_TRUE(probe.ok());
  ExecResult result = harness.Run(*probe);
  EXPECT_FALSE(result.crashed);
  EXPECT_EQ(result.executed, 1);
}

TEST(HarnessTest, SetupSchemaVisibleToTestCases) {
  ExecutionHarness harness(minidb::DialectProfile::PgLite());
  harness.set_setup_script("CREATE TABLE pre (x INT);"
                           "INSERT INTO pre VALUES (5);");
  auto tc = TestCase::FromSql("SELECT x FROM pre;");
  ASSERT_TRUE(tc.ok());
  ExecResult result = harness.Run(*tc);
  EXPECT_EQ(result.errors, 0);
  EXPECT_EQ(result.executed, 1);
}

TEST(CampaignTest, AccountingAddsUp) {
  ExecutionHarness harness(minidb::DialectProfile::PgLite());

  // A fixed-script fuzzer for deterministic accounting.
  class FixedFuzzer : public Fuzzer {
   public:
    std::string name() const override { return "fixed"; }
    void Prepare(ExecutionHarness*) override {}
    TestCase Next() override {
      return std::move(*TestCase::FromSql(
          "CREATE TABLE t (x INT); INSERT INTO t VALUES (1);"
          "SELECT * FROM nonexistent; SELECT * FROM t;"));
    }
    void OnResult(const TestCase&, const ExecResult&) override {}
  };

  FixedFuzzer fuzzer;
  CampaignOptions options;
  options.max_executions = 10;
  options.snapshot_every = 5;
  CampaignResult result = RunCampaign(&fuzzer, &harness, options);
  EXPECT_EQ(result.executions, 10);
  EXPECT_EQ(result.statements_executed, 30);  // 3 ok per run
  EXPECT_EQ(result.statement_errors, 10);     // 1 rejected per run
  EXPECT_EQ(result.coverage_curve.size(), 2u);
  // Affinities of the fixed script: CT->INS, INS->SEL, SEL->SEL skipped.
  EXPECT_EQ(result.affinities.size(), 2u);
  EXPECT_TRUE(result.bug_ids.empty());
}

TEST(CampaignTest, StatementBudgetStopsEarly) {
  ExecutionHarness harness(minidb::DialectProfile::PgLite());
  class OneLiner : public Fuzzer {
   public:
    std::string name() const override { return "oneliner"; }
    void Prepare(ExecutionHarness*) override {}
    TestCase Next() override {
      return std::move(*TestCase::FromSql("SELECT 1; SELECT 2;"));
    }
    void OnResult(const TestCase&, const ExecResult&) override {}
  };
  OneLiner fuzzer;
  CampaignOptions options;
  options.max_executions = 1000;
  options.max_statements = 20;
  CampaignResult result = RunCampaign(&fuzzer, &harness, options);
  EXPECT_EQ(result.executions, 10);  // 2 statements per execution
}

}  // namespace
}  // namespace lego::fuzz
