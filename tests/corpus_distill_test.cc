#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/campaign.h"
#include "fuzz/corpus_file.h"
#include "fuzz/distill.h"
#include "fuzz/harness.h"
#include "lego/lego_fuzzer.h"
#include "minidb/profile.h"

namespace lego::fuzz {
namespace {

std::unique_ptr<core::LegoFuzzer> MakeLego(uint64_t seed) {
  core::LegoOptions options;
  options.rng_seed = seed;
  return std::make_unique<core::LegoFuzzer>(minidb::DialectProfile::PgLite(),
                                            options);
}

/// A realistic donor corpus: whatever a short campaign accumulates.
std::vector<TestCase> DonorCorpus(uint64_t seed, int executions) {
  auto fuzzer = MakeLego(seed);
  ExecutionHarness harness(minidb::DialectProfile::PgLite());
  CampaignOptions options;
  options.max_executions = executions;
  options.export_corpus = true;
  CampaignResult result = RunCampaign(fuzzer.get(), &harness, options);
  return std::move(result.corpus_export);
}

TEST(CorpusFileTest, SaveLoadRoundTripsEveryCase) {
  std::vector<TestCase> donor = DonorCorpus(3, 1500);
  ASSERT_FALSE(donor.empty());
  const std::string path =
      (std::filesystem::temp_directory_path() / "lego_corpus_rt.bin").string();
  ASSERT_TRUE(SaveCorpusFile(donor, path).ok());
  auto loaded = LoadCorpusFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), donor.size());
  for (size_t i = 0; i < donor.size(); ++i) {
    EXPECT_EQ((*loaded)[i].ToSql(), donor[i].ToSql()) << "case " << i;
  }
  std::filesystem::remove(path);
}

TEST(CorpusFileTest, CorruptedFileIsRejected) {
  std::vector<TestCase> donor = DonorCorpus(3, 400);
  const std::string path =
      (std::filesystem::temp_directory_path() / "lego_corpus_bad.bin")
          .string();
  ASSERT_TRUE(SaveCorpusFile(donor, path).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(40);
    byte ^= 0x20;
    f.write(&byte, 1);
  }
  EXPECT_FALSE(LoadCorpusFile(path).ok());
  std::filesystem::remove(path);
}

TEST(CorpusDistillTest, KeepsAllEdgesWithStrictlyFewerCases) {
  std::vector<TestCase> donor = DonorCorpus(7, 3000);
  ASSERT_GT(donor.size(), 10u);

  ExecutionHarness harness(minidb::DialectProfile::PgLite());
  DistillStats stats;
  std::vector<TestCase> kept = DistillCorpus(donor, &harness, &stats);

  EXPECT_EQ(stats.original_cases, donor.size());
  EXPECT_EQ(stats.kept_cases, kept.size());
  // The acceptance bar: strictly smaller, identical edge union.
  EXPECT_LT(kept.size(), donor.size());
  EXPECT_GT(stats.original_edges, 0u);
  EXPECT_EQ(stats.kept_edges, stats.original_edges);

  // Independent check on a fresh harness: the kept subset alone reaches
  // the full union.
  ExecutionHarness fresh(minidb::DialectProfile::PgLite());
  for (const TestCase& tc : kept) fresh.Run(tc);
  EXPECT_EQ(fresh.CoveredEdges(), stats.original_edges);
}

TEST(CorpusDistillTest, DistillationIsDeterministic) {
  std::vector<TestCase> donor = DonorCorpus(11, 1200);
  ExecutionHarness h1(minidb::DialectProfile::PgLite());
  ExecutionHarness h2(minidb::DialectProfile::PgLite());
  DistillStats s1, s2;
  std::vector<TestCase> k1 = DistillCorpus(donor, &h1, &s1);
  std::vector<TestCase> k2 = DistillCorpus(donor, &h2, &s2);
  ASSERT_EQ(k1.size(), k2.size());
  for (size_t i = 0; i < k1.size(); ++i) {
    EXPECT_EQ(k1[i].ToSql(), k2[i].ToSql());
  }
  EXPECT_EQ(s1.kept_edges, s2.kept_edges);
}

TEST(CorpusDistillTest, ImportedCorpusAcceleratesFreshCampaign) {
  // Cross-campaign reuse: a fresh campaign seeded with a donor's distilled
  // corpus must reach more coverage than the same budget from scratch.
  std::vector<TestCase> donor = DonorCorpus(7, 3000);
  ExecutionHarness distill_harness(minidb::DialectProfile::PgLite());
  DistillStats stats;
  std::vector<TestCase> kept =
      DistillCorpus(donor, &distill_harness, &stats);

  CampaignOptions options;
  options.max_executions = 600;

  auto cold = MakeLego(21);
  ExecutionHarness cold_harness(minidb::DialectProfile::PgLite());
  CampaignResult from_scratch = RunCampaign(cold.get(), &cold_harness,
                                            options);

  options.import_seeds = &kept;
  auto warm = MakeLego(21);
  ExecutionHarness warm_harness(minidb::DialectProfile::PgLite());
  CampaignResult with_import = RunCampaign(warm.get(), &warm_harness,
                                           options);

  EXPECT_GT(with_import.edges, from_scratch.edges);
  EXPECT_GE(with_import.fuzzer_stats.corpus_seeds, kept.size());
}

}  // namespace
}  // namespace lego::fuzz
