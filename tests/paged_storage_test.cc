// Paged-heap source-of-truth tests: scans stay correct when the working
// set exceeds the buffer pool (rows genuinely evict and reload through
// Env), and the steal/undo protocol recovers correctly — streamed records
// of unresolved transactions reach the durable WAL mid-transaction and the
// redo-then-undo pass rolls them back via their before-images.

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "minidb/database.h"
#include "minidb/env.h"
#include "minidb/storage_engine.h"
#include "minidb/storage_serde.h"
#include "sql/parser.h"

namespace lego::minidb {
namespace {

class PagedStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    profile_ = DialectProfile::ByName("pglite");
    ASSERT_NE(profile_, nullptr);
    MakeEngine();
    db_ = std::make_unique<Database>(profile_);
    ASSERT_TRUE(engine_->ResetFresh(db_.get()).ok());
  }

  void MakeEngine(size_t pool_frames = 4, size_t steal_flush_bytes = 1) {
    StorageEngine::Options opts;
    opts.env = &env_;
    opts.dir = "db";
    opts.pool_frames = pool_frames;
    // Tiny steal threshold: every in-transaction statement's records are
    // pushed to the durable log immediately, maximizing undo exposure.
    opts.steal_flush_bytes = steal_flush_bytes;
    engine_ = std::make_unique<StorageEngine>(opts);
  }

  void Exec(const std::string& sql) {
    auto stmts = sql::Parser::ParseScript(sql + ";");
    ASSERT_TRUE(stmts.ok()) << sql;
    for (const sql::StmtPtr& stmt : stmts.value()) {
      engine_->BeginStatement(db_.get());
      Status st = db_->Execute(*stmt).status();
      ASSERT_TRUE(engine_->EndStatement(db_.get(), *stmt, st.ok()).ok());
    }
  }

  size_t QueryRowCount(const std::string& sql) {
    auto stmts = sql::Parser::ParseScript(sql + ";");
    EXPECT_TRUE(stmts.ok()) << sql;
    if (!stmts.ok() || stmts->size() != 1) return 0;
    engine_->BeginStatement(db_.get());
    auto result = db_->Execute(*stmts.value()[0]);
    EXPECT_TRUE(
        engine_->EndStatement(db_.get(), *stmts.value()[0], result.ok()).ok());
    EXPECT_TRUE(result.ok()) << sql;
    return result.ok() ? result->rows.size() : 0;
  }

  uint64_t CrashAndRecoverDigest(size_t pool_frames = 4) {
    env_.SimulateCrash();
    MakeEngine(pool_frames);
    db_ = std::make_unique<Database>(profile_);
    Status st = engine_->OpenOrRecover(db_.get());
    EXPECT_TRUE(st.ok()) << st.ToString();
    return StateDigest(db_->catalog());
  }

  const DialectProfile* profile_ = nullptr;
  MemEnv env_;
  std::unique_ptr<StorageEngine> engine_;
  std::unique_ptr<Database> db_;
};

// A working set far beyond 4 frames must still scan, point-read, and
// aggregate correctly: rows round-trip through eviction and reload rather
// than living in pool frames.
TEST_F(PagedStorageTest, ScansStayCorrectUnderEvictionPressure) {
  Exec("CREATE TABLE t (a INT, b TEXT)");
  const std::string filler(200, 'x');
  for (int i = 0; i < 300; ++i) {
    Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", '" + filler +
         "')");
  }
  EXPECT_GT(engine_->stats().pool.evictions, 0u)
      << "dataset did not exceed the pool; the test is vacuous";

  EXPECT_EQ(QueryRowCount("SELECT a FROM t"), 300u);
  EXPECT_EQ(QueryRowCount("SELECT a FROM t WHERE a = 299"), 1u);
  Exec("DELETE FROM t WHERE a < 100");
  EXPECT_EQ(QueryRowCount("SELECT a FROM t"), 200u);
  Exec("UPDATE t SET b = 'y' WHERE a >= 290");
  EXPECT_EQ(QueryRowCount("SELECT a FROM t WHERE b = 'y'"), 10u);

  // The same script against a plain in-memory database lands on the same
  // state: eviction/reload is invisible to execution semantics.
  Database mem_db(profile_);
  auto run = [&](const std::string& sql) {
    auto stmts = sql::Parser::ParseScript(sql + ";");
    ASSERT_TRUE(stmts.ok());
    for (const sql::StmtPtr& stmt : stmts.value()) {
      (void)mem_db.Execute(*stmt);
    }
  };
  run("CREATE TABLE t (a INT, b TEXT)");
  for (int i = 0; i < 300; ++i) {
    run("INSERT INTO t VALUES (" + std::to_string(i) + ", '" + filler +
        "')");
  }
  run("DELETE FROM t WHERE a < 100");
  run("UPDATE t SET b = 'y' WHERE a >= 290");
  EXPECT_EQ(StateDigest(db_->catalog()), StateDigest(mem_db.catalog()));
}

// Evicted-and-reloaded state must survive a crash exactly like pool-hot
// state: the recovery replay is driven by the WAL, not by what happened to
// be resident.
TEST_F(PagedStorageTest, EvictedStateSurvivesCrash) {
  Exec("CREATE TABLE t (a INT, b TEXT)");
  const std::string filler(200, 'x');
  for (int i = 0; i < 200; ++i) {
    Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", '" + filler +
         "')");
  }
  ASSERT_GT(engine_->stats().pool.evictions, 0u);
  const uint64_t before = StateDigest(db_->catalog());
  EXPECT_EQ(CrashAndRecoverDigest(), before);
  EXPECT_EQ(QueryRowCount("SELECT a FROM t"), 200u);
}

// The steal policy's core obligation: an open transaction's records reach
// the durable log mid-transaction, and recovery must undo them (the
// transaction never committed) instead of replaying them as committed work.
TEST_F(PagedStorageTest, StealFlushedUncommittedWorkIsUndone) {
  Exec("CREATE TABLE t (a INT, b TEXT)");
  Exec("INSERT INTO t VALUES (1, 'committed')");
  const uint64_t committed = StateDigest(db_->catalog());

  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (2, 'stolen')");
  Exec("UPDATE t SET b = 'dirty' WHERE a = 1");
  Exec("DELETE FROM t WHERE a = 1");
  ASSERT_GT(engine_->stats().steal_flushes, 0u)
      << "no mid-transaction flush happened; the test is vacuous";
  // No COMMIT: the flushed records are losers.
  EXPECT_EQ(CrashAndRecoverDigest(), committed);
  EXPECT_GT(engine_->stats().loser_records, 0u);
  EXPECT_GT(engine_->stats().undo_applied, 0u);
  EXPECT_EQ(QueryRowCount("SELECT b FROM t WHERE b = 'committed'"), 1u);
}

// An explicit ROLLBACK after streamed records appends a compensating abort;
// work committed afterwards (possibly reusing the undone row ids) must
// survive a later crash.
TEST_F(PagedStorageTest, RollbackOfStreamedRecordsThenCommitRecovers) {
  Exec("CREATE TABLE t (a INT)");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1)");
  Exec("INSERT INTO t VALUES (2)");
  Exec("ROLLBACK");
  Exec("INSERT INTO t VALUES (3)");
  const uint64_t before = StateDigest(db_->catalog());
  EXPECT_EQ(CrashAndRecoverDigest(), before);
  EXPECT_EQ(QueryRowCount("SELECT a FROM t"), 1u);
  EXPECT_EQ(QueryRowCount("SELECT a FROM t WHERE a = 3"), 1u);
}

// ROLLBACK TO with streamed records appends kAbortTo; the partial undo must
// replay at its log position so the committed suffix lands on the right
// heap state.
TEST_F(PagedStorageTest, SavepointPartialUndoOfStreamedRecordsRecovers) {
  Exec("CREATE TABLE t (a INT, b TEXT)");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (1, 'keep')");
  Exec("SAVEPOINT sp");
  Exec("INSERT INTO t VALUES (2, 'drop')");
  Exec("UPDATE t SET b = 'mutated' WHERE a = 1");
  Exec("ROLLBACK TO sp");
  Exec("INSERT INTO t VALUES (3, 'after')");
  Exec("COMMIT");
  const uint64_t before = StateDigest(db_->catalog());
  EXPECT_EQ(CrashAndRecoverDigest(), before);
  EXPECT_EQ(QueryRowCount("SELECT a FROM t"), 2u);
  EXPECT_EQ(QueryRowCount("SELECT a FROM t WHERE b = 'keep'"), 1u);
  EXPECT_EQ(QueryRowCount("SELECT a FROM t WHERE b = 'after'"), 1u);
}

// A second crash immediately after a losers pass must recover to the same
// state: the compensating kAbort markers written at recovery keep the undo
// from re-running against reused row ids.
TEST_F(PagedStorageTest, RepeatedCrashAfterUndoIsIdempotent) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (1)");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (2)");
  const uint64_t first = CrashAndRecoverDigest();
  // New committed work after recovery, then another crash.
  Exec("INSERT INTO t VALUES (3)");
  const uint64_t extended = StateDigest(db_->catalog());
  ASSERT_NE(extended, first);
  EXPECT_EQ(CrashAndRecoverDigest(), extended);
  EXPECT_EQ(QueryRowCount("SELECT a FROM t"), 2u);
}

// Mixed mode: once a transaction logs a logical record (schema change),
// the remainder defers; an unresolved such transaction must vanish wholly.
TEST_F(PagedStorageTest, LogicalModeTransactionVanishesWholly) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (1)");
  const uint64_t committed = StateDigest(db_->catalog());
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (2)");       // streamed
  Exec("CREATE TABLE u (b INT)");         // logical: rest defers
  Exec("INSERT INTO u VALUES (3)");       // deferred
  Exec("INSERT INTO t VALUES (4)");       // deferred
  EXPECT_EQ(CrashAndRecoverDigest(), committed);
  EXPECT_EQ(QueryRowCount("SELECT a FROM t"), 1u);
}

}  // namespace
}  // namespace lego::minidb
