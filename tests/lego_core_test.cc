#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fuzz/testcase.h"
#include "lego/affinity.h"
#include "lego/ast_library.h"
#include "lego/generator.h"
#include "lego/instantiator.h"
#include "lego/mutation.h"
#include "lego/synthesis.h"
#include "minidb/database.h"
#include "sql/parser.h"

namespace lego::core {
namespace {

using sql::StatementType;

// ---------------------------------------------------------------------------
// Algorithm 2: type-affinity analysis
// ---------------------------------------------------------------------------

TEST(AffinityTest, AnalyzeRecordsAdjacentDistinctPairs) {
  TypeAffinityMap map;
  auto found = map.Analyze({StatementType::kCreateTable,
                            StatementType::kInsert, StatementType::kInsert,
                            StatementType::kSelect});
  // Fig. 1 sequence: CT->INSERT and INSERT->SELECT; the INSERT->INSERT
  // repetition is skipped per Algorithm 2 lines 5-7.
  ASSERT_EQ(found.size(), 2u);
  EXPECT_TRUE(map.Contains(StatementType::kCreateTable,
                           StatementType::kInsert));
  EXPECT_TRUE(map.Contains(StatementType::kInsert, StatementType::kSelect));
  EXPECT_FALSE(map.Contains(StatementType::kInsert, StatementType::kInsert));
  EXPECT_EQ(map.Count(), 2u);
}

TEST(AffinityTest, AnalyzeIsIdempotent) {
  TypeAffinityMap map;
  std::vector<StatementType> seq = {StatementType::kCreateTable,
                                    StatementType::kInsert};
  EXPECT_EQ(map.Analyze(seq).size(), 1u);
  EXPECT_EQ(map.Analyze(seq).size(), 0u);  // nothing new the second time
  EXPECT_EQ(map.Count(), 1u);
}

TEST(AffinityTest, DirectionMatters) {
  TypeAffinityMap map;
  map.Add(StatementType::kInsert, StatementType::kSelect);
  EXPECT_TRUE(map.Contains(StatementType::kInsert, StatementType::kSelect));
  EXPECT_FALSE(map.Contains(StatementType::kSelect, StatementType::kInsert));
}

TEST(AffinityTest, EmptyAndSingletonSequences) {
  TypeAffinityMap map;
  EXPECT_TRUE(map.Analyze({}).empty());
  EXPECT_TRUE(map.Analyze({StatementType::kSelect}).empty());
  EXPECT_EQ(map.Count(), 0u);
}

TEST(AffinityTest, AllReturnsEveryPair) {
  TypeAffinityMap map;
  map.Add(StatementType::kCreateTable, StatementType::kInsert);
  map.Add(StatementType::kCreateTable, StatementType::kSelect);
  map.Add(StatementType::kInsert, StatementType::kSelect);
  EXPECT_EQ(map.All().size(), 3u);
  map.Clear();
  EXPECT_EQ(map.Count(), 0u);
  EXPECT_TRUE(map.All().empty());
}

// ---------------------------------------------------------------------------
// Algorithm 3: progressive sequence synthesis
// ---------------------------------------------------------------------------

TEST(SynthesisTest, PaperExampleLengthTwo) {
  // Paper §III-B: target length 2, current "CREATE TABLE", affinity
  // CREATE TABLE -> {INSERT, SELECT} yields both length-2 sequences.
  TypeAffinityMap map;
  SequenceSynthesizer synth(/*max_len=*/2);
  synth.AddStartType(StatementType::kCreateTable);

  map.Add(StatementType::kCreateTable, StatementType::kInsert);
  auto first = synth.OnNewAffinity(StatementType::kCreateTable,
                                   StatementType::kInsert, map);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0],
            (std::vector<StatementType>{StatementType::kCreateTable,
                                        StatementType::kInsert}));

  map.Add(StatementType::kCreateTable, StatementType::kSelect);
  auto second = synth.OnNewAffinity(StatementType::kCreateTable,
                                    StatementType::kSelect, map);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0],
            (std::vector<StatementType>{StatementType::kCreateTable,
                                        StatementType::kSelect}));
}

TEST(SynthesisTest, OnlyNewSequencesAreGenerated) {
  // Fig. 6: when affinity 4->6 arrives, only sequences containing it are
  // enumerated — everything produced must contain the new pair.
  TypeAffinityMap map;
  SequenceSynthesizer synth(/*max_len=*/4);
  for (auto t : {StatementType::kCreateTable, StatementType::kInsert,
                 StatementType::kSelect, StatementType::kUpdate}) {
    synth.AddStartType(t);
  }
  map.Add(StatementType::kCreateTable, StatementType::kInsert);
  synth.OnNewAffinity(StatementType::kCreateTable, StatementType::kInsert,
                      map);
  map.Add(StatementType::kInsert, StatementType::kSelect);
  synth.OnNewAffinity(StatementType::kInsert, StatementType::kSelect, map);

  map.Add(StatementType::kSelect, StatementType::kUpdate);
  auto fresh = synth.OnNewAffinity(StatementType::kSelect,
                                   StatementType::kUpdate, map);
  ASSERT_FALSE(fresh.empty());
  for (const auto& seq : fresh) {
    bool contains = false;
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      if (seq[i] == StatementType::kSelect &&
          seq[i + 1] == StatementType::kUpdate) {
        contains = true;
      }
    }
    EXPECT_TRUE(contains) << "sequence missing the new affinity";
    EXPECT_LE(seq.size(), 4u);
    EXPECT_GE(seq.size(), 2u);
  }
}

TEST(SynthesisTest, TransitiveExpansionReachesMaxLen) {
  // A -> B then B -> C: synthesizing on B -> C must produce A,B,C.
  TypeAffinityMap map;
  SequenceSynthesizer synth(/*max_len=*/3);
  synth.AddStartType(StatementType::kCreateTable);
  synth.AddStartType(StatementType::kInsert);

  map.Add(StatementType::kCreateTable, StatementType::kInsert);
  synth.OnNewAffinity(StatementType::kCreateTable, StatementType::kInsert,
                      map);
  map.Add(StatementType::kInsert, StatementType::kSelect);
  auto fresh = synth.OnNewAffinity(StatementType::kInsert,
                                   StatementType::kSelect, map);
  std::vector<StatementType> want = {StatementType::kCreateTable,
                                     StatementType::kInsert,
                                     StatementType::kSelect};
  EXPECT_NE(std::find(fresh.begin(), fresh.end(), want), fresh.end());
}

TEST(SynthesisTest, NoDuplicateSequences) {
  TypeAffinityMap map;
  SequenceSynthesizer synth(/*max_len=*/4);
  std::vector<StatementType> types = {
      StatementType::kCreateTable, StatementType::kInsert,
      StatementType::kSelect, StatementType::kUpdate,
      StatementType::kDelete};
  for (auto t : types) synth.AddStartType(t);
  for (auto t1 : types) {
    for (auto t2 : types) {
      if (t1 == t2) continue;
      if (map.Add(t1, t2)) synth.OnNewAffinity(t1, t2, map);
    }
  }
  std::set<std::vector<StatementType>> unique(synth.sequences().begin(),
                                              synth.sequences().end());
  EXPECT_EQ(unique.size(), synth.sequences().size())
      << "synthesizer produced duplicate sequences";
}

TEST(SynthesisTest, EverySequenceRespectsAffinities) {
  TypeAffinityMap map;
  SequenceSynthesizer synth(/*max_len=*/5);
  std::vector<StatementType> types = {
      StatementType::kCreateTable, StatementType::kInsert,
      StatementType::kSelect, StatementType::kUpdate};
  for (auto t : types) synth.AddStartType(t);
  map.Add(StatementType::kCreateTable, StatementType::kInsert);
  synth.OnNewAffinity(StatementType::kCreateTable, StatementType::kInsert,
                      map);
  map.Add(StatementType::kInsert, StatementType::kSelect);
  synth.OnNewAffinity(StatementType::kInsert, StatementType::kSelect, map);
  map.Add(StatementType::kSelect, StatementType::kUpdate);
  synth.OnNewAffinity(StatementType::kSelect, StatementType::kUpdate, map);

  for (const auto& seq : synth.sequences()) {
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      EXPECT_TRUE(map.Contains(seq[i], seq[i + 1]))
          << "adjacent pair not licensed by an affinity";
    }
  }
}

TEST(SynthesisTest, CapBoundsTotalSequences) {
  TypeAffinityMap map;
  SequenceSynthesizer synth(/*max_len=*/8);
  // Dense affinity graph over many types would explode without the cap.
  for (int i = 0; i < 20; ++i) synth.AddStartType(static_cast<StatementType>(i));
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      if (i == j) continue;
      auto t1 = static_cast<StatementType>(i);
      auto t2 = static_cast<StatementType>(j);
      if (map.Add(t1, t2)) synth.OnNewAffinity(t1, t2, map);
      if (synth.TotalSequences() >= SequenceSynthesizer::kMaxSequences) break;
    }
  }
  EXPECT_LE(synth.TotalSequences(), SequenceSynthesizer::kMaxSequences);
}

// ---------------------------------------------------------------------------
// AST library, schema context, generator, instantiator
// ---------------------------------------------------------------------------

TEST(AstLibraryTest, StoresAndSamplesByType) {
  AstLibrary library;
  auto tc = fuzz::TestCase::FromSql(
      "CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT * FROM t;");
  ASSERT_TRUE(tc.ok());
  library.AddTestCase(*tc);
  EXPECT_EQ(library.TotalCount(), 3u);
  EXPECT_EQ(library.CountFor(StatementType::kInsert), 1u);

  Rng rng(1);
  sql::StmtPtr sampled = library.Sample(StatementType::kInsert, &rng);
  ASSERT_NE(sampled, nullptr);
  EXPECT_EQ(sampled->type(), StatementType::kInsert);
  EXPECT_EQ(library.Sample(StatementType::kGrant, &rng), nullptr);
}

TEST(AstLibraryTest, SamplesAreIndependentCopies) {
  AstLibrary library;
  auto tc = fuzz::TestCase::FromSql("INSERT INTO t VALUES (1);");
  ASSERT_TRUE(tc.ok());
  library.AddTestCase(*tc);
  Rng rng(1);
  auto a = library.Sample(StatementType::kInsert, &rng);
  auto b = library.Sample(StatementType::kInsert, &rng);
  EXPECT_NE(a.get(), b.get());
  static_cast<sql::InsertStmt*>(a.get())->table = "changed";
  EXPECT_EQ(static_cast<sql::InsertStmt*>(b.get())->table, "t");
}

TEST(AstLibraryTest, CapTriggersRingReplacement) {
  AstLibrary library(/*cap_per_type=*/4);
  for (int i = 0; i < 10; ++i) {
    auto tc = fuzz::TestCase::FromSql(
        "INSERT INTO t" + std::to_string(i) + " VALUES (1);");
    ASSERT_TRUE(tc.ok());
    library.AddTestCase(*tc);
  }
  EXPECT_EQ(library.CountFor(StatementType::kInsert), 4u);
}

TEST(SchemaContextTest, TracksDdlEffects) {
  SchemaContext ctx;
  auto apply = [&](const std::string& text) {
    auto stmt = sql::Parser::ParseStatement(text);
    ASSERT_TRUE(stmt.ok()) << text;
    ctx.Apply(**stmt);
  };
  apply("CREATE TABLE t (a INT, b TEXT)");
  ASSERT_NE(ctx.Find("t"), nullptr);
  EXPECT_EQ(ctx.Find("t")->columns.size(), 2u);

  apply("ALTER TABLE t ADD COLUMN c REAL");
  EXPECT_EQ(ctx.Find("t")->columns.size(), 3u);
  apply("ALTER TABLE t DROP COLUMN b");
  EXPECT_EQ(ctx.Find("t")->columns.size(), 2u);
  apply("ALTER TABLE t RENAME COLUMN a TO z");
  EXPECT_EQ(ctx.Find("t")->columns[0].name, "z");
  apply("ALTER TABLE t RENAME TO u");
  EXPECT_EQ(ctx.Find("t"), nullptr);
  ASSERT_NE(ctx.Find("u"), nullptr);

  apply("CREATE VIEW v AS SELECT z FROM u");
  EXPECT_TRUE(ctx.Find("v")->is_view);
  apply("DROP VIEW v");
  EXPECT_EQ(ctx.Find("v"), nullptr);
  apply("DROP TABLE u");
  EXPECT_EQ(ctx.Find("u"), nullptr);

  apply("BEGIN");
  EXPECT_TRUE(ctx.in_transaction());
  apply("SAVEPOINT sp");
  EXPECT_EQ(ctx.savepoints().size(), 1u);
  apply("COMMIT");
  EXPECT_FALSE(ctx.in_transaction());
  EXPECT_TRUE(ctx.savepoints().empty());
}

// Property sweep: every statement the generator emits must round-trip
// through the parser (syntactic validity, the paper's baseline bar), on
// every dialect profile.
class GeneratorSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorSweepTest, GeneratesEveryEnabledTypeParseably) {
  Rng rng(77);
  const auto& profile = *minidb::DialectProfile::ByName(GetParam());
  StatementGenerator generator(&profile, &rng);
  SchemaContext ctx;
  // Prepare some schema so table-dependent statements have targets.
  auto seeded = sql::Parser::ParseScript(
      "CREATE TABLE g1 (a INT, b TEXT); CREATE TABLE g2 (x REAL);"
      "CREATE USER u1; CREATE SEQUENCE s1;");
  for (const auto& stmt : *seeded) ctx.Apply(*stmt);

  for (StatementType type : profile.EnabledTypes()) {
    for (int i = 0; i < 20; ++i) {
      sql::StmtPtr stmt = generator.Generate(type, &ctx);
      ASSERT_NE(stmt, nullptr);
      EXPECT_EQ(stmt->type(), type);
      std::string text = sql::ToSql(*stmt);
      auto reparsed = sql::Parser::ParseStatement(text);
      ASSERT_TRUE(reparsed.ok())
          << sql::StatementTypeName(type) << ": " << text << " -> "
          << reparsed.status().ToString();
      EXPECT_EQ((*reparsed)->type(), type) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, GeneratorSweepTest,
                         ::testing::Values("pglite", "mylite", "marialite",
                                           "comdlite"));

TEST(InstantiatorTest, SequencesInstantiateWithMatchingTypes) {
  Rng rng(5);
  AstLibrary library;
  Instantiator instantiator(&minidb::DialectProfile::PgLite(), &library,
                            &rng);
  std::vector<StatementType> seq = {
      StatementType::kCreateTable, StatementType::kCreateIndex,
      StatementType::kInsert, StatementType::kUpdate,
      StatementType::kSelect};
  for (int i = 0; i < 30; ++i) {
    fuzz::TestCase tc = instantiator.Instantiate(seq);
    ASSERT_EQ(tc.TypeSequence(), seq);
  }
}

TEST(InstantiatorTest, SemanticValidityIsHigh) {
  // The dependency analysis + refill step should make most instantiated
  // statements execute cleanly (paper §III-B instantiation/validation).
  Rng rng(6);
  AstLibrary library;
  Instantiator instantiator(&minidb::DialectProfile::PgLite(), &library,
                            &rng);
  minidb::Database db(&minidb::DialectProfile::PgLite());
  std::vector<StatementType> seq = {
      StatementType::kCreateTable, StatementType::kInsert,
      StatementType::kInsert, StatementType::kUpdate,
      StatementType::kDelete, StatementType::kSelect};
  int executed = 0;
  int errors = 0;
  for (int i = 0; i < 60; ++i) {
    fuzz::TestCase tc = instantiator.Instantiate(seq);
    db.ResetAll();
    auto result = db.ExecuteScript(tc.ToSql());
    ASSERT_TRUE(result.ok()) << tc.ToSql();
    executed += result->executed;
    errors += result->errors;
  }
  double validity =
      static_cast<double>(executed) / static_cast<double>(executed + errors);
  EXPECT_GT(validity, 0.85) << "semantic validity too low: " << validity;
}

TEST(InstantiatorTest, FixesDanglingReferences) {
  Rng rng(7);
  AstLibrary library;
  // Donate a skeleton whose table does not exist in the new context.
  auto donor = fuzz::TestCase::FromSql(
      "INSERT INTO elsewhere (q, r) VALUES (1, 2);");
  ASSERT_TRUE(donor.ok());
  for (int i = 0; i < 8; ++i) library.AddTestCase(*donor);

  Instantiator instantiator(&minidb::DialectProfile::PgLite(), &library,
                            &rng);
  std::vector<StatementType> seq = {StatementType::kCreateTable,
                                    StatementType::kInsert};
  minidb::Database db(&minidb::DialectProfile::PgLite());
  int clean = 0;
  for (int i = 0; i < 40; ++i) {
    fuzz::TestCase tc = instantiator.Instantiate(seq);
    db.ResetAll();
    auto result = db.ExecuteScript(tc.ToSql());
    ASSERT_TRUE(result.ok());
    if (result->errors == 0) ++clean;
  }
  EXPECT_GT(clean, 30) << "refill failed to re-target the donor skeleton";
}

// ---------------------------------------------------------------------------
// Algorithm 1: sequence-oriented mutation
// ---------------------------------------------------------------------------

class MutationTest : public ::testing::Test {
 protected:
  MutationTest()
      : rng_(11),
        instantiator_(&minidb::DialectProfile::PgLite(), &library_, &rng_),
        mutator_(&minidb::DialectProfile::PgLite(), &instantiator_, &rng_) {}

  fuzz::TestCase Seed() {
    auto tc = fuzz::TestCase::FromSql(
        "CREATE TABLE t1 (v1 INT, v2 INT);"
        "INSERT INTO t1 VALUES (1, 1);"
        "INSERT INTO t1 VALUES (2, 1);"
        "UPDATE t1 SET v1 = 1;"
        "SELECT * FROM t1 ORDER BY v1;");
    return std::move(*tc);
  }

  Rng rng_;
  AstLibrary library_;
  Instantiator instantiator_;
  SequenceMutator mutator_;
};

TEST_F(MutationTest, ProducesSubstitutionInsertionDeletion) {
  fuzz::TestCase seed = Seed();
  auto mutants = mutator_.SequenceOrientedMutants(seed, 3);
  ASSERT_EQ(mutants.size(), 3u);
  // Substitution keeps length, changes the type at position 3.
  EXPECT_EQ(mutants[0].size(), seed.size());
  EXPECT_NE(mutants[0].TypeSequence()[3], StatementType::kUpdate);
  // Insertion adds one statement after position 3.
  EXPECT_EQ(mutants[1].size(), seed.size() + 1);
  auto ins_types = mutants[1].TypeSequence();
  EXPECT_EQ(ins_types[3], StatementType::kUpdate);
  // Deletion removes position 3.
  EXPECT_EQ(mutants[2].size(), seed.size() - 1);
  EXPECT_EQ(mutants[2].TypeSequence()[3], StatementType::kSelect);
}

TEST_F(MutationTest, MutantsRemainParseable) {
  fuzz::TestCase seed = Seed();
  for (size_t pos = 0; pos < seed.size(); ++pos) {
    for (auto& mutant : mutator_.SequenceOrientedMutants(seed, pos)) {
      auto reparsed = fuzz::TestCase::FromSql(mutant.ToSql());
      EXPECT_TRUE(reparsed.ok()) << mutant.ToSql();
    }
  }
}

TEST_F(MutationTest, OutOfRangePositionYieldsNothing) {
  fuzz::TestCase seed = Seed();
  EXPECT_TRUE(mutator_.SequenceOrientedMutants(seed, 99).empty());
  fuzz::TestCase empty;
  EXPECT_TRUE(mutator_.SequenceOrientedMutants(empty, 0).empty());
}

TEST_F(MutationTest, ConventionalMutationPreservesTypeSequence) {
  fuzz::TestCase seed = Seed();
  auto expected = seed.TypeSequence();
  for (int i = 0; i < 50; ++i) {
    fuzz::TestCase mutant = mutator_.ConventionalMutate(seed);
    EXPECT_EQ(mutant.TypeSequence(), expected) << "iteration " << i;
  }
}

TEST_F(MutationTest, DeletionOfOnlyStatementIsSkipped) {
  auto tc = fuzz::TestCase::FromSql("SELECT 1;");
  ASSERT_TRUE(tc.ok());
  auto mutants = mutator_.SequenceOrientedMutants(*tc, 0);
  // Substitution + insertion, but no deletion of the only statement.
  EXPECT_EQ(mutants.size(), 2u);
}

}  // namespace
}  // namespace lego::core
