// Properties of the ddmin + expression-simplification reducer: the reduced
// repro triggers the identical bug signature, reduction reaches a fixed
// point, and output is byte-identical across independent reruns.

#include <gtest/gtest.h>

#include <string>

#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "minidb/profile.h"
#include "triage/reducer.h"
#include "triage/signature.h"

namespace lego::triage {
namespace {

const minidb::DialectProfile& Maria() {
  return *minidb::DialectProfile::ByName("marialite");
}

fuzz::TestCase Parse(const std::string& sql) {
  auto tc = fuzz::TestCase::FromSql(sql);
  EXPECT_TRUE(tc.ok());
  return std::move(*tc);
}

/// 18 VALUES noise statements followed by the 2-statement MA-STOR-07
/// trigger (CHECKPOINT immediately before VACUUM). VALUES-type noise
/// cannot complete any other marialite trigger sequence here.
std::string PaddedCheckpointVacuum() {
  std::string sql;
  for (int i = 0; i < 18; ++i) {
    sql += "VALUES (" + std::to_string(i) + ");\n";
  }
  sql += "CHECKPOINT;\nVACUUM;\n";
  return sql;
}

TEST(ReducerTest, ShrinksAtLeastFiveFoldPreservingBug) {
  Reducer reducer(Maria(), "");
  fuzz::TestCase tc = Parse(PaddedCheckpointVacuum());
  ASSERT_EQ(tc.size(), 20u);

  std::optional<ReductionResult> red = reducer.ReduceCrash(tc);
  ASSERT_TRUE(red.has_value());
  EXPECT_EQ(red->crash.bug_id, "MA-STOR-07");
  EXPECT_EQ(red->original_statements, 20);
  EXPECT_EQ(red->reduced_statements, 2);
  EXPECT_GE(red->original_statements, 5 * red->reduced_statements);

  // The minimized case raises the identical synthetic stack hash.
  fuzz::ExecutionHarness harness(Maria());
  fuzz::ExecResult replay = harness.Run(red->reduced);
  ASSERT_TRUE(replay.crashed);
  EXPECT_EQ(replay.crash.stack_hash, red->crash.stack_hash);
  EXPECT_EQ(replay.crash.bug_id, "MA-STOR-07");
  EXPECT_EQ(SignatureOf(replay.crash, red->reduced).Key(),
            "MA-STOR-07|CHECKPOINT>VACUUM");
}

TEST(ReducerTest, ReductionReachesFixedPoint) {
  Reducer first(Maria(), "");
  std::optional<ReductionResult> red =
      first.ReduceCrash(Parse(PaddedCheckpointVacuum()));
  ASSERT_TRUE(red.has_value());

  Reducer second(Maria(), "");
  std::optional<ReductionResult> again = second.ReduceCrash(red->reduced);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->reduced.ToSql(), red->reduced.ToSql());
  EXPECT_EQ(again->reduced_statements, red->reduced_statements);
  EXPECT_EQ(again->crash.stack_hash, red->crash.stack_hash);
}

TEST(ReducerTest, ByteIdenticalAcrossReruns) {
  Reducer a(Maria(), "");
  Reducer b(Maria(), "");
  std::optional<ReductionResult> ra =
      a.ReduceCrash(Parse(PaddedCheckpointVacuum()));
  std::optional<ReductionResult> rb =
      b.ReduceCrash(Parse(PaddedCheckpointVacuum()));
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(ra->reduced.ToSql(), rb->reduced.ToSql());
  EXPECT_EQ(ra->replays, rb->replays);
}

TEST(ReducerTest, ExpressionPassSimplifiesSubtrees) {
  // MA-PARSE-04 triggers on EXPLAIN immediately before a successful INSERT;
  // neither statement can be dropped (INSERT also needs the CREATE TABLE to
  // succeed), so only the expression pass can shrink this case.
  Reducer reducer(Maria(), "");
  fuzz::TestCase tc = Parse(
      "CREATE TABLE t0 (a INT);\n"
      "EXPLAIN SELECT (1 + 12345) * (2 + 54321);\n"
      "INSERT INTO t0 VALUES (7 + 8);\n");
  ASSERT_EQ(tc.size(), 3u);

  std::optional<ReductionResult> red = reducer.ReduceCrash(tc);
  ASSERT_TRUE(red.has_value());
  EXPECT_EQ(red->crash.bug_id, "MA-PARSE-04");
  EXPECT_EQ(red->reduced_statements, 3);
  const std::string sql = red->reduced.ToSql();
  EXPECT_EQ(sql.find("12345"), std::string::npos) << sql;
  EXPECT_EQ(sql.find("54321"), std::string::npos) << sql;
}

TEST(ReducerTest, NonCrashingCaseIsRejected) {
  Reducer reducer(Maria(), "");
  std::optional<ReductionResult> red =
      reducer.ReduceCrash(Parse("VALUES (1);\nVALUES (2);\n"));
  EXPECT_FALSE(red.has_value());
}

}  // namespace
}  // namespace lego::triage
