#include "minidb/eval.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace lego::minidb {
namespace {

Value Eval(const std::string& expr_text, const EvalContext& ctx = {}) {
  auto expr = sql::Parser::ParseExpression(expr_text);
  EXPECT_TRUE(expr.ok()) << expr_text;
  auto v = Evaluator::Eval(**expr, ctx);
  EXPECT_TRUE(v.ok()) << expr_text << ": " << v.status().ToString();
  return v.ok() ? *v : Value::Null();
}

Status EvalErr(const std::string& expr_text) {
  auto expr = sql::Parser::ParseExpression(expr_text);
  EXPECT_TRUE(expr.ok()) << expr_text;
  auto v = Evaluator::Eval(**expr, {});
  EXPECT_FALSE(v.ok()) << expr_text;
  return v.ok() ? Status::OK() : v.status();
}

TEST(EvalTest, IntegerArithmetic) {
  EXPECT_EQ(Eval("1 + 2").AsInt(), 3);
  EXPECT_EQ(Eval("7 - 10").AsInt(), -3);
  EXPECT_EQ(Eval("6 * 7").AsInt(), 42);
  EXPECT_EQ(Eval("7 / 2").AsInt(), 3);
  EXPECT_EQ(Eval("7 % 3").AsInt(), 1);
  EXPECT_EQ(Eval("1 + 2 * 3").AsInt(), 7);  // precedence
}

TEST(EvalTest, IntegerOverflowWrapsWithoutUb) {
  EXPECT_EQ(Eval("9223372036854775807 + 1").AsInt(), INT64_MIN);
  EXPECT_EQ(Eval("-9223372036854775807 - 2").AsInt(), INT64_MAX);
}

TEST(EvalTest, RealArithmeticAndMixing) {
  EXPECT_DOUBLE_EQ(Eval("1.5 + 2.25").AsReal(), 3.75);
  EXPECT_DOUBLE_EQ(Eval("7 / 2.0").AsReal(), 3.5);
  EXPECT_EQ(Eval("1.5 + 2.25").type(), ValueType::kReal);
}

TEST(EvalTest, DivisionByZeroErrors) {
  EXPECT_EQ(EvalErr("1 / 0").code(), StatusCode::kExecutionError);
  EXPECT_EQ(EvalErr("1.0 / 0.0").code(), StatusCode::kExecutionError);
  EXPECT_EQ(EvalErr("5 % 0").code(), StatusCode::kExecutionError);
}

TEST(EvalTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(Eval("NULL + 1").is_null());
  EXPECT_TRUE(Eval("NULL / 0").is_null());  // NULL wins before the div check
  EXPECT_TRUE(Eval("1 = NULL").is_null());
  EXPECT_TRUE(Eval("NULL || 'x'").is_null());
}

TEST(EvalTest, ThreeValuedLogic) {
  // AND.
  EXPECT_FALSE(Eval("FALSE AND NULL").AsBool());
  EXPECT_FALSE(Eval("FALSE AND NULL").is_null());  // false, not unknown
  EXPECT_TRUE(Eval("NULL AND TRUE").is_null());
  EXPECT_TRUE(Eval("TRUE AND TRUE").AsBool());
  // OR.
  EXPECT_TRUE(Eval("TRUE OR NULL").AsBool());
  EXPECT_TRUE(Eval("NULL OR FALSE").is_null());
  // NOT.
  EXPECT_TRUE(Eval("NOT NULL").is_null());
  EXPECT_FALSE(Eval("NOT TRUE").AsBool());
}

TEST(EvalTest, Comparisons) {
  EXPECT_TRUE(Eval("2 < 3").AsBool());
  EXPECT_TRUE(Eval("2 <= 2").AsBool());
  EXPECT_TRUE(Eval("3 > 2").AsBool());
  EXPECT_TRUE(Eval("2 <> 3").AsBool());
  EXPECT_TRUE(Eval("'abc' = 'abc'").AsBool());
  EXPECT_TRUE(Eval("'ab' < 'ac'").AsBool());
  // MySQL-flavored numeric coercion of text.
  EXPECT_TRUE(Eval("'2' = 2").AsBool());
  EXPECT_TRUE(Eval("'10' > 9").AsBool());
}

TEST(EvalTest, BetweenInCaseLike) {
  EXPECT_TRUE(Eval("5 BETWEEN 1 AND 10").AsBool());
  EXPECT_FALSE(Eval("11 BETWEEN 1 AND 10").AsBool());
  EXPECT_TRUE(Eval("11 NOT BETWEEN 1 AND 10").AsBool());
  EXPECT_TRUE(Eval("2 IN (1, 2, 3)").AsBool());
  EXPECT_FALSE(Eval("9 IN (1, 2, 3)").AsBool());
  EXPECT_TRUE(Eval("9 IN (1, NULL)").is_null());  // unknown, not false
  EXPECT_TRUE(Eval("CASE WHEN 1 = 1 THEN 'y' ELSE 'n' END").text_value() ==
              "y");
  EXPECT_TRUE(Eval("CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END")
                  .text_value() == "b");
  EXPECT_TRUE(Eval("CASE 9 WHEN 1 THEN 'a' END").is_null());
}

TEST(EvalTest, LikePatterns) {
  EXPECT_TRUE(Evaluator::LikeMatch("hello", "hello"));
  EXPECT_TRUE(Evaluator::LikeMatch("hello", "h%"));
  EXPECT_TRUE(Evaluator::LikeMatch("hello", "%llo"));
  EXPECT_TRUE(Evaluator::LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(Evaluator::LikeMatch("hello", "%"));
  EXPECT_TRUE(Evaluator::LikeMatch("", "%"));
  EXPECT_FALSE(Evaluator::LikeMatch("", "_"));
  EXPECT_FALSE(Evaluator::LikeMatch("hello", "h_llx"));
  EXPECT_TRUE(Evaluator::LikeMatch("abcbc", "a%bc"));  // backtracking
  EXPECT_FALSE(Evaluator::LikeMatch("abc", "abcd"));
  EXPECT_TRUE(Eval("'foo' LIKE 'f%'").AsBool());
  EXPECT_TRUE(Eval("'foo' NOT LIKE 'g%'").AsBool());
}

TEST(EvalTest, IsNullOperators) {
  EXPECT_TRUE(Eval("NULL IS NULL").AsBool());
  EXPECT_FALSE(Eval("1 IS NULL").AsBool());
  EXPECT_TRUE(Eval("1 IS NOT NULL").AsBool());
}

TEST(EvalTest, IsTrueDesugaring) {
  EXPECT_TRUE(Eval("(1 = 1) IS TRUE").AsBool());
  EXPECT_TRUE(Eval("(1 = 2) IS FALSE").AsBool());
  EXPECT_FALSE(Eval("(1 = 2) IS NOT FALSE").AsBool());
}

TEST(EvalTest, ScalarFunctions) {
  EXPECT_EQ(Eval("ABS(-3)").AsInt(), 3);
  EXPECT_EQ(Eval("LENGTH('abcd')").AsInt(), 4);
  EXPECT_EQ(Eval("UPPER('aB')").text_value(), "AB");
  EXPECT_EQ(Eval("LOWER('Ab')").text_value(), "ab");
  EXPECT_EQ(Eval("SUBSTR('hello', 2)").text_value(), "ello");
  EXPECT_EQ(Eval("SUBSTR('hello', 2, 2)").text_value(), "el");
  EXPECT_EQ(Eval("SUBSTR('hello', 99)").text_value(), "");
  EXPECT_EQ(Eval("COALESCE(NULL, NULL, 3)").AsInt(), 3);
  EXPECT_TRUE(Eval("COALESCE(NULL, NULL)").is_null());
  EXPECT_TRUE(Eval("NULLIF(2, 2)").is_null());
  EXPECT_EQ(Eval("NULLIF(2, 3)").AsInt(), 2);
  EXPECT_EQ(Eval("IFNULL(NULL, 9)").AsInt(), 9);
  EXPECT_EQ(Eval("TYPEOF(1)").text_value(), "INT");
  EXPECT_EQ(Eval("TYPEOF(NULL)").text_value(), "NULL");
  EXPECT_DOUBLE_EQ(Eval("ROUND(2.567, 2)").AsReal(), 2.57);
  EXPECT_EQ(Eval("SIGN(-9)").AsInt(), -1);
  EXPECT_EQ(Eval("MOD(10, 3)").AsInt(), 1);
  EXPECT_EQ(Eval("TRIM('  x ')").text_value(), "x");
  EXPECT_EQ(Eval("REPLACE('aXbXc', 'X', '-')").text_value(), "a-b-c");
  EXPECT_EQ(Eval("GREATEST(1, 9, 4)").AsInt(), 9);
  EXPECT_EQ(Eval("LEAST(5, 2, 8)").AsInt(), 2);
  EXPECT_TRUE(Eval("GREATEST(1, NULL)").is_null());
}

TEST(EvalTest, FunctionArityErrors) {
  EXPECT_EQ(EvalErr("ABS(1, 2)").code(), StatusCode::kSemanticError);
  EXPECT_EQ(EvalErr("NOSUCHFN(1)").code(), StatusCode::kSemanticError);
}

TEST(EvalTest, CastExpressions) {
  EXPECT_EQ(Eval("CAST(3.9 AS INT)").AsInt(), 3);
  EXPECT_EQ(Eval("CAST(7 AS TEXT)").text_value(), "7");
  EXPECT_TRUE(Eval("CAST(NULL AS INT)").is_null());
  EXPECT_TRUE(Eval("CAST(1 AS BOOL)").bool_value());
}

TEST(EvalTest, ColumnResolution) {
  Relation rel;
  rel.columns = {{"t", "a"}, {"t", "b"}};
  Row row = {Value::Int(10), Value::Text("x")};
  EvalContext ctx;
  ctx.rel = &rel;
  ctx.row = &row;
  EXPECT_EQ(Eval("a", ctx).AsInt(), 10);
  EXPECT_EQ(Eval("t.b", ctx).text_value(), "x");
  auto missing = sql::Parser::ParseExpression("nope");
  EXPECT_EQ(Evaluator::Eval(**missing, ctx).status().code(),
            StatusCode::kSemanticError);
  auto wrong_qualifier = sql::Parser::ParseExpression("u.a");
  EXPECT_EQ(Evaluator::Eval(**wrong_qualifier, ctx).status().code(),
            StatusCode::kSemanticError);
}

TEST(EvalTest, AmbiguousColumnIsError) {
  Relation rel;
  rel.columns = {{"t", "k"}, {"u", "k"}};
  Row row = {Value::Int(1), Value::Int(2)};
  EvalContext ctx;
  ctx.rel = &rel;
  ctx.row = &row;
  auto expr = sql::Parser::ParseExpression("k");
  EXPECT_EQ(Evaluator::Eval(**expr, ctx).status().code(),
            StatusCode::kSemanticError);
  // Qualification resolves the ambiguity.
  EXPECT_EQ(Eval("u.k", ctx).AsInt(), 2);
}

TEST(EvalTest, OuterContextResolvesCorrelatedColumns) {
  Relation outer_rel;
  outer_rel.columns = {{"o", "x"}};
  Row outer_row = {Value::Int(7)};
  EvalContext outer;
  outer.rel = &outer_rel;
  outer.row = &outer_row;

  Relation inner_rel;
  inner_rel.columns = {{"i", "y"}};
  Row inner_row = {Value::Int(1)};
  EvalContext inner;
  inner.rel = &inner_rel;
  inner.row = &inner_row;
  inner.outer = &outer;

  EXPECT_EQ(Eval("y + x", inner).AsInt(), 8);
}

TEST(EvalTest, NodeOverridesWin) {
  auto expr = sql::Parser::ParseExpression("COUNT(*)");
  std::map<const sql::Expr*, Value> overrides;
  overrides[expr->get()] = Value::Int(42);
  EvalContext ctx;
  ctx.node_overrides = &overrides;
  auto v = Evaluator::Eval(**expr, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 42);
  // Without the override an aggregate outside aggregation is an error.
  EXPECT_EQ(Evaluator::Eval(**expr, {}).status().code(),
            StatusCode::kSemanticError);
}

TEST(EvalTest, PredicateTriboolMapping) {
  auto check = [](const std::string& text, Tribool want) {
    auto expr = sql::Parser::ParseExpression(text);
    auto t = Evaluator::EvalPredicate(**expr, {});
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(*t, want) << text;
  };
  check("1 = 1", Tribool::kTrue);
  check("1 = 2", Tribool::kFalse);
  check("NULL = 1", Tribool::kUnknown);
  check("0", Tribool::kFalse);
  check("7", Tribool::kTrue);
}

}  // namespace
}  // namespace lego::minidb
