#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "minidb/btree.h"
#include "minidb/heap_table.h"
#include "util/random.h"

namespace lego::minidb {
namespace {

TEST(HeapTableTest, InsertGetDelete) {
  HeapTable heap;
  RowId id = heap.Insert({Value::Int(1), Value::Text("a")});
  ASSERT_NE(heap.Get(id), nullptr);
  EXPECT_EQ((*heap.Get(id))[0].AsInt(), 1);
  EXPECT_EQ(heap.LiveRowCount(), 1u);
  EXPECT_TRUE(heap.Delete(id));
  EXPECT_EQ(heap.Get(id), nullptr);
  EXPECT_FALSE(heap.Delete(id));  // double delete
  EXPECT_EQ(heap.LiveRowCount(), 0u);
}

TEST(HeapTableTest, PagesFillAtCapacity) {
  HeapTable heap;
  for (uint32_t i = 0; i < HeapTable::kRowsPerPage + 1; ++i) {
    heap.Insert({Value::Int(i)});
  }
  EXPECT_EQ(heap.PageCount(), 2u);
  EXPECT_EQ(heap.LiveRowCount(), HeapTable::kRowsPerPage + 1);
}

TEST(HeapTableTest, UpdateInPlace) {
  HeapTable heap;
  RowId id = heap.Insert({Value::Int(1)});
  EXPECT_TRUE(heap.Update(id, {Value::Int(2)}));
  EXPECT_EQ((*heap.Get(id))[0].AsInt(), 2);
  heap.Delete(id);
  EXPECT_FALSE(heap.Update(id, {Value::Int(3)}));
}

TEST(HeapTableTest, ScanVisitsLiveRowsInOrder) {
  HeapTable heap;
  for (int i = 0; i < 10; ++i) heap.Insert({Value::Int(i)});
  heap.Delete(RowId{0, 3});
  std::vector<int64_t> seen;
  heap.Scan([&](RowId, const Row& row) {
    seen.push_back(row[0].AsInt());
    return true;
  });
  EXPECT_EQ(seen.size(), 9u);
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 3), 0);
}

TEST(HeapTableTest, ScanEarlyStop) {
  HeapTable heap;
  for (int i = 0; i < 10; ++i) heap.Insert({Value::Int(i)});
  int visited = 0;
  heap.Scan([&](RowId, const Row&) { return ++visited < 3; });
  EXPECT_EQ(visited, 3);
}

TEST(HeapTableTest, VacuumCompactsAndDropsTombstones) {
  HeapTable heap;
  for (uint32_t i = 0; i < 200; ++i) heap.Insert({Value::Int(i)});
  for (uint32_t i = 0; i < 200; i += 2) {
    heap.Delete(RowId{i / HeapTable::kRowsPerPage,
                      i % HeapTable::kRowsPerPage});
  }
  EXPECT_GT(heap.DeadFraction(), 0.0);
  size_t live_before = heap.LiveRowCount();
  heap.Vacuum();
  EXPECT_EQ(heap.LiveRowCount(), live_before);
  EXPECT_EQ(heap.DeadFraction(), 0.0);
  // All survivors are odd.
  heap.Scan([&](RowId, const Row& row) {
    EXPECT_EQ(row[0].AsInt() % 2, 1);
    return true;
  });
}

TEST(BTreeTest, InsertFindErase) {
  BTreeIndex tree;
  tree.Insert(Value::Int(1), RowId{0, 0});
  tree.Insert(Value::Int(1), RowId{0, 1});  // duplicate key
  tree.Insert(Value::Int(2), RowId{0, 2});
  EXPECT_EQ(tree.Find(Value::Int(1)).size(), 2u);
  EXPECT_EQ(tree.Find(Value::Int(3)).size(), 0u);
  EXPECT_EQ(tree.EntryCount(), 3u);
  EXPECT_EQ(tree.KeyCount(), 2u);
  EXPECT_TRUE(tree.Erase(Value::Int(1), RowId{0, 0}));
  EXPECT_EQ(tree.Find(Value::Int(1)).size(), 1u);
  EXPECT_FALSE(tree.Erase(Value::Int(1), RowId{0, 0}));  // already gone
  EXPECT_FALSE(tree.Erase(Value::Int(9), RowId{0, 0}));  // absent key
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTreeIndex tree;
  for (int i = 0; i < 2000; ++i) {
    tree.Insert(Value::Int(i), RowId{0, static_cast<uint32_t>(i)});
  }
  EXPECT_GT(tree.Height(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(tree.Find(Value::Int(i)).size(), 1u) << i;
  }
}

TEST(BTreeTest, RangeQueries) {
  BTreeIndex tree;
  for (int i = 0; i < 100; ++i) {
    tree.Insert(Value::Int(i), RowId{0, static_cast<uint32_t>(i)});
  }
  Value lo = Value::Int(10);
  Value hi = Value::Int(20);
  EXPECT_EQ(tree.Range(&lo, true, &hi, true).size(), 11u);
  EXPECT_EQ(tree.Range(&lo, false, &hi, false).size(), 9u);
  EXPECT_EQ(tree.Range(nullptr, true, &hi, true).size(), 21u);
  EXPECT_EQ(tree.Range(&lo, true, nullptr, true).size(), 90u);
  EXPECT_EQ(tree.Range(nullptr, true, nullptr, true).size(), 100u);
}

TEST(BTreeTest, RangeReturnsKeysInOrder) {
  BTreeIndex tree;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(Value::Int(static_cast<int64_t>(rng.NextBelow(10000))),
                RowId{0, static_cast<uint32_t>(i)});
  }
  auto rids = tree.Range(nullptr, true, nullptr, true);
  EXPECT_EQ(rids.size(), 500u);
}

TEST(BTreeTest, MixedTypeKeysFollowTotalOrder) {
  BTreeIndex tree;
  tree.Insert(Value::Null(), RowId{0, 0});
  tree.Insert(Value::Bool(true), RowId{0, 1});
  tree.Insert(Value::Int(5), RowId{0, 2});
  tree.Insert(Value::Text("x"), RowId{0, 3});
  EXPECT_TRUE(tree.CheckInvariants());
  Value lo = Value::Int(0);
  // Everything >= Int(0): the int and the text (text sorts above numeric).
  EXPECT_EQ(tree.Range(&lo, true, nullptr, true).size(), 2u);
}

TEST(BTreeTest, CopyIsIndependent) {
  BTreeIndex tree;
  for (int i = 0; i < 300; ++i) {
    tree.Insert(Value::Int(i), RowId{0, static_cast<uint32_t>(i)});
  }
  BTreeIndex copy = tree;
  EXPECT_TRUE(copy.CheckInvariants());
  EXPECT_EQ(copy.EntryCount(), tree.EntryCount());
  copy.Erase(Value::Int(5), RowId{0, 5});
  EXPECT_EQ(tree.Find(Value::Int(5)).size(), 1u);
  EXPECT_EQ(copy.Find(Value::Int(5)).size(), 0u);
  // Leaf chain of the copy must be intact for range scans.
  EXPECT_EQ(copy.Range(nullptr, true, nullptr, true).size(), 299u);
}

// Property sweep: a random operation sequence must agree with a reference
// std::multimap at every checkpoint, across several seeds.
class BTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreePropertyTest, AgreesWithReferenceModel) {
  Rng rng(GetParam());
  BTreeIndex tree;
  std::multimap<int64_t, uint32_t> model;

  for (int step = 0; step < 3000; ++step) {
    int64_t key = static_cast<int64_t>(rng.NextBelow(200));
    if (rng.NextBool(0.6)) {
      uint32_t rid = static_cast<uint32_t>(step);
      tree.Insert(Value::Int(key), RowId{0, rid});
      model.emplace(key, rid);
    } else {
      auto it = model.find(key);
      if (it != model.end()) {
        EXPECT_TRUE(tree.Erase(Value::Int(key), RowId{0, it->second}));
        model.erase(it);
      } else {
        EXPECT_TRUE(tree.Find(Value::Int(key)).empty());
      }
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "step " << step;
      ASSERT_EQ(tree.EntryCount(), model.size());
    }
  }
  ASSERT_TRUE(tree.CheckInvariants());
  // Final: every key's posting size matches the model.
  for (int64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(tree.Find(Value::Int(key)).size(), model.count(key)) << key;
  }
  // Range over the whole tree matches the model size.
  EXPECT_EQ(tree.Range(nullptr, true, nullptr, true).size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 99u));

// Property sweep for the heap: random insert/delete/update vs a model map.
class HeapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeapPropertyTest, AgreesWithReferenceModel) {
  Rng rng(GetParam());
  HeapTable heap;
  std::map<std::pair<uint32_t, uint32_t>, int64_t> model;

  for (int step = 0; step < 2000; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.5 || model.empty()) {
      RowId id = heap.Insert({Value::Int(step)});
      model[{id.page, id.slot}] = step;
    } else if (dice < 0.8) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(model.size())));
      EXPECT_TRUE(heap.Delete(RowId{it->first.first, it->first.second}));
      model.erase(it);
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(model.size())));
      EXPECT_TRUE(
          heap.Update(RowId{it->first.first, it->first.second},
                      {Value::Int(-step)}));
      it->second = -step;
    }
  }
  EXPECT_EQ(heap.LiveRowCount(), model.size());
  size_t scanned = 0;
  heap.Scan([&](RowId id, const Row& row) {
    auto it = model.find({id.page, id.slot});
    EXPECT_NE(it, model.end());
    if (it != model.end()) EXPECT_EQ(row[0].AsInt(), it->second);
    ++scanned;
    return true;
  });
  EXPECT_EQ(scanned, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapPropertyTest,
                         ::testing::Values(7u, 8u, 9u));

}  // namespace
}  // namespace lego::minidb
