// Property test for printer/parser agreement: any statement a generator can
// emit must survive Parse(Print(Parse(sql))) with a stable type and a
// fixed-point printed form. Fuzzers mask this kind of drift — a statement
// that re-parses differently still executes, it just mutates into something
// the corpus never intended — so the property is checked head-on here, over
// the real generator distributions (LEGO's instantiator plus the three
// baseline generators), 500 statements each.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/sqlancer_like.h"
#include "baselines/sqlsmith_like.h"
#include "baselines/squirrel_like.h"
#include "fuzz/harness.h"
#include "lego/lego_fuzzer.h"
#include "minidb/profile.h"
#include "sql/parser.h"

namespace lego {
namespace {

constexpr int kStatementsPerGenerator = 500;
constexpr int kMaxExecutions = 4000;  // safety valve, never hit in practice

void CheckRoundtrip(const sql::Statement& stmt, const std::string& tag) {
  const std::string printed = sql::ToSql(stmt);
  auto first = sql::Parser::ParseStatement(printed);
  ASSERT_TRUE(first.ok()) << tag << ": generated statement does not re-parse"
                          << "\n  sql: " << printed
                          << "\n  err: " << first.status().ToString();
  EXPECT_EQ((*first)->type(), stmt.type())
      << tag << ": type changed across parse\n  sql: " << printed;

  const std::string reprinted = sql::ToSql(**first);
  auto second = sql::Parser::ParseStatement(reprinted);
  ASSERT_TRUE(second.ok()) << tag << ": reprinted statement does not parse"
                           << "\n  sql: " << reprinted
                           << "\n  err: " << second.status().ToString();
  EXPECT_EQ((*second)->type(), (*first)->type())
      << tag << ": type drifted on second parse\n  sql: " << reprinted;
  EXPECT_EQ(sql::ToSql(**second), reprinted)
      << tag << ": printing is not a fixed point\n  sql: " << printed;
}

/// Drives `fuzzer` through a real execute/feedback loop (so corpus-based
/// generators produce their genuine distribution, not just cold starts) and
/// round-trips every statement of every generated test case.
void RunGeneratorRoundtrip(fuzz::Fuzzer* fuzzer, const std::string& tag) {
  fuzz::ExecutionHarness harness(minidb::DialectProfile::PgLite());
  fuzzer->Prepare(&harness);
  int checked = 0;
  for (int i = 0; i < kMaxExecutions && checked < kStatementsPerGenerator;
       ++i) {
    fuzz::TestCase tc = fuzzer->Next();
    for (const sql::StmtPtr& stmt : tc.statements()) {
      if (checked >= kStatementsPerGenerator) break;
      CheckRoundtrip(*stmt, tag);
      if (::testing::Test::HasFatalFailure()) return;
      ++checked;
    }
    fuzz::ExecResult exec = harness.Run(tc);
    fuzzer->OnResult(tc, exec);
  }
  EXPECT_EQ(checked, kStatementsPerGenerator)
      << tag << ": generator starved before producing enough statements";
}

TEST(ParserRoundtripTest, LegoInstantiatorStatements) {
  core::LegoOptions options;
  options.rng_seed = 101;
  core::LegoFuzzer fuzzer(minidb::DialectProfile::PgLite(), options);
  RunGeneratorRoundtrip(&fuzzer, "lego");
}

TEST(ParserRoundtripTest, SqlancerLikeStatements) {
  baselines::SqlancerLikeFuzzer fuzzer(minidb::DialectProfile::PgLite(), 102);
  RunGeneratorRoundtrip(&fuzzer, "sqlancer");
}

TEST(ParserRoundtripTest, SqlsmithLikeStatements) {
  baselines::SqlsmithLikeFuzzer fuzzer(minidb::DialectProfile::PgLite(), 103);
  RunGeneratorRoundtrip(&fuzzer, "sqlsmith");
}

TEST(ParserRoundtripTest, SquirrelLikeStatements) {
  baselines::SquirrelLikeFuzzer fuzzer(minidb::DialectProfile::PgLite(), 104);
  RunGeneratorRoundtrip(&fuzzer, "squirrel");
}

}  // namespace
}  // namespace lego
