#include "coverage/coverage.h"

#include <gtest/gtest.h>

namespace lego::cov {
namespace {

TEST(CoverageMapTest, RecordsEdges) {
  CoverageMap map;
  EXPECT_EQ(map.CountNonZero(), 0u);
  map.Hit(0x1234);
  EXPECT_EQ(map.CountNonZero(), 1u);
  map.Hit(0x5678);  // edge (0x1234>>1) ^ 0x5678
  EXPECT_EQ(map.CountNonZero(), 2u);
}

TEST(CoverageMapTest, EdgeIdentityDependsOnPredecessor) {
  CoverageMap a;
  a.Hit(1);
  a.Hit(2);
  CoverageMap b;
  b.Hit(3);
  b.Hit(2);
  a.ClassifyCounts();
  b.ClassifyCounts();
  // Same probe (2) reached from different predecessors yields different
  // edges, so the union covers more than either alone.
  GlobalCoverage global;
  global.MergeDetectNew(a);
  EXPECT_TRUE(global.MergeDetectNew(b));
}

TEST(CoverageMapTest, ResetClears) {
  CoverageMap map;
  map.Hit(1);
  map.Hit(2);
  map.Reset();
  EXPECT_EQ(map.CountNonZero(), 0u);
}

TEST(CoverageMapTest, BucketBoundaries) {
  EXPECT_EQ(CoverageMap::Bucket(0), 0);
  EXPECT_EQ(CoverageMap::Bucket(1), 1);
  EXPECT_EQ(CoverageMap::Bucket(2), 2);
  EXPECT_EQ(CoverageMap::Bucket(3), 4);
  EXPECT_EQ(CoverageMap::Bucket(4), 8);
  EXPECT_EQ(CoverageMap::Bucket(7), 8);
  EXPECT_EQ(CoverageMap::Bucket(8), 16);
  EXPECT_EQ(CoverageMap::Bucket(15), 16);
  EXPECT_EQ(CoverageMap::Bucket(16), 32);
  EXPECT_EQ(CoverageMap::Bucket(31), 32);
  EXPECT_EQ(CoverageMap::Bucket(32), 64);
  EXPECT_EQ(CoverageMap::Bucket(127), 64);
  EXPECT_EQ(CoverageMap::Bucket(128), 128);
  EXPECT_EQ(CoverageMap::Bucket(255), 128);
}

TEST(CoverageMapTest, CounterSaturatesWithoutWrapping) {
  CoverageMap map;
  for (int i = 0; i < 1000; ++i) {
    map.Hit(7);
    map.Hit(7);  // same edge after the first alternation settles
  }
  EXPECT_GT(map.CountNonZero(), 0u);
  map.ClassifyCounts();
  EXPECT_GT(map.CountNonZero(), 0u);  // classification keeps nonzero
}

TEST(GlobalCoverageTest, DetectsNewEdgesThenPlateaus) {
  GlobalCoverage global;
  CoverageMap run;
  run.Hit(1);
  run.Hit(2);
  run.ClassifyCounts();
  EXPECT_TRUE(global.MergeDetectNew(run));
  size_t edges = global.CoveredEdges();
  EXPECT_GT(edges, 0u);
  EXPECT_FALSE(global.MergeDetectNew(run));
  EXPECT_EQ(global.CoveredEdges(), edges);
}

TEST(GlobalCoverageTest, NewHitCountBucketIsNewCoverage) {
  GlobalCoverage global;
  // Repeated hits of probe 1 from prev=0 land on one edge (1 >> 1 == 0, so
  // the chain state re-enters the same edge each time).
  CoverageMap once;
  once.Hit(1);
  once.ClassifyCounts();
  EXPECT_TRUE(global.MergeDetectNew(once));

  // Same single edge hit five times -> a different hit-count bucket -> new
  // coverage, while the distinct-edge count stays the same (AFL semantics).
  size_t edges = global.CoveredEdges();
  CoverageMap many;
  for (int i = 0; i < 5; ++i) many.Hit(1);
  many.ClassifyCounts();
  EXPECT_TRUE(global.MergeDetectNew(many));
  EXPECT_EQ(global.CoveredEdges(), edges);
}

TEST(CoverageRuntimeTest, ScopeRoutesProbes) {
  CoverageMap map;
  {
    CoverageScope scope(&map);
    LEGO_COV();
    LEGO_COV();
    LEGO_COV_KEYED(3);
  }
  EXPECT_GT(map.CountNonZero(), 0u);
  size_t before = map.CountNonZero();
  LEGO_COV();  // outside any scope: ignored
  EXPECT_EQ(map.CountNonZero(), before);
}

TEST(CoverageRuntimeTest, ScopesNest) {
  CoverageMap outer;
  CoverageMap inner;
  CoverageScope outer_scope(&outer);
  LEGO_COV();
  {
    CoverageScope inner_scope(&inner);
    LEGO_COV();
  }
  LEGO_COV();
  EXPECT_GT(outer.CountNonZero(), 0u);
  EXPECT_GT(inner.CountNonZero(), 0u);
}

TEST(CoverageRuntimeTest, KeyedProbesDistinguishValues) {
  CoverageMap a;
  {
    CoverageScope scope(&a);
    LEGO_COV_KEYED(1);
  }
  CoverageMap b;
  {
    CoverageScope scope(&b);
    LEGO_COV_KEYED(2);
  }
  a.ClassifyCounts();
  b.ClassifyCounts();
  GlobalCoverage global;
  global.MergeDetectNew(a);
  EXPECT_TRUE(global.MergeDetectNew(b));
}

}  // namespace
}  // namespace lego::cov
