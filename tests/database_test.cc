#include "minidb/database.h"

#include <gtest/gtest.h>

#include "faults/bug_engine.h"
#include "sql/parser.h"

namespace lego::minidb {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  Database::ScriptResult Script(const std::string& text) {
    auto result = db_.ExecuteScript(text);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : Database::ScriptResult{};
  }

  int64_t Count(const std::string& table) {
    auto stmt =
        sql::Parser::ParseStatement("SELECT COUNT(*) FROM " + table);
    auto result = db_.Execute(**stmt);
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->rows[0][0].AsInt() : -1;
  }

  Database db_;
};

TEST_F(DatabaseTest, ScriptSyntaxErrorReturnsDirectly) {
  auto result = db_.ExecuteScript("THIS IS NOT SQL");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSyntaxError);
}

TEST_F(DatabaseTest, NestedSavepointsReleaseAndRollback) {
  Script("CREATE TABLE t (x INT); BEGIN;");
  Script("INSERT INTO t VALUES (1); SAVEPOINT a;");
  Script("INSERT INTO t VALUES (2); SAVEPOINT b;");
  Script("INSERT INTO t VALUES (3);");
  EXPECT_EQ(Count("t"), 3);

  // Rolling back to `a` discards b and everything after a.
  Script("ROLLBACK TO a;");
  EXPECT_EQ(Count("t"), 1);
  // b is gone; a survives a ROLLBACK TO (SQL semantics).
  auto bad = db_.ExecuteScript("ROLLBACK TO b;");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->errors, 1);
  Script("ROLLBACK TO a;");  // still valid
  Script("RELEASE SAVEPOINT a;");
  auto gone = db_.ExecuteScript("ROLLBACK TO a;");
  EXPECT_EQ(gone->errors, 1);
  Script("COMMIT;");
  EXPECT_EQ(Count("t"), 1);
}

TEST_F(DatabaseTest, ReleaseDropsNestedSavepoints) {
  Script("CREATE TABLE t (x INT); BEGIN; SAVEPOINT outer_sp;"
         "SAVEPOINT inner_sp; RELEASE SAVEPOINT outer_sp;");
  // Releasing the outer savepoint releases the inner one too.
  auto result = db_.ExecuteScript("ROLLBACK TO inner_sp;");
  EXPECT_EQ(result->errors, 1);
  Script("ROLLBACK;");
}

TEST_F(DatabaseTest, RollbackRestoresDataAndSchema) {
  Script("CREATE TABLE keep (x INT); INSERT INTO keep VALUES (1);");
  Script("BEGIN;"
         "INSERT INTO keep VALUES (2);"
         "CREATE TABLE scratch (y INT);"
         "DROP TABLE keep;"
         "ROLLBACK;");
  EXPECT_EQ(Count("keep"), 1);
  EXPECT_FALSE(db_.catalog().HasTable("scratch"));
}

TEST_F(DatabaseTest, SessionSettingsPersistAcrossStatements) {
  Script("SET my_var = 42;");
  auto stmt = sql::Parser::ParseStatement("SELECT @@SESSION.my_var");
  auto result = db_.Execute(**stmt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt(), 42);
}

TEST_F(DatabaseTest, ResetSessionKeepsCatalogClearsState) {
  Script("CREATE TABLE t (x INT); SET my_var = 1; LISTEN ch; BEGIN;");
  db_.ResetSession();
  EXPECT_TRUE(db_.catalog().HasTable("t"));
  EXPECT_TRUE(db_.session().settings.empty());
  EXPECT_TRUE(db_.session().listening.empty());
  EXPECT_TRUE(db_.session().type_trace.empty());
  EXPECT_FALSE(db_.session().in_transaction);
}

TEST_F(DatabaseTest, ResetSessionAbortsOpenTransaction) {
  Script("CREATE TABLE t (x INT); BEGIN; INSERT INTO t VALUES (1);");
  db_.ResetSession();
  EXPECT_EQ(Count("t"), 0);  // the in-flight insert rolled back
}

TEST_F(DatabaseTest, ResetAllDropsEverything) {
  Script("CREATE TABLE t (x INT);");
  db_.ResetAll();
  EXPECT_FALSE(db_.catalog().HasTable("t"));
}

TEST_F(DatabaseTest, FeatureTraceParallelsTypeTrace) {
  Script("CREATE TABLE t (x INT); INSERT INTO t VALUES (1);"
         "SELECT x, COUNT(*) FROM t GROUP BY x;");
  const auto& session = db_.session();
  ASSERT_EQ(session.type_trace.size(), session.feature_trace.size());
  ASSERT_EQ(session.type_trace.size(), 3u);
  EXPECT_TRUE(session.feature_trace[2].test(
      static_cast<size_t>(ExecFeature::kGroupBy)));
  EXPECT_TRUE(session.feature_trace[2].test(
      static_cast<size_t>(ExecFeature::kAggregate)));
  EXPECT_FALSE(session.feature_trace[1].test(
      static_cast<size_t>(ExecFeature::kGroupBy)));
}

TEST_F(DatabaseTest, TriggerBodiesAppearInTrace) {
  Script("CREATE TABLE t (x INT); CREATE TABLE log (x INT);"
         "CREATE TRIGGER tg AFTER INSERT ON t FOR EACH ROW "
         "INSERT INTO log VALUES (1);"
         "INSERT INTO t VALUES (5);");
  const auto& trace = db_.session().type_trace;
  // CT, CT, CTR, (trigger body INSERT), INSERT.
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace[3], sql::StatementType::kInsert);  // fired body
  EXPECT_EQ(trace[4], sql::StatementType::kInsert);  // top-level
}

TEST_F(DatabaseTest, ExplainAnalyzeExecutesTarget) {
  Script("CREATE TABLE t (x INT); INSERT INTO t VALUES (1), (2);");
  auto stmt = sql::Parser::ParseStatement("EXPLAIN ANALYZE SELECT * FROM t");
  auto result = db_.Execute(**stmt);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const auto& note : result->notes) {
    if (note.find("actual rows: 2") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(DatabaseTest, CrashLeavesLastCrashPopulated) {
  Database my(&DialectProfile::MyLite());
  faults::BugEngine oracle("mylite");
  my.set_fault_hook(&oracle);
  auto result = my.ExecuteScript(
      "CREATE TABLE v0 (v1 INT); INSERT INTO v0 VALUES (1);"
      "CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW "
      "INSERT INTO v0 VALUES (2); SELECT * FROM v0;");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->crashed);
  ASSERT_TRUE(my.last_crash().has_value());
  EXPECT_EQ(my.last_crash()->bug_id, "MY-AUTH-02");
  my.ResetSession();
  EXPECT_FALSE(my.last_crash().has_value());
}

TEST_F(DatabaseTest, ViewOnViewExpandsRecursively) {
  Script("CREATE TABLE base (x INT); INSERT INTO base VALUES (1), (2);"
         "CREATE VIEW v1 AS SELECT x FROM base WHERE x > 1;"
         "CREATE VIEW v2 AS SELECT x FROM v1;");
  auto stmt = sql::Parser::ParseStatement("SELECT * FROM v2");
  auto result = db_.Execute(**stmt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST_F(DatabaseTest, SelfReferentialViewHitsDepthLimit) {
  Script("CREATE TABLE base (x INT);"
         "CREATE VIEW v AS SELECT x FROM base;");
  // Re-pointing the view at itself (OR REPLACE) creates a cycle.
  Script("CREATE OR REPLACE VIEW v AS SELECT x FROM v;");
  auto stmt = sql::Parser::ParseStatement("SELECT * FROM v");
  auto result = db_.Execute(**stmt);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
}

TEST_F(DatabaseTest, InsertSelectMovesRows) {
  Script("CREATE TABLE src (x INT); CREATE TABLE dst (x INT);"
         "INSERT INTO src VALUES (1), (2), (3);"
         "INSERT INTO dst SELECT x FROM src WHERE x > 1;");
  EXPECT_EQ(Count("dst"), 2);
}

TEST_F(DatabaseTest, UniqueIndexSurvivesVacuumRewrite) {
  Script("CREATE TABLE t (k INT PRIMARY KEY);"
         "INSERT INTO t VALUES (1), (2), (3);"
         "DELETE FROM t WHERE k = 2; VACUUM t;");
  // The rebuilt index must still enforce uniqueness and serve lookups.
  auto dup = db_.ExecuteScript("INSERT INTO t VALUES (1);");
  EXPECT_EQ(dup->errors, 1);
  Script("INSERT INTO t VALUES (2);");
  EXPECT_EQ(Count("t"), 3);
}

TEST_F(DatabaseTest, AnalyzeFeedsPlannerEstimates) {
  Script("CREATE TABLE a (k INT); CREATE TABLE b (k INT);");
  for (int i = 0; i < 6; ++i) {
    Script("INSERT INTO a VALUES (" + std::to_string(i) + ");"
           "INSERT INTO b VALUES (" + std::to_string(i) + ");");
  }
  Script("ANALYZE;");
  auto stmt = sql::Parser::ParseStatement(
      "EXPLAIN SELECT * FROM a JOIN b ON a.k = b.k");
  auto result = db_.Execute(**stmt);
  ASSERT_TRUE(result.ok());
  std::string all;
  for (const auto& n : result->notes) all += n + "\n";
  EXPECT_NE(all.find("HashJoin"), std::string::npos) << all;
}

TEST_F(DatabaseTest, EmptyInputFeatureRecordedOnEmptySelect) {
  Script("CREATE TABLE t (x INT); INSERT INTO t VALUES (1);"
         "TRUNCATE TABLE t; SELECT * FROM t;");
  EXPECT_TRUE(db_.session().feature_trace.back().test(
      static_cast<size_t>(ExecFeature::kEmptyInput)));
}

}  // namespace
}  // namespace lego::minidb
