#include "minidb/planner.h"

#include <gtest/gtest.h>

#include "minidb/database.h"
#include "sql/parser.h"

namespace lego::minidb {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void Setup(const std::string& script) {
    auto result = db_.ExecuteScript(script);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->errors, 0);
  }

  SelectPlan Plan(const std::string& select_text) {
    auto stmt = sql::Parser::ParseStatement(select_text);
    EXPECT_TRUE(stmt.ok()) << select_text;
    keep_alive_.push_back(std::move(*stmt));
    Planner planner(&db_.catalog(), &db_.profile(), &ctes_);
    auto plan = planner.PlanSelect(
        static_cast<const sql::SelectStmt&>(*keep_alive_.back()));
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? std::move(*plan) : SelectPlan{};
  }

  Database db_;
  std::map<std::string, Relation> ctes_;
  std::vector<sql::StmtPtr> keep_alive_;  // plans point into these ASTs
};

TEST_F(PlannerTest, SeqScanWithoutIndex) {
  Setup("CREATE TABLE t (a INT, b INT);");
  SelectPlan plan = Plan("SELECT a FROM t WHERE b = 1");
  ASSERT_NE(plan.from, nullptr);
  EXPECT_EQ(plan.from->kind, PlanNode::Kind::kScan);
  EXPECT_EQ(plan.from->method, ScanMethod::kSeqScan);
}

TEST_F(PlannerTest, EqualityProbePicksIndexScan) {
  Setup("CREATE TABLE t (a INT, b INT); CREATE INDEX ta ON t (a);");
  SelectPlan plan = Plan("SELECT b FROM t WHERE a = 7");
  EXPECT_EQ(plan.from->method, ScanMethod::kIndexEqual);
  EXPECT_EQ(plan.from->index_name, "ta");
  ASSERT_NE(plan.from->eq_probe, nullptr);
}

TEST_F(PlannerTest, ReversedComparandStillMatches) {
  Setup("CREATE TABLE t (a INT); CREATE INDEX ta ON t (a);");
  SelectPlan plan = Plan("SELECT a FROM t WHERE 7 = a");
  EXPECT_EQ(plan.from->method, ScanMethod::kIndexEqual);
}

TEST_F(PlannerTest, RangePredicatePicksIndexRange) {
  Setup("CREATE TABLE t (a INT); CREATE INDEX ta ON t (a);");
  SelectPlan lower = Plan("SELECT a FROM t WHERE a > 5");
  EXPECT_EQ(lower.from->method, ScanMethod::kIndexRange);
  EXPECT_NE(lower.from->range_lo, nullptr);
  EXPECT_FALSE(lower.from->lo_inclusive);

  SelectPlan upper = Plan("SELECT a FROM t WHERE a <= 9");
  EXPECT_EQ(upper.from->method, ScanMethod::kIndexRange);
  EXPECT_NE(upper.from->range_hi, nullptr);
  EXPECT_TRUE(upper.from->hi_inclusive);
}

TEST_F(PlannerTest, EqualityBeatsRange) {
  Setup("CREATE TABLE t (a INT); CREATE INDEX ta ON t (a);");
  SelectPlan plan = Plan("SELECT a FROM t WHERE a > 5 AND a = 7");
  EXPECT_EQ(plan.from->method, ScanMethod::kIndexEqual);
}

TEST_F(PlannerTest, NonIndexedColumnStaysSeqScan) {
  Setup("CREATE TABLE t (a INT, b INT); CREATE INDEX ta ON t (a);");
  SelectPlan plan = Plan("SELECT a FROM t WHERE b = 1");
  EXPECT_EQ(plan.from->method, ScanMethod::kSeqScan);
}

TEST_F(PlannerTest, NonConstantComparandStaysSeqScan) {
  Setup("CREATE TABLE t (a INT, b INT); CREATE INDEX ta ON t (a);");
  SelectPlan plan = Plan("SELECT a FROM t WHERE a = b");
  EXPECT_EQ(plan.from->method, ScanMethod::kSeqScan);
}

TEST_F(PlannerTest, AliasQualifiedPredicateMatchesIndex) {
  Setup("CREATE TABLE t (a INT); CREATE INDEX ta ON t (a);");
  SelectPlan plan = Plan("SELECT x.a FROM t AS x WHERE x.a = 1");
  EXPECT_EQ(plan.from->method, ScanMethod::kIndexEqual);
  EXPECT_EQ(plan.from->alias, "x");
}

TEST_F(PlannerTest, ForeignQualifierDoesNotMatchIndex) {
  Setup("CREATE TABLE t (a INT); CREATE TABLE u (a INT);"
        "CREATE INDEX ta ON t (a);");
  // The predicate targets u.a, so t must not claim the index probe.
  SelectPlan plan = Plan("SELECT * FROM t, u WHERE u.a = 1");
  ASSERT_EQ(plan.from->kind, PlanNode::Kind::kJoin);
  EXPECT_EQ(plan.from->left->method, ScanMethod::kSeqScan);
}

TEST_F(PlannerTest, SmallJoinUsesNestedLoop) {
  Setup("CREATE TABLE a (k INT); CREATE TABLE b (k INT);"
        "INSERT INTO a VALUES (1); INSERT INTO b VALUES (1);");
  SelectPlan plan = Plan("SELECT * FROM a JOIN b ON a.k = b.k");
  ASSERT_EQ(plan.from->kind, PlanNode::Kind::kJoin);
  EXPECT_EQ(plan.from->strategy, JoinStrategy::kNestedLoop);
}

TEST_F(PlannerTest, LargeEquiJoinUsesHashJoin) {
  std::string script = "CREATE TABLE a (k INT); CREATE TABLE b (k INT);";
  for (int i = 0; i < Planner::kHashJoinThreshold; ++i) {
    script += "INSERT INTO a VALUES (" + std::to_string(i) + ");";
    script += "INSERT INTO b VALUES (" + std::to_string(i) + ");";
  }
  Setup(script);
  SelectPlan plan = Plan("SELECT * FROM a JOIN b ON a.k = b.k");
  EXPECT_EQ(plan.from->strategy, JoinStrategy::kHashJoin);
  EXPECT_NE(plan.from->hash_left_key, nullptr);
  EXPECT_NE(plan.from->hash_right_key, nullptr);
}

TEST_F(PlannerTest, NonEquiJoinNeverHashes) {
  std::string script = "CREATE TABLE a (k INT); CREATE TABLE b (k INT);";
  for (int i = 0; i < 10; ++i) {
    script += "INSERT INTO a VALUES (1); INSERT INTO b VALUES (1);";
  }
  Setup(script);
  SelectPlan plan = Plan("SELECT * FROM a JOIN b ON a.k < b.k");
  EXPECT_EQ(plan.from->strategy, JoinStrategy::kNestedLoop);
}

TEST_F(PlannerTest, AnalyzeStatsOverrideLiveCounts) {
  // Tables are analyzed while full, then emptied: the stale statistics keep
  // the hash-join choice (the planner trusts ANALYZE, as real ones do).
  std::string script = "CREATE TABLE a (k INT); CREATE TABLE b (k INT);";
  for (int i = 0; i < 10; ++i) {
    script += "INSERT INTO a VALUES (1); INSERT INTO b VALUES (1);";
  }
  script += "ANALYZE; DELETE FROM a; DELETE FROM b;";
  Setup(script);
  SelectPlan plan = Plan("SELECT * FROM a JOIN b ON a.k = b.k");
  EXPECT_EQ(plan.from->strategy, JoinStrategy::kHashJoin);
}

TEST_F(PlannerTest, ViewAndSubqueryAndCteNodes) {
  Setup("CREATE TABLE t (x INT); CREATE VIEW v AS SELECT x FROM t;");
  EXPECT_EQ(Plan("SELECT * FROM v").from->kind, PlanNode::Kind::kView);
  EXPECT_EQ(Plan("SELECT * FROM (SELECT x FROM t) AS s").from->kind,
            PlanNode::Kind::kSubquery);
  ctes_["w"] = Relation{};
  EXPECT_EQ(Plan("SELECT * FROM w").from->kind, PlanNode::Kind::kCte);
}

TEST_F(PlannerTest, MissingRelationIsNotFound) {
  auto stmt = sql::Parser::ParseStatement("SELECT * FROM missing");
  Planner planner(&db_.catalog(), &db_.profile(), &ctes_);
  auto plan =
      planner.PlanSelect(static_cast<const sql::SelectStmt&>(**stmt));
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST_F(PlannerTest, DescribeRendersTheTree) {
  Setup("CREATE TABLE t (a INT); CREATE INDEX ta ON t (a);");
  SelectPlan plan =
      Plan("SELECT DISTINCT a FROM t WHERE a = 1 ORDER BY a LIMIT 2");
  std::string text = plan.Describe();
  EXPECT_NE(text.find("Limit"), std::string::npos);
  EXPECT_NE(text.find("Sort"), std::string::npos);
  EXPECT_NE(text.find("Distinct"), std::string::npos);
  EXPECT_NE(text.find("Filter"), std::string::npos);
  EXPECT_NE(text.find("IndexScan (eq) on t using ta"), std::string::npos);
}

TEST_F(PlannerTest, NoFromPlansAsResult) {
  SelectPlan plan = Plan("SELECT 1");
  EXPECT_EQ(plan.from, nullptr);
  EXPECT_NE(plan.Describe().find("Result"), std::string::npos);
}

}  // namespace
}  // namespace lego::minidb
