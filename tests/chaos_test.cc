// Chaos layer: deterministic failpoint schedules, damage-tolerant corpus
// import, resource-governed forked children (REAL-OOM / REAL-CPU triage
// buckets), and the spawn circuit breaker with campaign-level parking.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "chaos/failpoint.h"
#include "fuzz/backend.h"
#include "fuzz/backend_forked.h"
#include "fuzz/campaign.h"
#include "fuzz/corpus_file.h"
#include "fuzz/fuzzer.h"
#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "minidb/database.h"
#include "minidb/profile.h"
#include "persist/io.h"

// Rlimit-based OOM tests are incompatible with sanitizer runtimes (ASan
// reserves shadow memory far beyond RLIMIT_AS; TSan likewise) — skip them
// there; the release job covers them.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LEGO_SANITIZED 1
#endif
#if !defined(LEGO_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LEGO_SANITIZED 1
#endif
#endif

namespace lego::fuzz {
namespace {

/// Every test leaves the global registry disarmed, even on assertion
/// failure — chaos state must never leak across tests.
class ScopedChaos {
 public:
  ScopedChaos() { chaos::DisarmAll(); }
  ~ScopedChaos() { chaos::DisarmAll(); }
};

class PlantedHang {
 public:
  PlantedHang() { minidb::testing::SetPlantedHangForTesting(true); }
  ~PlantedHang() { minidb::testing::SetPlantedHangForTesting(false); }
};

class PlantedOom {
 public:
  PlantedOom() { minidb::testing::SetPlantedOomForTesting(true); }
  ~PlantedOom() { minidb::testing::SetPlantedOomForTesting(false); }
};

/// Deterministic generation-only fuzzer cycling through fixed scripts.
class ScriptFuzzer : public Fuzzer {
 public:
  explicit ScriptFuzzer(std::vector<std::string> scripts)
      : scripts_(std::move(scripts)) {}

  std::string name() const override { return "script"; }
  void Prepare(ExecutionHarness* harness) override { (void)harness; }

  TestCase Next() override {
    auto tc = TestCase::FromSql(scripts_[next_ % scripts_.size()]);
    ++next_;
    EXPECT_TRUE(tc.ok());
    return std::move(*tc);
  }

  void OnResult(const TestCase& tc, const ExecResult& result) override {
    (void)tc;
    (void)result;
  }

  std::unique_ptr<Fuzzer> CloneForWorker(int worker_id) const override {
    (void)worker_id;
    return std::make_unique<ScriptFuzzer>(scripts_);
  }

 private:
  std::vector<std::string> scripts_;
  size_t next_ = 0;
};

std::vector<bool> DrawPattern(uint64_t seed, double prob, int n) {
  chaos::ArmAll(seed, prob);
  std::vector<bool> fires;
  fires.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) fires.push_back(LEGO_FAILPOINT("persist.write"));
  chaos::DisarmAll();
  return fires;
}

TEST(FailpointTest, SameSeedSameSchedule) {
  ScopedChaos scope;
  const std::vector<bool> a = DrawPattern(42, 0.3, 200);
  const std::vector<bool> b = DrawPattern(42, 0.3, 200);
  EXPECT_EQ(a, b);
  // A 0.3 schedule over 200 draws fires somewhere strictly inside (0, 200).
  const int fired = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 200);

  const std::vector<bool> c = DrawPattern(43, 0.3, 200);
  EXPECT_NE(a, c);
}

TEST(FailpointTest, DisarmedNeverFiresAndCountsNothing) {
  ScopedChaos scope;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(LEGO_FAILPOINT("persist.write"));
  }
  EXPECT_EQ(chaos::HitCount("persist.write"), 0u);
  EXPECT_EQ(chaos::FireCount("persist.write"), 0u);
  for (const chaos::FailpointInfo& fp : chaos::Snapshot()) {
    EXPECT_EQ(fp.mode, chaos::FailpointMode::kOff);
    EXPECT_EQ(fp.hits, 0u);
    EXPECT_EQ(fp.fires, 0u);
  }
}

TEST(FailpointTest, NthHitFiresExactlyOnce) {
  ScopedChaos scope;
  ASSERT_TRUE(chaos::ArmSpec("corpus.save=nth:3", 1).ok());
  std::vector<bool> fires;
  for (int i = 0; i < 10; ++i) fires.push_back(LEGO_FAILPOINT("corpus.save"));
  std::vector<bool> expected(10, false);
  expected[2] = true;
  EXPECT_EQ(fires, expected);
  EXPECT_EQ(chaos::HitCount("corpus.save"), 10u);
  EXPECT_EQ(chaos::FireCount("corpus.save"), 1u);
}

TEST(FailpointTest, ProbabilityBounds) {
  ScopedChaos scope;
  ASSERT_TRUE(chaos::ArmSpec("persist.read=prob:0", 1).ok());
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(LEGO_FAILPOINT("persist.read"));
  ASSERT_TRUE(chaos::ArmSpec("persist.read=prob:1", 1).ok());
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(LEGO_FAILPOINT("persist.read"));
  ASSERT_TRUE(chaos::ArmSpec("persist.read=always", 1).ok());
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(LEGO_FAILPOINT("persist.read"));
}

TEST(FailpointTest, ArmSpecRejectsMalformedSpecs) {
  ScopedChaos scope;
  EXPECT_FALSE(chaos::ArmSpec("no-equals-sign", 1).ok());
  EXPECT_FALSE(chaos::ArmSpec("not.a.failpoint=always", 1).ok());
  EXPECT_FALSE(chaos::ArmSpec("persist.write=sometimes", 1).ok());
  EXPECT_FALSE(chaos::ArmSpec("persist.write=prob:2.0", 1).ok());
  EXPECT_FALSE(chaos::ArmSpec("persist.write=prob:", 1).ok());
  EXPECT_FALSE(chaos::ArmSpec("persist.write=nth:0", 1).ok());
  EXPECT_FALSE(chaos::ArmSpec("persist.write=kill:x", 1).ok());
  // A rejected spec must leave nothing armed.
  EXPECT_FALSE(chaos::detail::g_armed.load());
}

TEST(FailpointTest, RegistryListsAllCompiledSites) {
  const auto names = chaos::RegisteredFailpoints();
  EXPECT_GE(names.size(), 9u);
  for (std::string_view expected :
       {"persist.open", "persist.write", "persist.rename", "persist.read",
        "corpus.save", "corpus.load", "minidb.insert_alloc",
        "minidb.select_alloc", "backend.spawn"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(FailpointTest, AtomicWriteFailsUnderRenameFaultAndRecovers) {
  ScopedChaos scope;
  const std::string path =
      (std::filesystem::temp_directory_path() / "lego_chaos_atomic.state")
          .string();
  std::filesystem::remove(path);

  ASSERT_TRUE(chaos::ArmSpec("persist.rename=always", 1).ok());
  EXPECT_FALSE(persist::WriteTextFileAtomic(path, "payload").ok());
  EXPECT_FALSE(std::filesystem::exists(path));  // no torn file left behind

  chaos::DisarmAll();
  ASSERT_TRUE(persist::WriteTextFileAtomic(path, "payload").ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

// --- tolerant corpus import ---

std::vector<TestCase> MakeCases() {
  const char* sqls[] = {
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);",
      "CREATE TABLE u (b INT); INSERT INTO u VALUES (2); SELECT b FROM u;",
      "CREATE TABLE v (c INT); UPDATE v SET c = 1;",
      "CREATE TABLE w (d INT); DELETE FROM w;",
      "CREATE TABLE x (e INT); INSERT INTO x VALUES (5); SELECT e FROM x;",
      "CREATE TABLE y (f INT); INSERT INTO y VALUES (6);",
  };
  std::vector<TestCase> cases;
  for (const char* sql : sqls) {
    auto tc = TestCase::FromSql(sql);
    EXPECT_TRUE(tc.ok());
    cases.push_back(std::move(*tc));
  }
  return cases;
}

std::string CorpusPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("lego_chaos_" + name))
      .string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(TolerantCorpusTest, IntactFileLoadsClean) {
  const std::string path = CorpusPath("intact.corpus");
  ASSERT_TRUE(SaveCorpusFile(MakeCases(), path).ok());
  CorpusLoadStats stats;
  auto loaded = LoadCorpusFileTolerant(path, &stats);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 6u);
  EXPECT_EQ(stats.loaded, 6u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_FALSE(stats.degraded);
  std::filesystem::remove(path);
}

TEST(TolerantCorpusTest, TruncatedFileSalvagesPrefix) {
  const std::string path = CorpusPath("truncated.corpus");
  ASSERT_TRUE(SaveCorpusFile(MakeCases(), path).ok());
  std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 40u);
  bytes.resize(bytes.size() - 25);  // lose the checksum and part of the tail
  WriteAll(path, bytes);

  // The strict loader refuses the whole file ...
  EXPECT_FALSE(LoadCorpusFile(path).ok());

  // ... the tolerant one salvages every case before the damage.
  CorpusLoadStats stats;
  auto loaded = LoadCorpusFileTolerant(path, &stats);
  ASSERT_TRUE(loaded.ok());
  EXPECT_GE(loaded->size(), 1u);
  EXPECT_LT(loaded->size(), 6u);
  EXPECT_EQ(stats.loaded, loaded->size());
  EXPECT_GE(stats.skipped, 1u);
  EXPECT_TRUE(stats.degraded);
  std::filesystem::remove(path);
}

TEST(TolerantCorpusTest, ChecksumFlipStillSalvagesAllEntries) {
  const std::string path = CorpusPath("badsum.corpus");
  ASSERT_TRUE(SaveCorpusFile(MakeCases(), path).ok());
  std::string bytes = ReadAll(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x5a);  // corrupt trailer
  WriteAll(path, bytes);

  EXPECT_FALSE(LoadCorpusFile(path).ok());
  CorpusLoadStats stats;
  auto loaded = LoadCorpusFileTolerant(path, &stats);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 6u);  // payload intact; only the checksum lies
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_TRUE(stats.degraded);
  std::filesystem::remove(path);
}

TEST(TolerantCorpusTest, GarbageFileStillFails) {
  const std::string path = CorpusPath("garbage.corpus");
  WriteAll(path, "this is not a corpus file at all");
  CorpusLoadStats stats;
  EXPECT_FALSE(LoadCorpusFileTolerant(path, &stats).ok());
  std::filesystem::remove(path);
}

TEST(TolerantCorpusTest, LoadFailpointInjectsFault) {
  ScopedChaos scope;
  const std::string path = CorpusPath("fp.corpus");
  ASSERT_TRUE(SaveCorpusFile(MakeCases(), path).ok());
  ASSERT_TRUE(chaos::ArmSpec("corpus.load=always", 1).ok());
  CorpusLoadStats stats;
  EXPECT_FALSE(LoadCorpusFileTolerant(path, &stats).ok());
  chaos::DisarmAll();
  EXPECT_TRUE(LoadCorpusFileTolerant(path, &stats).ok());
  std::filesystem::remove(path);
}

// --- spawn circuit breaker ---

TEST(CircuitBreakerTest, RepeatedSpawnFailureOpensBreaker) {
  ScopedChaos scope;
  ASSERT_TRUE(chaos::ArmSpec("backend.spawn=always", 1).ok());
  BackendOptions options;
  options.kind = BackendKind::kForked;
  options.spawn_failure_limit = 3;
  ForkedBackend backend(minidb::DialectProfile::PgLite(), options);
  EXPECT_TRUE(backend.broken());
  EXPECT_EQ(backend.spawn_count(), 0);
  EXPECT_EQ(backend.spawn_failures(), 3);

  // A broken backend stays inert and error-reporting, never crashing.
  backend.Reset();
  auto tc = TestCase::FromSql("SELECT 1;");
  ASSERT_TRUE(tc.ok());
  StmtOutcome out = backend.Execute(*tc->statements()[0], false);
  EXPECT_EQ(out.status, StmtOutcome::Status::kError);
}

TEST(CircuitBreakerTest, TransientSpawnFailureRetriesAndRecovers) {
  ScopedChaos scope;
  ASSERT_TRUE(chaos::ArmSpec("backend.spawn=nth:1", 1).ok());
  BackendOptions options;
  options.kind = BackendKind::kForked;
  ForkedBackend backend(minidb::DialectProfile::PgLite(), options);
  EXPECT_FALSE(backend.broken());
  EXPECT_EQ(backend.spawn_failures(), 1);  // first attempt injected, retried
  EXPECT_EQ(backend.spawn_count(), 1);

  backend.Reset();
  auto tc = TestCase::FromSql("CREATE TABLE t (a INT);");
  ASSERT_TRUE(tc.ok());
  StmtOutcome out = backend.Execute(*tc->statements()[0], false);
  EXPECT_EQ(out.status, StmtOutcome::Status::kOk);
}

TEST(CircuitBreakerTest, CampaignSurvivesDeadWorkerAndRedistributes) {
  ScopedChaos scope;
  // Spawn hits: 1 = prototype harness, 2 = worker 0 (injected -> breaker
  // opens with limit 1), 3 = worker 1. Worker 0 is parked from round one
  // and its entire half of the budget must migrate to worker 1.
  ASSERT_TRUE(chaos::ArmSpec("backend.spawn=nth:2", 1).ok());

  ScriptFuzzer fuzzer({
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t;",
      "CREATE TABLE u (b INT); INSERT INTO u VALUES (2); SELECT b FROM u;",
  });
  BackendOptions backend;
  backend.kind = BackendKind::kForked;
  backend.spawn_failure_limit = 1;
  ExecutionHarness harness(minidb::DialectProfile::PgLite(), backend);

  CampaignOptions options;
  options.max_executions = 60;
  options.num_workers = 2;
  options.sync_every = 8;
  options.snapshot_every = 0;

  CampaignResult result = RunCampaign(&fuzzer, &harness, options);
  EXPECT_EQ(result.executions, 60);  // full budget despite the dead worker
  EXPECT_EQ(result.workers_parked, 1);
  EXPECT_EQ(result.crashes_total, 0);
}

// --- resource governance ---

TEST(ResourceGovernanceTest, ChildOomBecomesRealOomCrash) {
#ifdef LEGO_SANITIZED
  GTEST_SKIP() << "RLIMIT_AS is incompatible with sanitizer shadow memory";
#else
  PlantedOom plant;
  BackendOptions backend;
  backend.kind = BackendKind::kForked;
  backend.max_child_mem_mb = 256;
  ExecutionHarness harness(minidb::DialectProfile::PgLite(), backend);

  auto tc = TestCase::FromSql("CREATE TABLE t (a INT); REINDEX; SELECT 1;");
  ASSERT_TRUE(tc.ok());
  ExecResult r = harness.Run(*tc);
  EXPECT_TRUE(r.crashed);
  EXPECT_EQ(r.crash.bug_id, "REAL-OOM");
  EXPECT_EQ(r.executed, 1);  // CREATE ran; REINDEX died; SELECT never ran

  // The child respawns: the same harness keeps executing, and the repro
  // replays to the same bucket (stable stack hash).
  auto again = TestCase::FromSql("CREATE TABLE t (a INT); REINDEX;");
  ASSERT_TRUE(again.ok());
  ExecResult r2 = harness.Run(*again);
  EXPECT_TRUE(r2.crashed);
  EXPECT_EQ(r2.crash.bug_id, "REAL-OOM");
  EXPECT_EQ(r2.crash.stack_hash, r.crash.stack_hash);
#endif
}

TEST(ResourceGovernanceTest, ChildCpuSpinBecomesRealCpuCrash) {
  PlantedHang plant;
  BackendOptions backend;
  backend.kind = BackendKind::kForked;
  backend.max_child_cpu_s = 1;  // no wall-clock watchdog: the rlimit acts
  ExecutionHarness harness(minidb::DialectProfile::PgLite(), backend);

  auto tc = TestCase::FromSql("CREATE TABLE t (a INT); VACUUM;");
  ASSERT_TRUE(tc.ok());
  ExecResult r = harness.Run(*tc);
  EXPECT_TRUE(r.crashed);
  EXPECT_EQ(r.crash.bug_id, "REAL-CPU");
}

}  // namespace
}  // namespace lego::fuzz
