#include <gtest/gtest.h>

#include "baselines/sqlancer_like.h"
#include "baselines/sqlsmith_like.h"
#include "baselines/squirrel_like.h"
#include "fuzz/campaign.h"
#include "fuzz/harness.h"
#include "fuzz/seeds.h"
#include "lego/lego_fuzzer.h"

namespace lego {
namespace {

using fuzz::CampaignOptions;
using fuzz::CampaignResult;
using fuzz::ExecutionHarness;
using fuzz::RunCampaign;
using minidb::DialectProfile;

CampaignResult RunSmall(fuzz::Fuzzer* fuzzer, const DialectProfile& profile,
                        int executions) {
  ExecutionHarness harness(profile);
  CampaignOptions options;
  options.max_executions = executions;
  options.snapshot_every = executions / 4;
  return RunCampaign(fuzzer, &harness, options);
}

TEST(HarnessTest, SeedScriptsExecuteCleanly) {
  // Every built-in seed must parse and run without statement errors —
  // otherwise the mutation-based fuzzers start from broken corpora.
  for (const auto* profile : DialectProfile::All()) {
    minidb::Database db(profile);
    for (const std::string& script : fuzz::SeedScriptsFor(profile->name)) {
      db.ResetAll();
      auto result = db.ExecuteScript(script);
      ASSERT_TRUE(result.ok())
          << profile->name << ": " << result.status().ToString();
      EXPECT_EQ(result->errors, 0) << profile->name << " seed:\n" << script;
    }
  }
}

TEST(HarnessTest, RunDetectsNewCoverageThenPlateaus) {
  ExecutionHarness harness(DialectProfile::PgLite());
  auto tc = fuzz::TestCase::FromSql(
      "CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT * FROM t;");
  ASSERT_TRUE(tc.ok());
  fuzz::ExecResult first = harness.Run(*tc);
  EXPECT_TRUE(first.new_coverage);
  EXPECT_GT(first.total_edges, 0u);
  fuzz::ExecResult second = harness.Run(*tc);
  EXPECT_FALSE(second.new_coverage);
  EXPECT_EQ(second.total_edges, first.total_edges);
}

TEST(HarnessTest, EachTestCaseSeesFreshDatabase) {
  ExecutionHarness harness(DialectProfile::PgLite());
  auto create = fuzz::TestCase::FromSql("CREATE TABLE once (x INT);");
  ASSERT_TRUE(create.ok());
  EXPECT_EQ(harness.Run(*create).errors, 0);
  // Re-running must succeed again: state does not leak across runs.
  EXPECT_EQ(harness.Run(*create).errors, 0);
}

TEST(LegoFuzzerTest, DiscoversAffinitiesAndSynthesizes) {
  core::LegoOptions options;
  options.rng_seed = 42;
  core::LegoFuzzer lego(DialectProfile::PgLite(), options);
  CampaignResult result = RunSmall(&lego, DialectProfile::PgLite(), 1500);
  EXPECT_GT(lego.affinities().Count(), 20u);
  EXPECT_GT(lego.synthesizer().TotalSequences(), 100u);
  EXPECT_GT(result.edges, 200u);
  EXPECT_GT(lego.corpus_size(), 5u);
}

TEST(LegoFuzzerTest, LegoMinusDiscoversNoAffinities) {
  core::LegoOptions options;
  options.sequence_algorithms_enabled = false;
  options.rng_seed = 42;
  core::LegoFuzzer lego_minus(DialectProfile::PgLite(), options);
  EXPECT_EQ(lego_minus.name(), "lego-");
  CampaignResult result =
      RunSmall(&lego_minus, DialectProfile::PgLite(), 800);
  EXPECT_EQ(lego_minus.affinities().Count(), 0u);
  EXPECT_GT(result.edges, 0u);
}

TEST(LegoFuzzerTest, FindsSeedCoveredBugsQuickly) {
  // marialite seeds contain eight bug-triggering sequences; LEGO replays
  // seeds first, so those bugs surface almost immediately.
  core::LegoOptions options;
  options.rng_seed = 7;
  core::LegoFuzzer lego(DialectProfile::MariaLite(), options);
  CampaignResult result = RunSmall(&lego, DialectProfile::MariaLite(), 200);
  EXPECT_GE(result.bug_ids.size(), 8u);
}

TEST(SqlsmithTest, GeneratesOnlySingleSelects) {
  baselines::SqlsmithLikeFuzzer sqlsmith(DialectProfile::PgLite());
  ExecutionHarness harness(DialectProfile::PgLite());
  sqlsmith.Prepare(&harness);
  for (int i = 0; i < 20; ++i) {
    fuzz::TestCase tc = sqlsmith.Next();
    ASSERT_EQ(tc.size(), 1u);
    EXPECT_EQ(tc.statements()[0]->type(), sql::StatementType::kSelect);
  }
}

TEST(SqlsmithTest, FindsNoBugs) {
  baselines::SqlsmithLikeFuzzer sqlsmith(DialectProfile::PgLite());
  CampaignResult result =
      RunSmall(&sqlsmith, DialectProfile::PgLite(), 1500);
  EXPECT_TRUE(result.bug_ids.empty());
  EXPECT_GT(result.edges, 0u);
  // Single-statement test cases contain no adjacent type pairs.
  EXPECT_TRUE(result.affinities.empty());
}

TEST(SqlancerTest, TemplateOrderIsFixed) {
  // Rule-based generation: statements always appear in the template's
  // stage order, so only a bounded set of type sequences is reachable.
  static const std::vector<sql::StatementType> kStageOrder = {
      sql::StatementType::kSet,        sql::StatementType::kCreateTable,
      sql::StatementType::kComment,    sql::StatementType::kCreateIndex,
      sql::StatementType::kCreateView, sql::StatementType::kInsert,
      sql::StatementType::kUpdate,     sql::StatementType::kInsert,
      sql::StatementType::kSelect,     sql::StatementType::kDelete};
  baselines::SqlancerLikeFuzzer sqlancer(DialectProfile::MyLite());
  ExecutionHarness harness(DialectProfile::MyLite());
  sqlancer.Prepare(&harness);
  for (int i = 0; i < 50; ++i) {
    fuzz::TestCase tc = sqlancer.Next();
    auto types = tc.TypeSequence();
    ASSERT_GE(types.size(), 3u);
    // Every generated sequence must be an order-preserving walk of the
    // stage list (with repetition inside the INSERT/SELECT blocks).
    size_t stage = 0;
    for (sql::StatementType t : types) {
      while (stage < kStageOrder.size() && kStageOrder[stage] != t) {
        ++stage;
      }
      ASSERT_LT(stage, kStageOrder.size())
          << "statement out of template order at iteration " << i;
      if (t != sql::StatementType::kInsert &&
          t != sql::StatementType::kSelect) {
        ++stage;  // non-repeating stage consumed
      }
    }
  }
}

TEST(SqlancerTest, FindsNoBugsOnAnyProfile) {
  for (const auto* profile : DialectProfile::All()) {
    baselines::SqlancerLikeFuzzer sqlancer(*profile);
    CampaignResult result = RunSmall(&sqlancer, *profile, 800);
    EXPECT_TRUE(result.bug_ids.empty())
        << profile->name << " found: "
        << (result.bug_ids.empty() ? "" : *result.bug_ids.begin());
  }
}

TEST(SquirrelTest, NeverChangesSeedTypeSequences) {
  baselines::SquirrelLikeFuzzer squirrel(DialectProfile::MariaLite());
  ExecutionHarness harness(DialectProfile::MariaLite());
  squirrel.Prepare(&harness);
  std::set<std::vector<sql::StatementType>> seed_sequences;
  for (const std::string& script :
       fuzz::SeedScriptsFor("marialite")) {
    auto tc = fuzz::TestCase::FromSql(script);
    ASSERT_TRUE(tc.ok());
    seed_sequences.insert(tc->TypeSequence());
  }
  // Drive a small loop: every generated test case's type sequence must be
  // one of the seeds' (intra-statement mutation preserves sequences).
  for (int i = 0; i < 200; ++i) {
    fuzz::TestCase tc = squirrel.Next();
    EXPECT_TRUE(seed_sequences.count(tc.TypeSequence()))
        << "squirrel changed a type sequence at iteration " << i;
    squirrel.OnResult(tc, harness.Run(tc));
  }
}

TEST(SquirrelTest, FindsSeedBugsOnMariaButNotPg) {
  baselines::SquirrelLikeFuzzer maria(DialectProfile::MariaLite());
  CampaignResult maria_result =
      RunSmall(&maria, DialectProfile::MariaLite(), 600);
  EXPECT_GE(maria_result.bug_ids.size(), 8u);

  baselines::SquirrelLikeFuzzer pg(DialectProfile::PgLite());
  CampaignResult pg_result = RunSmall(&pg, DialectProfile::PgLite(), 600);
  EXPECT_TRUE(pg_result.bug_ids.empty());
}

TEST(ComparisonTest, LegoBeatsBaselinesOnCoverageAndAffinities) {
  const auto& profile = DialectProfile::MyLite();
  const int kBudget = 2500;

  core::LegoOptions options;
  options.rng_seed = 3;
  core::LegoFuzzer lego(profile, options);
  CampaignResult lego_result = RunSmall(&lego, profile, kBudget);

  baselines::SquirrelLikeFuzzer squirrel(profile);
  CampaignResult squirrel_result = RunSmall(&squirrel, profile, kBudget);

  baselines::SqlancerLikeFuzzer sqlancer(profile);
  CampaignResult sqlancer_result = RunSmall(&sqlancer, profile, kBudget);

  // The paper's headline ordering (Fig. 9 / Tables II-III).
  EXPECT_GT(lego_result.edges, squirrel_result.edges);
  EXPECT_GT(lego_result.edges, sqlancer_result.edges);
  EXPECT_GT(lego_result.affinities.size(), squirrel_result.affinities.size());
  EXPECT_GT(lego_result.affinities.size(), sqlancer_result.affinities.size());
  EXPECT_GE(lego_result.bug_ids.size(), squirrel_result.bug_ids.size());
}

}  // namespace
}  // namespace lego
