#include "minidb/value.h"

#include <gtest/gtest.h>

namespace lego::minidb {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_EQ(Value::Int(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).real_value(), 2.5);
  EXPECT_EQ(Value::Text("hi").text_value(), "hi");
  EXPECT_TRUE(Value::Bool(true).bool_value());
}

TEST(ValueTest, AsRealCoercions) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsReal(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsReal(), 1.0);
  EXPECT_DOUBLE_EQ(Value::Text("2.5abc").AsReal(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Text("junk").AsReal(), 0.0);
  EXPECT_DOUBLE_EQ(Value::Null().AsReal(), 0.0);
}

TEST(ValueTest, AsIntClampsAndTruncates) {
  EXPECT_EQ(Value::Real(2.9).AsInt(), 2);
  EXPECT_EQ(Value::Real(-2.9).AsInt(), -2);
  EXPECT_EQ(Value::Real(1e30).AsInt(), INT64_MAX);
  EXPECT_EQ(Value::Real(-1e30).AsInt(), INT64_MIN);
}

TEST(ValueTest, AsBoolSemantics) {
  EXPECT_FALSE(Value::Null().AsBool());
  EXPECT_FALSE(Value::Int(0).AsBool());
  EXPECT_TRUE(Value::Int(-1).AsBool());
  EXPECT_FALSE(Value::Text("").AsBool());
  EXPECT_FALSE(Value::Text("0").AsBool());
  EXPECT_TRUE(Value::Text("x").AsBool());
}

TEST(ValueTest, ToTextRendering) {
  EXPECT_EQ(Value::Null().ToText(), "");
  EXPECT_EQ(Value::Int(-7).ToText(), "-7");
  EXPECT_EQ(Value::Bool(false).ToText(), "false");
  EXPECT_EQ(Value::Text("x").ToText(), "x");
}

TEST(ValueTest, ToStringDiagnostics) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Text("x").ToString(), "'x'");
}

TEST(ValueTest, CompareTotalOrderAcrossTypes) {
  // NULL < BOOL < numeric < TEXT.
  EXPECT_LT(Value::Null().Compare(Value::Bool(false)), 0);
  EXPECT_LT(Value::Bool(true).Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(999).Compare(Value::Text("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CompareNumericMixesIntAndReal) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Real(2.5)), 0);
  EXPECT_GT(Value::Real(3.1).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, CompareTextLexicographic) {
  EXPECT_LT(Value::Text("abc").Compare(Value::Text("abd")), 0);
  EXPECT_EQ(Value::Text("abc").Compare(Value::Text("abc")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::Text("x").Hash(), Value::Text("x").Hash());
  EXPECT_NE(Value::Text("x").Hash(), Value::Text("y").Hash());
  // Int and Real comparing equal must hash equal (hash joins rely on it).
  EXPECT_EQ(Value::Int(2).Hash(), Value::Real(2.0).Hash());
}

TEST(ValueTest, CastToEveryType) {
  Value v = Value::Real(3.7);
  EXPECT_EQ(v.CastTo(ValueType::kInt).AsInt(), 3);
  EXPECT_EQ(v.CastTo(ValueType::kText).text_value(), "3.7");
  EXPECT_TRUE(v.CastTo(ValueType::kBool).bool_value());
  EXPECT_TRUE(Value::Null().CastTo(ValueType::kInt).is_null());
  EXPECT_EQ(Value::Text("12").CastTo(ValueType::kInt).AsInt(), 12);
}

TEST(ValueTest, FromLiteralAllTags) {
  EXPECT_TRUE(
      Value::FromLiteral(
          static_cast<const sql::Literal&>(*sql::Literal::Null()))
          .is_null());
  EXPECT_EQ(Value::FromLiteral(
                static_cast<const sql::Literal&>(*sql::Literal::Int(4)))
                .AsInt(),
            4);
  EXPECT_EQ(Value::FromLiteral(static_cast<const sql::Literal&>(
                                   *sql::Literal::Text("t")))
                .text_value(),
            "t");
}

}  // namespace
}  // namespace lego::minidb
