#include "minidb/lock_manager.h"

#include <gtest/gtest.h>

namespace lego::minidb {
namespace {

using Acquire = LockManager::Acquire;

LockKey K(const char* table, uint32_t page = 0, uint32_t slot = 0) {
  return LockKey{table, RowId{page, slot}};
}

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  EXPECT_EQ(lm.Request(1, K("t"), LockMode::kShared), Acquire::kGranted);
  EXPECT_EQ(lm.Request(2, K("t"), LockMode::kShared), Acquire::kGranted);
  EXPECT_TRUE(lm.Holds(1, K("t"), LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, K("t"), LockMode::kShared));
}

TEST(LockManagerTest, ExclusiveConflictsBlock) {
  LockManager lm;
  EXPECT_EQ(lm.Request(1, K("t"), LockMode::kExclusive), Acquire::kGranted);
  EXPECT_EQ(lm.Request(2, K("t"), LockMode::kExclusive), Acquire::kWouldBlock);
  EXPECT_EQ(lm.Request(3, K("t"), LockMode::kShared), Acquire::kWouldBlock);
  ASSERT_NE(lm.WaitingOn(2), nullptr);
  EXPECT_EQ(*lm.WaitingOn(2), K("t"));
}

TEST(LockManagerTest, ReentrantHoldAndXCoversS) {
  LockManager lm;
  EXPECT_EQ(lm.Request(1, K("t"), LockMode::kExclusive), Acquire::kGranted);
  EXPECT_EQ(lm.Request(1, K("t"), LockMode::kExclusive), Acquire::kGranted);
  EXPECT_EQ(lm.Request(1, K("t"), LockMode::kShared), Acquire::kGranted);
  EXPECT_EQ(lm.HeldCount(1), 1u);
}

TEST(LockManagerTest, SoleHolderUpgradesInPlace) {
  LockManager lm;
  EXPECT_EQ(lm.Request(1, K("t"), LockMode::kShared), Acquire::kGranted);
  EXPECT_EQ(lm.Request(1, K("t"), LockMode::kExclusive), Acquire::kGranted);
  EXPECT_TRUE(lm.Holds(1, K("t"), LockMode::kExclusive));
  // The upgraded X now blocks others.
  EXPECT_EQ(lm.Request(2, K("t"), LockMode::kShared), Acquire::kWouldBlock);
}

TEST(LockManagerTest, ReleaseGrantsWaitersInQueueOrder) {
  LockManager lm;
  EXPECT_EQ(lm.Request(1, K("t"), LockMode::kExclusive), Acquire::kGranted);
  EXPECT_EQ(lm.Request(3, K("t"), LockMode::kShared), Acquire::kWouldBlock);
  EXPECT_EQ(lm.Request(2, K("t"), LockMode::kShared), Acquire::kWouldBlock);
  std::vector<uint64_t> granted = lm.ReleaseAll(1);
  // Both S waiters become grantable at once; wake order is ascending txn.
  ASSERT_EQ(granted.size(), 2u);
  EXPECT_EQ(granted[0], 2u);
  EXPECT_EQ(granted[1], 3u);
  EXPECT_TRUE(lm.Holds(2, K("t"), LockMode::kShared));
  EXPECT_TRUE(lm.Holds(3, K("t"), LockMode::kShared));
}

TEST(LockManagerTest, SharedNeverJumpsAnXWaiter) {
  LockManager lm;
  EXPECT_EQ(lm.Request(1, K("t"), LockMode::kShared), Acquire::kGranted);
  EXPECT_EQ(lm.Request(2, K("t"), LockMode::kExclusive), Acquire::kWouldBlock);
  // A later S must queue behind the waiting X, not join holder 1 — otherwise
  // a stream of readers starves the writer forever.
  EXPECT_EQ(lm.Request(3, K("t"), LockMode::kShared), Acquire::kWouldBlock);
  std::vector<uint64_t> granted = lm.ReleaseAll(1);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 2u);
  EXPECT_TRUE(lm.Holds(2, K("t"), LockMode::kExclusive));
  // Releasing the writer finally admits the queued reader.
  granted = lm.ReleaseAll(2);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 3u);
}

TEST(LockManagerTest, TwoTxnCycleIsDeadlock) {
  LockManager lm;
  EXPECT_EQ(lm.Request(1, K("a"), LockMode::kExclusive), Acquire::kGranted);
  EXPECT_EQ(lm.Request(2, K("b"), LockMode::kExclusive), Acquire::kGranted);
  EXPECT_EQ(lm.Request(1, K("b"), LockMode::kExclusive), Acquire::kWouldBlock);
  // 2 -> a would close the cycle 1 -> b -> 2 -> a -> 1: requester dies.
  EXPECT_EQ(lm.Request(2, K("a"), LockMode::kExclusive), Acquire::kDeadlock);
  // The victim was never enqueued; releasing it unblocks nothing by itself,
  // but releasing its locks grants txn 1's pending wait.
  std::vector<uint64_t> granted = lm.ReleaseAll(2);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 1u);
  EXPECT_TRUE(lm.Holds(1, K("b"), LockMode::kExclusive));
}

TEST(LockManagerTest, ThreeTxnCycleIsDeadlock) {
  LockManager lm;
  EXPECT_EQ(lm.Request(1, K("a"), LockMode::kExclusive), Acquire::kGranted);
  EXPECT_EQ(lm.Request(2, K("b"), LockMode::kExclusive), Acquire::kGranted);
  EXPECT_EQ(lm.Request(3, K("c"), LockMode::kExclusive), Acquire::kGranted);
  EXPECT_EQ(lm.Request(1, K("b"), LockMode::kExclusive), Acquire::kWouldBlock);
  EXPECT_EQ(lm.Request(2, K("c"), LockMode::kExclusive), Acquire::kWouldBlock);
  EXPECT_EQ(lm.Request(3, K("a"), LockMode::kExclusive), Acquire::kDeadlock);
}

TEST(LockManagerTest, ConcurrentUpgradeDeadlocks) {
  LockManager lm;
  EXPECT_EQ(lm.Request(1, K("t"), LockMode::kShared), Acquire::kGranted);
  EXPECT_EQ(lm.Request(2, K("t"), LockMode::kShared), Acquire::kGranted);
  EXPECT_EQ(lm.Request(1, K("t"), LockMode::kExclusive), Acquire::kWouldBlock);
  // Both S holders upgrading can never both proceed: the second must die.
  EXPECT_EQ(lm.Request(2, K("t"), LockMode::kExclusive), Acquire::kDeadlock);
  std::vector<uint64_t> granted = lm.ReleaseAll(2);
  // With txn 2 gone, txn 1 is sole holder and its queued upgrade is granted.
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 1u);
  EXPECT_TRUE(lm.Holds(1, K("t"), LockMode::kExclusive));
}

TEST(LockManagerTest, ReleaseCancelsPendingWait) {
  LockManager lm;
  EXPECT_EQ(lm.Request(1, K("t"), LockMode::kExclusive), Acquire::kGranted);
  EXPECT_EQ(lm.Request(2, K("t"), LockMode::kExclusive), Acquire::kWouldBlock);
  EXPECT_EQ(lm.Request(3, K("t"), LockMode::kExclusive), Acquire::kWouldBlock);
  // Txn 2 aborts while parked: its queue entry must vanish so txn 3 is next.
  EXPECT_TRUE(lm.ReleaseAll(2).empty());
  EXPECT_EQ(lm.WaitingOn(2), nullptr);
  std::vector<uint64_t> granted = lm.ReleaseAll(1);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 3u);
}

TEST(LockManagerTest, DistinctKeysDoNotConflict) {
  LockManager lm;
  EXPECT_EQ(lm.Request(1, K("t", 0, 0), LockMode::kExclusive),
            Acquire::kGranted);
  EXPECT_EQ(lm.Request(2, K("t", 0, 1), LockMode::kExclusive),
            Acquire::kGranted);
  EXPECT_EQ(lm.Request(3, K("u", 0, 0), LockMode::kExclusive),
            Acquire::kGranted);
}

}  // namespace
}  // namespace lego::minidb
