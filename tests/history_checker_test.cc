#include "concurrency/history_checker.h"

#include <gtest/gtest.h>

#include "concurrency/history.h"

namespace lego::concurrency {
namespace {

// Hand-written Adya-style histories, one per anomaly class: the checker is
// pure, so its classification can be conformance-tested without running the
// engine at all.

TEST(HistoryCheckerTest, EmptyHistoryIsClean) {
  History h;
  EXPECT_FALSE(CheckHistory(h).has_value());
}

TEST(HistoryCheckerTest, SerialReadModifyWriteIsClean) {
  History h;
  h.Begin(0, 1);
  h.Write(0, 1, "t:0:0", 1, 0);
  h.Commit(0, 1);
  h.Begin(1, 2);
  h.Read(1, 2, "t:0:0", 1);
  h.Write(1, 2, "t:0:0", 2, 1);
  h.Commit(1, 2);
  EXPECT_FALSE(CheckHistory(h).has_value());
}

TEST(HistoryCheckerTest, ConcurrentDisjointWritesAreClean) {
  History h;
  h.Begin(0, 1);
  h.Begin(1, 2);
  h.Write(0, 1, "t:0:0", 1, 0);
  h.Write(1, 2, "t:0:1", 2, 0);
  h.Commit(0, 1);
  h.Commit(1, 2);
  EXPECT_FALSE(CheckHistory(h).has_value());
}

TEST(HistoryCheckerTest, ReadingOwnWriteIsClean) {
  History h;
  h.Begin(0, 1);
  h.Write(0, 1, "t:0:0", 1, 0);
  h.Read(0, 1, "t:0:0", 1);
  h.Commit(0, 1);
  EXPECT_FALSE(CheckHistory(h).has_value());
}

TEST(HistoryCheckerTest, RolledBackWriteLeavesNoTrace) {
  // The undo path restores versions, so a later committed write records
  // prev_version 0, skipping the aborted version entirely.
  History h;
  h.Begin(0, 1);
  h.Write(0, 1, "t:0:0", 1, 0);
  h.Abort(0, 1);
  h.Begin(1, 2);
  h.Write(1, 2, "t:0:0", 2, 0);
  h.Commit(1, 2);
  EXPECT_FALSE(CheckHistory(h).has_value());
}

TEST(HistoryCheckerTest, DetectsLostUpdate) {
  // Both committed txns read version 0 of the key before writing it: the
  // second write clobbers the first without having seen it.
  History h;
  h.Begin(0, 1);
  h.Begin(1, 2);
  h.Read(0, 1, "t:0:0", 0);
  h.Read(1, 2, "t:0:0", 0);
  h.Write(0, 1, "t:0:0", 1, 0);
  h.Commit(0, 1);
  h.Write(1, 2, "t:0:0", 2, 0);
  h.Commit(1, 2);
  auto anomaly = CheckHistory(h);
  ASSERT_TRUE(anomaly.has_value());
  EXPECT_EQ(anomaly->id, "iso-lost-update");
  EXPECT_EQ(anomaly->key, "t:0:0");
}

TEST(HistoryCheckerTest, DetectsDirtyRead) {
  History h;
  h.Begin(0, 1);
  h.Write(0, 1, "t:0:0", 1, 0);
  h.Begin(1, 2);
  h.Read(1, 2, "t:0:0", 1);  // t1 has not committed yet
  h.Commit(1, 2);
  h.Commit(0, 1);
  auto anomaly = CheckHistory(h);
  ASSERT_TRUE(anomaly.has_value());
  EXPECT_EQ(anomaly->id, "iso-dirty-read");
}

TEST(HistoryCheckerTest, DetectsG1aAbortedRead) {
  History h;
  h.Begin(0, 1);
  h.Write(0, 1, "t:0:0", 1, 0);
  h.Begin(1, 2);
  h.Read(1, 2, "t:0:0", 1);
  h.Commit(1, 2);
  h.Abort(0, 1);  // the observed version never existed
  auto anomaly = CheckHistory(h);
  ASSERT_TRUE(anomaly.has_value());
  EXPECT_EQ(anomaly->id, "iso-g1a");
}

TEST(HistoryCheckerTest, DetectsG1bIntermediateRead) {
  History h;
  h.Begin(0, 1);
  h.Write(0, 1, "t:0:0", 1, 0);
  h.Write(0, 1, "t:0:0", 2, 1);
  h.Commit(0, 1);
  h.Begin(1, 2);
  h.Read(1, 2, "t:0:0", 1);  // v1 was never t1's final state
  h.Commit(1, 2);
  auto anomaly = CheckHistory(h);
  ASSERT_TRUE(anomaly.has_value());
  EXPECT_EQ(anomaly->id, "iso-g1b");
}

TEST(HistoryCheckerTest, DetectsNonRepeatableRead) {
  History h;
  h.Begin(1, 2);
  h.Read(1, 2, "t:0:0", 0);
  h.Begin(0, 1);
  h.Write(0, 1, "t:0:0", 1, 0);
  h.Commit(0, 1);
  h.Read(1, 2, "t:0:0", 1);  // same key, different version
  h.Commit(1, 2);
  auto anomaly = CheckHistory(h);
  ASSERT_TRUE(anomaly.has_value());
  EXPECT_EQ(anomaly->id, "iso-non-repeatable-read");
}

TEST(HistoryCheckerTest, DetectsG1cWriteCycle) {
  // t1 -ww-> t2 on key a and t2 -ww-> t1 on key b: a pure write cycle, no
  // reads at all.
  History h;
  h.Begin(0, 1);
  h.Begin(1, 2);
  h.Write(0, 1, "a:0:0", 1, 0);
  h.Write(1, 2, "a:0:0", 2, 1);
  h.Write(1, 2, "b:0:0", 3, 0);
  h.Write(0, 1, "b:0:0", 4, 3);
  h.Commit(0, 1);
  h.Commit(1, 2);
  auto anomaly = CheckHistory(h);
  ASSERT_TRUE(anomaly.has_value());
  EXPECT_EQ(anomaly->id, "iso-g1c");
}

TEST(HistoryCheckerTest, DetectsWriteSkew) {
  // Each txn reads the key the other writes; neither writes what it read.
  History h;
  h.Begin(0, 1);
  h.Begin(1, 2);
  h.Read(0, 1, "a:0:0", 0);
  h.Read(1, 2, "b:0:0", 0);
  h.Write(0, 1, "b:0:0", 1, 0);
  h.Write(1, 2, "a:0:0", 2, 0);
  h.Commit(0, 1);
  h.Commit(1, 2);
  auto anomaly = CheckHistory(h);
  ASSERT_TRUE(anomaly.has_value());
  EXPECT_EQ(anomaly->id, "iso-write-skew");
}

TEST(HistoryCheckerTest, DetectsG2AntiDependencyCycle) {
  // t1 -rw-> t2 (t2 overwrote the version of a that t1 read) and
  // t2 -wr-> t1 (t1 read t2's committed write of b): a cycle with exactly
  // one anti-dependency edge — G2 but not write skew (t1 never wrote).
  History h;
  h.Begin(0, 1);
  h.Begin(1, 2);
  h.Read(0, 1, "a:0:0", 0);
  h.Write(1, 2, "a:0:0", 1, 0);
  h.Write(1, 2, "b:0:0", 2, 0);
  h.Commit(1, 2);
  h.Read(0, 1, "b:0:0", 2);  // after t2's commit: not a dirty read
  h.Commit(0, 1);
  auto anomaly = CheckHistory(h);
  ASSERT_TRUE(anomaly.has_value());
  EXPECT_EQ(anomaly->id, "iso-g2");
}

TEST(HistoryCheckerTest, LostUpdateWinsOverDirtyRead) {
  // The planted lost-update defect also produces dirty observations; the
  // more specific classification must win.
  History h;
  h.Begin(0, 1);
  h.Begin(1, 2);
  h.Read(0, 1, "t:0:0", 0);
  h.Read(1, 2, "t:0:0", 0);
  h.Write(0, 1, "t:0:0", 1, 0);
  h.Read(1, 2, "t:0:0", 1);  // dirty: t1 not committed yet
  h.Write(1, 2, "t:0:0", 2, 1);
  h.Commit(0, 1);
  h.Commit(1, 2);
  auto anomaly = CheckHistory(h);
  ASSERT_TRUE(anomaly.has_value());
  EXPECT_EQ(anomaly->id, "iso-lost-update");
}

TEST(HistoryCheckerTest, UncommittedReaderNeverFlags) {
  // Anomalies are defined over committed transactions: a txn that aborted
  // after observing something dirty is not an anomaly.
  History h;
  h.Begin(0, 1);
  h.Write(0, 1, "t:0:0", 1, 0);
  h.Begin(1, 2);
  h.Read(1, 2, "t:0:0", 1);
  h.Abort(1, 2);
  h.Commit(0, 1);
  EXPECT_FALSE(CheckHistory(h).has_value());
}

TEST(HistoryDigestTest, DigestIsOrderAndContentSensitive) {
  History a;
  a.Begin(0, 1);
  a.Write(0, 1, "t:0:0", 1, 0);
  a.Commit(0, 1);

  History b;  // same events, same order
  b.Begin(0, 1);
  b.Write(0, 1, "t:0:0", 1, 0);
  b.Commit(0, 1);
  EXPECT_EQ(a.Digest(), b.Digest());

  History c;  // different version
  c.Begin(0, 1);
  c.Write(0, 1, "t:0:0", 2, 0);
  c.Commit(0, 1);
  EXPECT_NE(a.Digest(), c.Digest());

  History d;  // reordered
  d.Write(0, 1, "t:0:0", 1, 0);
  d.Begin(0, 1);
  d.Commit(0, 1);
  EXPECT_NE(a.Digest(), d.Digest());
}

}  // namespace
}  // namespace lego::concurrency
