// End-to-end triage: a campaign over scripted inputs reports each injected
// bug exactly once with a deterministic reproducer artifact, and a
// deliberately planted wrong-result bug in the evaluator is caught by the
// TLP oracle and surfaces as a LOGIC-TLP triage entry.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/campaign.h"
#include "fuzz/fuzzer.h"
#include "fuzz/harness.h"
#include "minidb/eval.h"
#include "minidb/profile.h"
#include "triage/tlp_oracle.h"
#include "triage/triage.h"

namespace lego::triage {
namespace {

const minidb::DialectProfile& Maria() {
  return *minidb::DialectProfile::ByName("marialite");
}

/// Replays a fixed list of scripts in order (cycling if the budget is
/// larger). Deterministic by construction.
class ScriptFuzzer : public fuzz::Fuzzer {
 public:
  explicit ScriptFuzzer(std::vector<std::string> scripts) {
    for (const std::string& s : scripts) {
      auto tc = fuzz::TestCase::FromSql(s);
      EXPECT_TRUE(tc.ok()) << s;
      cases_.push_back(std::move(*tc));
    }
  }
  std::string name() const override { return "script"; }
  void Prepare(fuzz::ExecutionHarness*) override {}
  fuzz::TestCase Next() override {
    fuzz::TestCase tc = cases_[next_ % cases_.size()].Clone();
    ++next_;
    return tc;
  }
  void OnResult(const fuzz::TestCase&, const fuzz::ExecResult&) override {}

 private:
  std::vector<fuzz::TestCase> cases_;
  size_t next_ = 0;
};

/// Three feature-less marialite bugs, each triggered through two different
/// noise paddings (so the campaign sees every bug twice).
std::vector<std::string> BugScripts() {
  return {
      // MA-STOR-07 {CHECKPOINT, VACUUM}
      "VALUES (1);\nCHECKPOINT;\nVACUUM;\n",
      "VALUES (10);\nVALUES (11);\nVALUES (12);\nCHECKPOINT;\nVACUUM;\n",
      // MA-DML-01 {INSERT, UPDATE, DELETE}
      "CREATE TABLE t1 (a INT);\nINSERT INTO t1 VALUES (1);\n"
      "UPDATE t1 SET a = 2;\nDELETE FROM t1;\n",
      // (noise ahead of CREATE TABLE: a VALUES statement directly before
      // the INSERT would complete MA-ITEM-03's {VALUES, INSERT} instead)
      "VALUES (99);\nCREATE TABLE t1 (a INT, b INT);\n"
      "INSERT INTO t1 VALUES (1, 2);\nUPDATE t1 SET b = 3;\n"
      "DELETE FROM t1 WHERE a = 1;\n",
      // MA-STOR-03 {TRUNCATE, INSERT}
      "CREATE TABLE t2 (a INT);\nTRUNCATE t2;\nINSERT INTO t2 VALUES (3);\n",
      "CREATE TABLE t2 (a TEXT);\nVALUES (7);\nTRUNCATE t2;\n"
      "INSERT INTO t2 VALUES ('x');\n",
  };
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

TEST(TriageDedupTest, EachInjectedBugReportedExactlyOnce) {
  ScriptFuzzer fuzzer(BugScripts());
  fuzz::ExecutionHarness harness(Maria());
  fuzz::CampaignOptions options;
  options.max_executions = 6;
  options.snapshot_every = 0;
  fuzz::CampaignResult result =
      fuzz::RunCampaign(&fuzzer, &harness, options);

  // Six crashing runs collapse to three unique bugs at capture time.
  EXPECT_EQ(result.crashes_total, 6);
  ASSERT_EQ(result.captured_cases.size(), 3u);

  TriageReport report =
      TriageCampaign(result, Maria(), harness.setup_script(), {});
  ASSERT_EQ(report.bugs.size(), 3u);
  EXPECT_EQ(report.not_reproduced, 0);
  std::set<std::string> ids;
  for (const TriagedBug& bug : report.bugs) {
    EXPECT_FALSE(bug.is_logic);
    EXPECT_TRUE(ids.insert(bug.crash.bug_id).second)
        << bug.crash.bug_id << " reported twice";
    EXPECT_LE(bug.reduced_statements, bug.original_statements);
  }
  EXPECT_EQ(ids, (std::set<std::string>{"MA-DML-01", "MA-STOR-03",
                                        "MA-STOR-07"}));
}

TEST(TriageDedupTest, ArtifactsAreByteIdenticalAcrossReruns) {
  namespace fs = std::filesystem;
  const fs::path base = fs::temp_directory_path() / "lego_triage_test";
  fs::remove_all(base);

  std::vector<std::string> artifacts[2];
  for (int run = 0; run < 2; ++run) {
    ScriptFuzzer fuzzer(BugScripts());
    fuzz::ExecutionHarness harness(Maria());
    fuzz::CampaignOptions options;
    options.max_executions = 6;
    options.snapshot_every = 0;
    fuzz::CampaignResult result =
        fuzz::RunCampaign(&fuzzer, &harness, options);
    TriageOptions triage_options;
    triage_options.repro_dir = (base / std::to_string(run)).string();
    TriageReport report =
        TriageCampaign(result, Maria(), harness.setup_script(),
                       triage_options);
    ASSERT_EQ(report.bugs.size(), 3u);
    for (const TriagedBug& bug : report.bugs) {
      ASSERT_FALSE(bug.artifact_path.empty());
      ASSERT_TRUE(fs::exists(bug.artifact_path));
      artifacts[run].push_back(ReadFile(bug.artifact_path));
      EXPECT_NE(artifacts[run].back().find("-- signature: "),
                std::string::npos);
    }
  }
  EXPECT_EQ(artifacts[0], artifacts[1]);
  fs::remove_all(base);
}

TEST(TriageDedupTest, PlantedEvalBugCaughtByTlpOracleEndToEnd) {
  const std::string script =
      "CREATE TABLE t0 (a INT, b INT);\n"
      "INSERT INTO t0 VALUES (1, 0);\n"
      "INSERT INTO t0 VALUES (2, NULL);\n"
      "INSERT INTO t0 VALUES (3, NULL);\n"
      "INSERT INTO t0 VALUES (4, 6);\n"
      "SELECT b FROM t0;\n";

  minidb::Evaluator::SetNotNullEvalBugForTesting(true);
  {
    ScriptFuzzer fuzzer({script});
    fuzz::ExecutionHarness harness(Maria());
    TlpOracle oracle;
    harness.set_logic_oracle(&oracle);
    fuzz::CampaignOptions options;
    options.max_executions = 2;  // same case twice: dedup by fingerprint
    options.snapshot_every = 0;
    fuzz::CampaignResult result =
        fuzz::RunCampaign(&fuzzer, &harness, options);
    EXPECT_EQ(result.logic_bugs_total, 2);
    ASSERT_EQ(result.captured_logic_cases.size(), 1u);

    TriageReport report =
        TriageCampaign(result, Maria(), harness.setup_script(), {});
    ASSERT_EQ(report.bugs.size(), 1u);
    EXPECT_TRUE(report.bugs[0].is_logic);
    EXPECT_EQ(report.bugs[0].signature.bug_id, "LOGIC-TLP");
    EXPECT_EQ(report.bugs[0].logic.check, "tlp");
    // The repro must keep a SELECT for the oracle to flag.
    EXPECT_NE(report.bugs[0].signature.type_fingerprint.find("SELECT"),
              std::string::npos);
  }
  minidb::Evaluator::SetNotNullEvalBugForTesting(false);

  // Reverted plant: the identical campaign is clean.
  ScriptFuzzer fuzzer({script});
  fuzz::ExecutionHarness harness(Maria());
  TlpOracle oracle;
  harness.set_logic_oracle(&oracle);
  fuzz::CampaignOptions options;
  options.max_executions = 2;
  options.snapshot_every = 0;
  fuzz::CampaignResult result = fuzz::RunCampaign(&fuzzer, &harness, options);
  EXPECT_EQ(result.logic_bugs_total, 0);
  EXPECT_TRUE(result.captured_logic_cases.empty());
}

}  // namespace
}  // namespace lego::triage
