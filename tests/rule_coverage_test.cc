// Grammar-rule coverage: the parser-production hit-set that serves as the
// campaign's secondary feedback signal. Pinned properties: collection is a
// pure function of the SQL text (parse-twice idempotence, Print→Parse
// fixpoint), the campaign-global rule count is monotone, serde round-trips
// bit-exactly, the signal distinguishes seeds whose engine edge coverage is
// identical, and a serial campaign with the signal disabled is bit-identical
// across runs (the disabled path adds no observable behavior).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "coverage/rule_coverage.h"
#include "fuzz/campaign.h"
#include "fuzz/checkpoint.h"
#include "fuzz/harness.h"
#include "fuzz/testcase.h"
#include "lego/lego_fuzzer.h"
#include "minidb/profile.h"
#include "persist/io.h"
#include "sql/grammar_coverage.h"

namespace lego::fuzz {
namespace {

const char* const kScript =
    "CREATE TABLE t0 (a INT PRIMARY KEY, b TEXT);"
    "INSERT INTO t0 VALUES (1, 'x');"
    "SELECT a, b FROM t0 WHERE a < 5 ORDER BY a;";

TEST(RuleCoverageTest, CollectTwiceIsIdempotent) {
  cov::RuleMap first;
  cov::RuleMap second;
  ASSERT_TRUE(cov::CollectRules(kScript, &first));
  ASSERT_TRUE(cov::CollectRules(kScript, &second));
  EXPECT_EQ(first.HitRules(), second.HitRules());
  EXPECT_EQ(0, std::memcmp(first.data(), second.data(), cov::RuleMap::size()));
  EXPECT_GT(first.CountNonZero(), 0u);
}

TEST(RuleCoverageTest, CollectFailsOnUnparsableText) {
  cov::RuleMap map;
  EXPECT_FALSE(cov::CollectRules("SELEC chaos FROM;", &map));
}

TEST(RuleCoverageTest, PrintParseRoundTripSameRules) {
  // Printing a parsed script and re-collecting must reach a fixpoint: the
  // printed form's rule set equals the rule set of its own reparse-print.
  // (The harness always collects over tc.ToSql(), i.e. the printed form, so
  // this is exactly the invariant the feedback signal relies on.)
  for (const char* script : {
           kScript,
           "CREATE INDEX i0 ON t0 (a); DROP TABLE IF EXISTS t9;",
           "SELECT t0.a FROM t0 JOIN t0 AS u ON t0.a = u.a WHERE NOT "
           "(t0.a IS NULL) GROUP BY t0.a HAVING COUNT(*) > 0;",
           "INSERT OR IGNORE INTO t0 (a, b) VALUES (2, 'y'); BEGIN; "
           "UPDATE t0 SET b = 'z' WHERE a = 2; COMMIT;",
           "WITH w AS (SELECT a FROM t0) SELECT * FROM w UNION ALL "
           "SELECT a FROM t0 ORDER BY 1 DESC LIMIT 3;",
       }) {
    auto tc = TestCase::FromSql(script);
    ASSERT_TRUE(tc.ok()) << script;
    std::string printed = tc->ToSql();
    auto tc2 = TestCase::FromSql(printed);
    ASSERT_TRUE(tc2.ok()) << printed;
    cov::RuleMap from_printed;
    cov::RuleMap from_reprint;
    ASSERT_TRUE(cov::CollectRules(printed, &from_printed));
    ASSERT_TRUE(cov::CollectRules(tc2->ToSql(), &from_reprint));
    EXPECT_EQ(from_printed.HitRules(), from_reprint.HitRules()) << script;
  }
}

TEST(RuleCoverageTest, MonotoneRuleCountOverCampaign) {
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");
  core::LegoOptions options;
  options.rng_seed = 13;
  core::LegoFuzzer fuzzer(*profile, options);
  ExecutionHarness harness(*profile);
  harness.set_rule_coverage(true);
  fuzzer.Prepare(&harness);
  size_t prev = 0;
  for (int i = 0; i < 300; ++i) {
    TestCase tc = fuzzer.Next();
    ExecResult r = harness.Run(tc);
    fuzzer.OnResult(tc, r);
    EXPECT_GE(r.total_rules, prev);
    EXPECT_EQ(r.total_rules, harness.CoveredRules());
    prev = r.total_rules;
  }
  EXPECT_GT(prev, 0u);
  EXPECT_LE(prev, sql::kNumGrammarRules);
}

TEST(RuleCoverageTest, GlobalRuleStateRoundTripsBitExact) {
  cov::GlobalRuleCoverage global;
  cov::RuleMap map;
  ASSERT_TRUE(cov::CollectRules(kScript, &map));
  EXPECT_TRUE(global.MergeDetectNew(map));
  ASSERT_TRUE(cov::CollectRules("ROLLBACK; CHECKPOINT;", &map));
  EXPECT_TRUE(global.MergeDetectNew(map));

  persist::StateWriter w1;
  ASSERT_TRUE(global.SaveState(&w1).ok());
  persist::StateReader r = persist::StateReader::FromPayload(w1.buffer());
  cov::GlobalRuleCoverage loaded;
  ASSERT_TRUE(loaded.LoadState(&r).ok());
  EXPECT_EQ(loaded.CoveredRules(), global.CoveredRules());

  persist::StateWriter w2;
  ASSERT_TRUE(loaded.SaveState(&w2).ok());
  EXPECT_EQ(w1.buffer(), w2.buffer());  // save -> load -> save, byte-equal
}

TEST(RuleCoverageTest, SharedRuleStateRoundTripsBitExact) {
  cov::SharedRuleCoverage shared;
  cov::RuleMap map;
  ASSERT_TRUE(cov::CollectRules(kScript, &map));
  EXPECT_TRUE(shared.MergeDetectNew(map));

  persist::StateWriter w1;
  ASSERT_TRUE(shared.SaveState(&w1).ok());
  persist::StateReader r = persist::StateReader::FromPayload(w1.buffer());
  cov::SharedRuleCoverage loaded;
  ASSERT_TRUE(loaded.LoadState(&r).ok());
  EXPECT_EQ(loaded.CoveredRules(), shared.CoveredRules());

  persist::StateWriter w2;
  ASSERT_TRUE(loaded.SaveState(&w2).ok());
  EXPECT_EQ(w1.buffer(), w2.buffer());
}

TEST(RuleCoverageTest, DistinguishesSeedsEdgeCoverageCannot) {
  // Two queries that drive the engine through an identical edge set but
  // different grammar productions: ORDER BY ... DESC only flips a sort
  // comparator flag (no new probe fires), while the parser's OrderByDesc
  // production is new. The rule signal separates what the edge signal
  // cannot.
  const minidb::DialectProfile* profile =
      minidb::DialectProfile::ByName("pglite");
  ExecutionHarness harness(*profile);
  harness.set_setup_script(
      "CREATE TABLE t0 (a INT, b INT);"
      "INSERT INTO t0 VALUES (1, 2);"
      "INSERT INTO t0 VALUES (3, 4);");
  harness.set_rule_coverage(true);

  auto asc = TestCase::FromSql("SELECT a FROM t0 ORDER BY a;");
  auto desc = TestCase::FromSql("SELECT a FROM t0 ORDER BY a DESC;");
  ASSERT_TRUE(asc.ok());
  ASSERT_TRUE(desc.ok());

  ExecResult first = harness.Run(*asc);
  EXPECT_TRUE(first.new_coverage);
  EXPECT_TRUE(first.new_rules);

  ExecResult second = harness.Run(*desc);
  EXPECT_FALSE(second.new_coverage);  // same engine path: edge-blind
  EXPECT_TRUE(second.new_rules);      // new production: rule-visible
  EXPECT_EQ(second.total_rules, first.total_rules + 1);
}

TEST(RuleCoverageTest, SerialCampaignBitIdenticalWithSignalDisabled) {
  // With rule coverage left off (the default), two fresh serial campaigns
  // produce byte-identical results — the compiled-in signal path must be
  // unobservable until armed.
  auto run = [] {
    const minidb::DialectProfile* profile =
        minidb::DialectProfile::ByName("pglite");
    core::LegoOptions options;
    options.rng_seed = 21;
    core::LegoFuzzer fuzzer(*profile, options);
    ExecutionHarness harness(*profile);
    CampaignOptions campaign;
    campaign.max_executions = 400;
    campaign.snapshot_every = 100;
    return RunCampaign(&fuzzer, &harness, campaign);
  };
  CampaignResult a = run();
  CampaignResult b = run();
  EXPECT_EQ(a.rules, 0u);  // disabled: no rule accounting at all
  EXPECT_EQ(ResultDigest(a), ResultDigest(b));
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.statements_executed, b.statements_executed);
}

}  // namespace
}  // namespace lego::fuzz
