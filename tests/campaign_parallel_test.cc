#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "coverage/coverage.h"
#include "fuzz/campaign.h"
#include "fuzz/corpus.h"
#include "fuzz/harness.h"
#include "lego/lego_fuzzer.h"
#include "minidb/profile.h"
#include "util/random.h"

namespace lego::fuzz {
namespace {

core::LegoFuzzer MakeLego(uint64_t seed) {
  core::LegoOptions options;
  options.rng_seed = seed;
  return core::LegoFuzzer(minidb::DialectProfile::PgLite(), options);
}

/// The pre-parallel serial campaign loop, replicated verbatim as the
/// reference implementation: RunCampaign with num_workers == 1 must stay
/// bit-identical to this.
CampaignResult ReferenceSerialCampaign(Fuzzer* fuzzer,
                                       ExecutionHarness* harness,
                                       const CampaignOptions& options) {
  CampaignResult result;
  result.fuzzer = fuzzer->name();
  result.profile = harness->profile().name;
  const size_t total_bugs = harness->bug_engine().bugs().size();
  fuzzer->Prepare(harness);
  for (int i = 0; i < options.max_executions; ++i) {
    TestCase tc = fuzzer->Next();
    auto types = tc.TypeSequence();
    for (size_t t = 1; t < types.size(); ++t) {
      if (types[t - 1] == types[t]) continue;
      result.affinities.emplace(static_cast<int>(types[t - 1]),
                                static_cast<int>(types[t]));
    }
    ExecResult exec = harness->Run(tc);
    ++result.executions;
    result.statement_errors += exec.errors;
    result.statements_executed += exec.executed;
    if (exec.crashed) {
      ++result.crashes_total;
      if (result.crash_hashes.insert(exec.crash.stack_hash).second) {
        result.bug_ids.insert(exec.crash.bug_id);
        ++result.bugs_by_component[exec.crash.component];
      }
    }
    fuzzer->OnResult(tc, exec);
    if (options.snapshot_every > 0 &&
        result.executions % options.snapshot_every == 0) {
      result.coverage_curve.emplace_back(result.executions,
                                         harness->CoveredEdges());
    }
    if (options.stop_when_all_bugs_found &&
        result.bug_ids.size() >= total_bugs) {
      break;
    }
    if (options.max_statements > 0 &&
        result.statements_executed + result.statement_errors >=
            options.max_statements) {
      break;
    }
  }
  result.edges = harness->CoveredEdges();
  if (result.coverage_curve.empty() ||
      result.coverage_curve.back().first != result.executions) {
    result.coverage_curve.emplace_back(result.executions, result.edges);
  }
  return result;
}

void ExpectIdentical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.fuzzer, b.fuzzer);
  EXPECT_EQ(a.profile, b.profile);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.coverage_curve, b.coverage_curve);
  EXPECT_EQ(a.crash_hashes, b.crash_hashes);
  EXPECT_EQ(a.bug_ids, b.bug_ids);
  EXPECT_EQ(a.affinities, b.affinities);
  EXPECT_EQ(a.crashes_total, b.crashes_total);
  EXPECT_EQ(a.statement_errors, b.statement_errors);
  EXPECT_EQ(a.statements_executed, b.statements_executed);
  EXPECT_EQ(a.bugs_by_component, b.bugs_by_component);
}

TEST(CampaignParallelTest, OneWorkerIsBitIdenticalToSerialPath) {
  CampaignOptions options;
  options.max_executions = 600;
  options.snapshot_every = 150;
  options.num_workers = 1;

  core::LegoFuzzer reference_fuzzer = MakeLego(7);
  ExecutionHarness reference_harness(minidb::DialectProfile::PgLite());
  CampaignResult reference = ReferenceSerialCampaign(
      &reference_fuzzer, &reference_harness, options);

  core::LegoFuzzer fuzzer = MakeLego(7);
  ExecutionHarness harness(minidb::DialectProfile::PgLite());
  CampaignResult actual = RunCampaign(&fuzzer, &harness, options);

  ExpectIdentical(reference, actual);
}

TEST(CampaignParallelTest, FourWorkersFindAtLeastOneWorkersEdgesAndBugs) {
  CampaignOptions options;
  options.max_executions = 2000;
  options.snapshot_every = 500;

  core::LegoFuzzer serial_fuzzer = MakeLego(1);
  ExecutionHarness serial_harness(minidb::DialectProfile::PgLite());
  options.num_workers = 1;
  CampaignResult one =
      RunCampaign(&serial_fuzzer, &serial_harness, options);

  core::LegoFuzzer parallel_fuzzer = MakeLego(1);
  ExecutionHarness parallel_harness(minidb::DialectProfile::PgLite());
  options.num_workers = 4;
  CampaignResult four =
      RunCampaign(&parallel_fuzzer, &parallel_harness, options);

  EXPECT_EQ(four.executions, one.executions);
  EXPECT_GE(four.edges, one.edges);
  for (const std::string& bug : one.bug_ids) {
    EXPECT_TRUE(four.bug_ids.count(bug))
        << "serial campaign found " << bug << " but 4 workers did not";
  }
}

TEST(CampaignParallelTest, ParallelResultIsDeterministicPerSeedAndWorkers) {
  CampaignOptions options;
  options.max_executions = 900;
  options.snapshot_every = 300;
  options.num_workers = 3;
  options.sync_every = 128;

  core::LegoFuzzer fuzzer_a = MakeLego(42);
  ExecutionHarness harness_a(minidb::DialectProfile::PgLite());
  CampaignResult a = RunCampaign(&fuzzer_a, &harness_a, options);

  core::LegoFuzzer fuzzer_b = MakeLego(42);
  ExecutionHarness harness_b(minidb::DialectProfile::PgLite());
  CampaignResult b = RunCampaign(&fuzzer_b, &harness_b, options);

  ExpectIdentical(a, b);
  EXPECT_EQ(a.executions, 900);
}

TEST(CampaignParallelTest, FuzzerWithoutCloneFallsBackToSerial) {
  class NoClone : public Fuzzer {
   public:
    std::string name() const override { return "noclone"; }
    void Prepare(ExecutionHarness*) override {}
    TestCase Next() override {
      return std::move(*TestCase::FromSql("SELECT 1;"));
    }
    void OnResult(const TestCase&, const ExecResult&) override {}
  };
  NoClone fuzzer;
  ExecutionHarness harness(minidb::DialectProfile::PgLite());
  CampaignOptions options;
  options.max_executions = 50;
  options.num_workers = 4;
  CampaignResult result = RunCampaign(&fuzzer, &harness, options);
  EXPECT_EQ(result.executions, 50);
  EXPECT_EQ(result.statements_executed, 50);
}

TEST(SharedCorpusTest, DrainSkipsOwnSeedsAndPreservesOrder) {
  SharedCorpus corpus(4);
  corpus.Publish(0, std::move(*TestCase::FromSql("SELECT 1;")));
  corpus.Publish(1, std::move(*TestCase::FromSql("SELECT 2;")));
  corpus.Publish(0, std::move(*TestCase::FromSql("SELECT 3;")));
  EXPECT_EQ(corpus.published(), 3u);

  uint64_t cursor = 0;
  std::vector<TestCase> drained;
  EXPECT_EQ(corpus.DrainNew(0, &cursor, &drained), 1u);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].ToSql(), "SELECT 2;\n");
  EXPECT_EQ(cursor, 3u);

  // Nothing new: the cursor is past everything published.
  drained.clear();
  EXPECT_EQ(corpus.DrainNew(0, &cursor, &drained), 0u);

  // A different worker sees the two seeds it did not publish, in order.
  uint64_t other_cursor = 0;
  drained.clear();
  EXPECT_EQ(corpus.DrainNew(1, &other_cursor, &drained), 2u);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].ToSql(), "SELECT 1;\n");
  EXPECT_EQ(drained[1].ToSql(), "SELECT 3;\n");
}

// The ThreadSanitizer target: 8 threads hammer the SharedCorpus (publish +
// drain) and the shared bitmap (concurrent atomic merges) at once. Build
// with -DLEGO_SANITIZE=thread to verify race-freedom; the assertions below
// verify the cross-thread invariants hold under any interleaving.
TEST(CampaignParallelTest, StressSharedCorpusAndBitmapFromEightThreads) {
  constexpr int kThreads = 8;
  constexpr int kSeedsPerThread = 50;
  constexpr int kMapsPerThread = 16;

  // Precompute each thread's coverage maps so a serial reference union is
  // possible afterwards.
  std::vector<std::vector<cov::CoverageMap>> maps(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(1000 + static_cast<uint64_t>(t));
    maps[t].resize(kMapsPerThread);
    for (int m = 0; m < kMapsPerThread; ++m) {
      for (int h = 0; h < 200; ++h) maps[t][m].Hit(rng.Next());
      maps[t][m].ClassifyCounts();
    }
  }
  // Pre-parse one statement per thread; threads clone it (parsing stays off
  // the contended path).
  std::vector<TestCase> protos;
  for (int t = 0; t < kThreads; ++t) {
    protos.push_back(std::move(
        *TestCase::FromSql("SELECT " + std::to_string(t) + ";")));
  }

  SharedCorpus corpus(kThreads);
  cov::SharedCoverage shared;
  std::vector<uint64_t> cursors(kThreads, 0);
  std::vector<size_t> foreign_seen(kThreads, 0);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<TestCase> drained;
      for (int i = 0; i < kSeedsPerThread; ++i) {
        corpus.Publish(t, protos[t].Clone());
        shared.MergeDetectNew(maps[t][i % kMapsPerThread]);
        foreign_seen[t] += corpus.DrainNew(t, &cursors[t], &drained);
        drained.clear();
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(corpus.published(),
            static_cast<uint64_t>(kThreads * kSeedsPerThread));

  // After a final drain, every thread has seen exactly the seeds published
  // by the other seven threads — nothing lost, nothing duplicated.
  for (int t = 0; t < kThreads; ++t) {
    std::vector<TestCase> drained;
    foreign_seen[t] += corpus.DrainNew(t, &cursors[t], &drained);
    EXPECT_EQ(foreign_seen[t],
              static_cast<size_t>((kThreads - 1) * kSeedsPerThread));
  }

  // The shared bitmap holds exactly the union a serial merge produces.
  cov::GlobalCoverage reference;
  for (int t = 0; t < kThreads; ++t) {
    for (int m = 0; m < kMapsPerThread; ++m) {
      // Every map was merged at least once; repeats don't change the union.
      reference.MergeDetectNew(maps[t][m]);
    }
  }
  EXPECT_EQ(shared.CoveredEdges(), reference.CoveredEdges());
}

}  // namespace
}  // namespace lego::fuzz
