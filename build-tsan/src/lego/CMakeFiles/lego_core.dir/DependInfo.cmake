
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lego/affinity.cc" "src/lego/CMakeFiles/lego_core.dir/affinity.cc.o" "gcc" "src/lego/CMakeFiles/lego_core.dir/affinity.cc.o.d"
  "/root/repo/src/lego/ast_library.cc" "src/lego/CMakeFiles/lego_core.dir/ast_library.cc.o" "gcc" "src/lego/CMakeFiles/lego_core.dir/ast_library.cc.o.d"
  "/root/repo/src/lego/generator.cc" "src/lego/CMakeFiles/lego_core.dir/generator.cc.o" "gcc" "src/lego/CMakeFiles/lego_core.dir/generator.cc.o.d"
  "/root/repo/src/lego/instantiator.cc" "src/lego/CMakeFiles/lego_core.dir/instantiator.cc.o" "gcc" "src/lego/CMakeFiles/lego_core.dir/instantiator.cc.o.d"
  "/root/repo/src/lego/lego_fuzzer.cc" "src/lego/CMakeFiles/lego_core.dir/lego_fuzzer.cc.o" "gcc" "src/lego/CMakeFiles/lego_core.dir/lego_fuzzer.cc.o.d"
  "/root/repo/src/lego/mutation.cc" "src/lego/CMakeFiles/lego_core.dir/mutation.cc.o" "gcc" "src/lego/CMakeFiles/lego_core.dir/mutation.cc.o.d"
  "/root/repo/src/lego/synthesis.cc" "src/lego/CMakeFiles/lego_core.dir/synthesis.cc.o" "gcc" "src/lego/CMakeFiles/lego_core.dir/synthesis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/fuzz/CMakeFiles/lego_fuzz.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/minidb/CMakeFiles/lego_minidb.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/faults/CMakeFiles/lego_faults.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sql/CMakeFiles/lego_sql.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/coverage/CMakeFiles/lego_coverage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/lego_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
