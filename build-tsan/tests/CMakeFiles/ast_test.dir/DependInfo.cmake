
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ast_test.cc" "tests/CMakeFiles/ast_test.dir/ast_test.cc.o" "gcc" "tests/CMakeFiles/ast_test.dir/ast_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/baselines/CMakeFiles/lego_baselines.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lego/CMakeFiles/lego_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fuzz/CMakeFiles/lego_fuzz.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/faults/CMakeFiles/lego_faults.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/minidb/CMakeFiles/lego_minidb.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sql/CMakeFiles/lego_sql.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/coverage/CMakeFiles/lego_coverage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/lego_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
